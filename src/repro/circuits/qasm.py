"""OpenQASM 2.0 subset parser and emitter.

The paper's benchmarks are OpenQASM programs; this module round-trips the
subset those programs need:

* ``OPENQASM 2.0;`` header and ``include "qelib1.inc";``
* ``qreg`` / ``creg`` declarations (multiple registers are flattened to a
  single qubit index space, in declaration order),
* the standard gate library (``h``, ``cx``, ``rz(expr)``, ``u3(...)``, ...),
* ``measure q[i] -> c[j];`` (including whole-register measurement),
* ``barrier``.

Parameter expressions support numbers, ``pi``, unary minus and ``+ - * / ^``
with parentheses; they are evaluated through a whitelisted AST walk (no
``eval``).  Gate definitions (``gate ... { }``), ``if`` statements and
``opaque`` declarations are not supported and raise :class:`QasmError`.
"""

from __future__ import annotations

import ast
import math
import re
from typing import Dict, List, Tuple

from .circuit import GateOp, Measurement, QuantumCircuit
from .gates import STANDARD_GATE_ARITY, standard_gate

__all__ = ["QasmError", "parse_qasm", "to_qasm"]


class QasmError(ValueError):
    """Raised on malformed or unsupported OpenQASM input."""


_ID = r"[a-zA-Z_][a-zA-Z0-9_]*"
_STATEMENT_RE = re.compile(
    rf"""
    (?P<keyword>{_ID})          # statement head: qreg, creg, gate name, ...
    \s*
    (?:\( (?P<params> [^)]*) \))?   # optional parameter list
    \s*
    (?P<args> [^;]*)            # operand list
    """,
    re.VERBOSE,
)
_OPERAND_RE = re.compile(rf"(?P<reg>{_ID})\s*(?:\[\s*(?P<index>\d+)\s*\])?")


def _eval_param(expression: str) -> float:
    """Safely evaluate a QASM parameter expression."""
    cleaned = expression.strip().replace("^", "**")
    if not cleaned:
        raise QasmError("empty parameter expression")
    try:
        tree = ast.parse(cleaned, mode="eval")
    except SyntaxError as exc:
        raise QasmError(f"bad parameter expression {expression!r}") from exc

    def walk(node: ast.AST) -> float:
        if isinstance(node, ast.Expression):
            return walk(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name) and node.id == "pi":
            return math.pi
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            value = walk(node.operand)
            return -value if isinstance(node.op, ast.USub) else value
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)
        ):
            left, right = walk(node.left), walk(node.right)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Div):
                return left / right
            return left**right
        raise QasmError(f"unsupported construct in parameter {expression!r}")

    return walk(tree)


def _strip_comments(text: str) -> str:
    return re.sub(r"//[^\n]*", "", text)


class _Registers:
    """Maps (register, index) operands to flat qubit / clbit indices."""

    def __init__(self) -> None:
        self.qregs: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: Dict[str, Tuple[int, int]] = {}
        self.num_qubits = 0
        self.num_clbits = 0

    def add_qreg(self, name: str, size: int) -> None:
        if name in self.qregs or name in self.cregs:
            raise QasmError(f"register {name!r} redeclared")
        self.qregs[name] = (self.num_qubits, size)
        self.num_qubits += size

    def add_creg(self, name: str, size: int) -> None:
        if name in self.qregs or name in self.cregs:
            raise QasmError(f"register {name!r} redeclared")
        self.cregs[name] = (self.num_clbits, size)
        self.num_clbits += size

    def resolve(self, table: Dict[str, Tuple[int, int]], reg: str, index: str) -> List[int]:
        if reg not in table:
            raise QasmError(f"unknown register {reg!r}")
        offset, size = table[reg]
        if index is None:
            return list(range(offset, offset + size))
        flat = int(index)
        if flat >= size:
            raise QasmError(f"index {flat} out of range for register {reg!r}[{size}]")
        return [offset + flat]

    def qubits(self, reg: str, index: str) -> List[int]:
        return self.resolve(self.qregs, reg, index)

    def clbits(self, reg: str, index: str) -> List[int]:
        return self.resolve(self.cregs, reg, index)


def _parse_operands(text: str) -> List[Tuple[str, str]]:
    operands = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        match = _OPERAND_RE.fullmatch(chunk)
        if match is None:
            raise QasmError(f"bad operand {chunk!r}")
        operands.append((match.group("reg"), match.group("index")))
    return operands


def parse_qasm(text: str, name: str = "qasm") -> QuantumCircuit:
    """Parse an OpenQASM 2.0 program into a :class:`QuantumCircuit`."""
    text = _strip_comments(text)
    statements = [s.strip() for s in text.split(";") if s.strip()]
    if not statements or not statements[0].startswith("OPENQASM"):
        raise QasmError('program must start with "OPENQASM 2.0;"')
    registers = _Registers()
    body: List[Tuple[str, str, str]] = []

    for statement in statements[1:]:
        if statement.startswith("include"):
            continue
        match = _STATEMENT_RE.fullmatch(statement)
        if match is None:
            raise QasmError(f"cannot parse statement {statement!r}")
        keyword = match.group("keyword")
        params = match.group("params")
        args = match.group("args").strip()

        if keyword in ("gate", "opaque", "if", "reset"):
            raise QasmError(f"unsupported OpenQASM construct: {keyword!r}")
        if keyword in ("qreg", "creg"):
            operand_match = _OPERAND_RE.fullmatch(args)
            if operand_match is None or operand_match.group("index") is None:
                raise QasmError(f"bad register declaration {statement!r}")
            size = int(operand_match.group("index"))
            if size < 1:
                raise QasmError(f"register size must be positive: {statement!r}")
            if keyword == "qreg":
                registers.add_qreg(operand_match.group("reg"), size)
            else:
                registers.add_creg(operand_match.group("reg"), size)
            continue
        body.append((keyword, params or "", args))

    circuit = QuantumCircuit(
        max(registers.num_qubits, 1), registers.num_clbits, name=name
    )

    for keyword, params, args in body:
        if keyword == "barrier":
            qubits: List[int] = []
            for reg, index in _parse_operands(args):
                qubits.extend(registers.qubits(reg, index))
            circuit.barrier(*qubits)
            continue
        if keyword == "measure":
            arrow = args.split("->")
            if len(arrow) != 2:
                raise QasmError(f"bad measure statement: {args!r}")
            src = _parse_operands(arrow[0])
            dst = _parse_operands(arrow[1])
            if len(src) != 1 or len(dst) != 1:
                raise QasmError(f"measure takes one source and one target: {args!r}")
            qubits = registers.qubits(*src[0])
            clbits = registers.clbits(*dst[0])
            if len(qubits) != len(clbits):
                raise QasmError(f"measure register size mismatch: {args!r}")
            for qubit, clbit in zip(qubits, clbits):
                circuit.measure(qubit, clbit)
            continue
        # gate application
        gate_name = "id" if keyword == "u0" else keyword
        if gate_name == "u":
            gate_name = "u3"
        if gate_name not in STANDARD_GATE_ARITY:
            raise QasmError(f"unknown gate {keyword!r}")
        values = tuple(
            _eval_param(p) for p in params.split(",") if p.strip()
        )
        operands = _parse_operands(args)
        expanded: List[List[int]] = [
            registers.qubits(reg, index) for reg, index in operands
        ]
        arity = STANDARD_GATE_ARITY[gate_name]
        if len(expanded) != arity:
            raise QasmError(
                f"gate {gate_name!r} takes {arity} operand(s), got {len(expanded)}"
            )
        # Broadcast whole-register applications (all operands same length or 1).
        lengths = {len(group) for group in expanded}
        width = max(lengths)
        if lengths - {1, width}:
            raise QasmError(f"operand length mismatch in {keyword} {args!r}")
        for position in range(width):
            qubit_tuple = [
                group[0] if len(group) == 1 else group[position]
                for group in expanded
            ]
            circuit.apply(standard_gate(gate_name, values), *qubit_tuple)

    return circuit


def _format_param(value: float) -> str:
    """Render a parameter, using pi fractions where exact."""
    for denominator in (1, 2, 3, 4, 6, 8, 16):
        for numerator in range(-32, 33):
            if numerator == 0:
                continue
            if abs(value - numerator * math.pi / denominator) < 1e-12:
                num = "" if abs(numerator) == 1 else str(abs(numerator)) + "*"
                sign = "-" if numerator < 0 else ""
                if denominator == 1:
                    return f"{sign}{num}pi"
                return f"{sign}{num}pi/{denominator}"
    if value == int(value):
        return str(int(value))
    return repr(value)


def to_qasm(circuit: QuantumCircuit) -> str:
    """Emit ``circuit`` as an OpenQASM 2.0 program (single ``q``/``c`` regs)."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for instr in circuit:
        if isinstance(instr, GateOp):
            if not instr.gate.name in STANDARD_GATE_ARITY:
                raise QasmError(
                    f"gate {instr.gate.name!r} is not expressible in the "
                    "QASM subset (decompose it first)"
                )
            operand_text = ", ".join(f"q[{q}]" for q in instr.qubits)
            if instr.gate.params:
                param_text = ",".join(_format_param(p) for p in instr.gate.params)
                lines.append(f"{instr.gate.name}({param_text}) {operand_text};")
            else:
                lines.append(f"{instr.gate.name} {operand_text};")
        elif isinstance(instr, Measurement):
            lines.append(f"measure q[{instr.qubit}] -> c[{instr.clbit}];")
        else:  # Barrier
            if instr.qubits:
                operand_text = ", ".join(f"q[{q}]" for q in instr.qubits)
            else:
                operand_text = "q"
            lines.append(f"barrier {operand_text};")
    return "\n".join(lines) + "\n"
