"""Quantum circuit intermediate representation.

Public surface: :class:`QuantumCircuit` and its instruction types, the
standard gate library, the ASAP layering pass and the OpenQASM 2.0 subset
parser/emitter.
"""

from .draw import draw
from .circuit import (
    Barrier,
    CircuitError,
    GateOp,
    Instruction,
    Measurement,
    QuantumCircuit,
)
from .gates import (
    Gate,
    GateError,
    STANDARD_GATE_ARITY,
    is_standard_gate,
    pauli_gate,
    random_su4,
    standard_gate,
    unitary,
)
from .layers import LayeredCircuit, layerize
from .qasm import QasmError, parse_qasm, to_qasm

__all__ = [
    "Barrier",
    "draw",
    "CircuitError",
    "Gate",
    "GateError",
    "GateOp",
    "Instruction",
    "LayeredCircuit",
    "Measurement",
    "QasmError",
    "QuantumCircuit",
    "STANDARD_GATE_ARITY",
    "is_standard_gate",
    "layerize",
    "parse_qasm",
    "pauli_gate",
    "random_su4",
    "standard_gate",
    "to_qasm",
    "unitary",
]
