"""The quantum circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of instructions over ``n``
qubits and ``m`` classical bits.  Three instruction kinds exist:

* :class:`GateOp` — a unitary gate applied to a qubit tuple,
* :class:`Measurement` — projective Z-basis measurement of one qubit into a
  classical bit,
* :class:`Barrier` — a scheduling fence (no semantics beyond layering).

The circuit is the single input format for everything downstream: the
layering pass, the qubit mapper, the noise-position enumeration and both
simulators.  Builder methods (``circ.h(0)``, ``circ.cx(0, 1)``, ...) mirror
the standard gate library.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .gates import Gate, standard_gate, unitary as unitary_gate

__all__ = [
    "CircuitError",
    "GateOp",
    "Measurement",
    "Barrier",
    "Instruction",
    "QuantumCircuit",
]


class CircuitError(ValueError):
    """Raised for malformed circuit construction."""


class GateOp:
    """A gate applied to a specific tuple of qubits."""

    __slots__ = ("gate", "qubits")

    def __init__(self, gate: Gate, qubits: Sequence[int]) -> None:
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != gate.num_qubits:
            raise CircuitError(
                f"gate '{gate.name}' acts on {gate.num_qubits} qubit(s), "
                f"got qubits {qubits}"
            )
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubits in {qubits}")
        self.gate = gate
        self.qubits = qubits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GateOp):
            return NotImplemented
        return self.gate == other.gate and self.qubits == other.qubits

    def __hash__(self) -> int:
        return hash((self.gate, self.qubits))

    def __repr__(self) -> str:
        return f"GateOp({self.gate.name}, {self.qubits})"


class Measurement:
    """Z-basis measurement of ``qubit`` recorded into classical ``clbit``."""

    __slots__ = ("qubit", "clbit")

    def __init__(self, qubit: int, clbit: int) -> None:
        self.qubit = int(qubit)
        self.clbit = int(clbit)

    @property
    def qubits(self) -> Tuple[int]:
        return (self.qubit,)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Measurement):
            return NotImplemented
        return self.qubit == other.qubit and self.clbit == other.clbit

    def __hash__(self) -> int:
        return hash(("measure", self.qubit, self.clbit))

    def __repr__(self) -> str:
        return f"Measurement(q{self.qubit} -> c{self.clbit})"


class Barrier:
    """A layering fence across ``qubits`` (all qubits when empty)."""

    __slots__ = ("qubits",)

    def __init__(self, qubits: Sequence[int] = ()) -> None:
        self.qubits = tuple(int(q) for q in qubits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Barrier):
            return NotImplemented
        return self.qubits == other.qubits

    def __hash__(self) -> int:
        return hash(("barrier", self.qubits))

    def __repr__(self) -> str:
        return f"Barrier({self.qubits})"


Instruction = Union[GateOp, Measurement, Barrier]


class QuantumCircuit:
    """An ordered sequence of instructions on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Number of qubits.  Qubit indices are ``0 .. num_qubits - 1``.
    num_clbits:
        Number of classical bits; defaults to ``num_qubits``.
    name:
        Optional display name (used by benchmark suites and reports).
    """

    def __init__(
        self,
        num_qubits: int,
        num_clbits: Optional[int] = None,
        name: str = "circuit",
    ) -> None:
        if num_qubits < 1:
            raise CircuitError(f"need at least one qubit, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_qubits if num_clbits is None else num_clbits)
        if self.num_clbits < 0:
            raise CircuitError("num_clbits must be non-negative")
        self.name = name
        self._instructions: List[Instruction] = []

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return tuple(self._instructions)

    # -- generic append -------------------------------------------------------

    def _check_qubits(self, qubits: Sequence[int]) -> None:
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise CircuitError(
                    f"qubit {qubit} out of range for {self.num_qubits}-qubit circuit"
                )

    def append(self, instruction: Instruction) -> "QuantumCircuit":
        """Append a prebuilt instruction (validated against this circuit)."""
        if isinstance(instruction, GateOp):
            self._check_qubits(instruction.qubits)
        elif isinstance(instruction, Measurement):
            self._check_qubits((instruction.qubit,))
            if not 0 <= instruction.clbit < self.num_clbits:
                raise CircuitError(
                    f"clbit {instruction.clbit} out of range for "
                    f"{self.num_clbits} classical bit(s)"
                )
        elif isinstance(instruction, Barrier):
            self._check_qubits(instruction.qubits)
        else:
            raise CircuitError(f"not an instruction: {instruction!r}")
        self._instructions.append(instruction)
        return self

    def apply(self, gate: Gate, *qubits: int) -> "QuantumCircuit":
        """Append ``gate`` on ``qubits``."""
        return self.append(GateOp(gate, qubits))

    def gate(self, name: str, *qubits: int, params: Sequence[float] = ()) -> "QuantumCircuit":
        """Append a standard-library gate by name."""
        return self.apply(standard_gate(name, params), *qubits)

    def unitary(self, matrix: np.ndarray, *qubits: int, name: str = "unitary") -> "QuantumCircuit":
        """Append an arbitrary unitary matrix on ``qubits``."""
        return self.apply(unitary_gate(matrix, name=name), *qubits)

    # -- standard gate builders ----------------------------------------------

    def i(self, qubit: int) -> "QuantumCircuit":
        return self.gate("id", qubit)

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.gate("x", qubit)

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.gate("y", qubit)

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.gate("z", qubit)

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.gate("h", qubit)

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.gate("s", qubit)

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.gate("sdg", qubit)

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.gate("t", qubit)

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.gate("tdg", qubit)

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.gate("sx", qubit)

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.gate("rx", qubit, params=(theta,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.gate("ry", qubit, params=(theta,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.gate("rz", qubit, params=(theta,))

    def u1(self, lam: float, qubit: int) -> "QuantumCircuit":
        return self.gate("u1", qubit, params=(lam,))

    def u2(self, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.gate("u2", qubit, params=(phi, lam))

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.gate("u3", qubit, params=(theta, phi, lam))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.gate("cx", control, target)

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.gate("cy", control, target)

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.gate("cz", control, target)

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.gate("ch", control, target)

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.gate("swap", qubit_a, qubit_b)

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.gate("crz", control, target, params=(theta,))

    def cu1(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        return self.gate("cu1", control, target, params=(lam,))

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.gate("ccx", c1, c2, target)

    def cswap(self, control: int, t1: int, t2: int) -> "QuantumCircuit":
        return self.gate("cswap", control, t1, t2)

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        return self.gate("cp", control, target, params=(lam,))

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.gate("rzz", a, b, params=(theta,))

    def rxx(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.gate("rxx", a, b, params=(theta,))

    def measure(self, qubit: int, clbit: Optional[int] = None) -> "QuantumCircuit":
        """Measure ``qubit`` into ``clbit`` (defaults to the same index)."""
        return self.append(Measurement(qubit, qubit if clbit is None else clbit))

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into the classical bit of the same index."""
        for qubit in range(self.num_qubits):
            self.measure(qubit, qubit)
        return self

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        return self.append(Barrier(qubits))

    # -- inspection ------------------------------------------------------------

    def gate_ops(self) -> List[GateOp]:
        """All unitary operations, in order."""
        return [op for op in self._instructions if isinstance(op, GateOp)]

    def measurements(self) -> List[Measurement]:
        return [op for op in self._instructions if isinstance(op, Measurement)]

    def count_ops(self) -> dict:
        """Histogram of gate names (measurements under ``"measure"``)."""
        counts: dict = {}
        for op in self._instructions:
            if isinstance(op, GateOp):
                key = op.gate.name
            elif isinstance(op, Measurement):
                key = "measure"
            else:
                key = "barrier"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def num_single_qubit_gates(self) -> int:
        return sum(
            1
            for op in self._instructions
            if isinstance(op, GateOp) and op.gate.num_qubits == 1
        )

    def num_two_qubit_gates(self) -> int:
        return sum(
            1
            for op in self._instructions
            if isinstance(op, GateOp) and op.gate.num_qubits == 2
        )

    def num_measurements(self) -> int:
        return len(self.measurements())

    def has_mid_circuit_measurement(self) -> bool:
        """True when any gate follows a measurement on any qubit.

        The optimized executor requires all measurements to be terminal; this
        predicate is used to validate its inputs.
        """
        measured = set()
        for op in self._instructions:
            if isinstance(op, Measurement):
                measured.add(op.qubit)
            elif isinstance(op, GateOp):
                if any(q in measured for q in op.qubits):
                    return True
        return False

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        dup = QuantumCircuit(
            self.num_qubits, self.num_clbits, name=name or self.name
        )
        dup._instructions = list(self._instructions)
        return dup

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append all of ``other``'s instructions to this circuit in place."""
        if other.num_qubits > self.num_qubits or other.num_clbits > self.num_clbits:
            raise CircuitError(
                "composed circuit does not fit "
                f"({other.num_qubits}q/{other.num_clbits}c into "
                f"{self.num_qubits}q/{self.num_clbits}c)"
            )
        for instr in other:
            self.append(instr)
        return self

    def inverse(self, name: Optional[str] = None) -> "QuantumCircuit":
        """The adjoint circuit (gates reversed and daggered).

        Only valid for measurement-free circuits.
        """
        if self.measurements():
            raise CircuitError("cannot invert a circuit containing measurements")
        inv = QuantumCircuit(
            self.num_qubits, self.num_clbits, name=name or self.name + "_inv"
        )
        for instr in reversed(self._instructions):
            if isinstance(instr, GateOp):
                inv.apply(instr.gate.dagger(), *instr.qubits)
            elif isinstance(instr, Barrier):
                inv.append(instr)
        return inv

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"ops={len(self._instructions)})"
        )
