"""ASCII circuit rendering.

``draw(circuit)`` returns a fixed-width text diagram — one row per qubit,
one column block per layer (the same ASAP layers the noise model injects
errors into, so the drawing doubles as a visualization of the error
positions).  Used by the examples and handy in a REPL::

    >>> from repro import QuantumCircuit
    >>> from repro.circuits.draw import draw
    >>> print(draw(QuantumCircuit(2).h(0).cx(0, 1).measure_all()))
    q0: ─[H]─■───M
    q1: ─────X───M
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .circuit import GateOp, QuantumCircuit
from .layers import layerize

__all__ = ["draw"]

_H_WIRE = "─"


def _gate_label(op: GateOp, qubit: int) -> str:
    """Cell text for ``op`` on wire ``qubit``."""
    name = op.gate.name
    if name == "cx":
        return "■" if qubit == op.qubits[0] else "X"
    if name == "cz":
        return "■"
    if name == "swap":
        return "x"
    if name == "ccx":
        return "■" if qubit in op.qubits[:2] else "X"
    if len(op.qubits) == 2 and qubit == op.qubits[0] and name.startswith("c"):
        return "■"
    label = name.upper()
    if op.gate.params:
        label += f"({op.gate.params[0]:.2g})"
        if len(op.gate.params) > 1:
            label = name.upper() + "(..)"
    return f"[{label}]"


def draw(circuit: QuantumCircuit, max_width: Optional[int] = None) -> str:
    """Render ``circuit`` as an ASCII diagram.

    Parameters
    ----------
    max_width:
        Wrap the diagram into stacked blocks of at most this many text
        columns (``None`` = no wrapping).
    """
    layered = layerize(circuit, require_terminal_measurements=False)
    num_qubits = circuit.num_qubits

    # Build one text column per layer (plus one for measurements).
    columns: List[Dict[int, str]] = []
    spans: List[Optional[tuple]] = []  # vertical connector span per column
    for layer in layered.layers:
        column: Dict[int, str] = {}
        span = None
        for op in layer:
            for qubit in op.qubits:
                column[qubit] = _gate_label(op, qubit)
            if len(op.qubits) > 1:
                span = (min(op.qubits), max(op.qubits))
        columns.append(column)
        spans.append(span)
    if layered.measurements:
        column = {m.qubit: "M" for m in layered.measurements}
        columns.append(column)
        spans.append(None)

    # Compute each column's width and emit.
    widths = [
        max((len(text) for text in column.values()), default=1)
        for column in columns
    ]
    lines = []
    for qubit in range(num_qubits):
        cells = []
        for column, width, span in zip(columns, widths, spans):
            text = column.get(qubit)
            if text is None:
                # Draw a vertical connector through intermediate wires of a
                # multi-qubit gate, otherwise plain wire.
                if span and span[0] < qubit < span[1]:
                    text = "│"
                else:
                    text = _H_WIRE
                cells.append(text.center(width, _H_WIRE))
            else:
                cells.append(text.center(width, _H_WIRE))
        lines.append(f"q{qubit}: {_H_WIRE}" + _H_WIRE.join(cells))

    if max_width is None:
        return "\n".join(lines)

    # Wrap long diagrams into stacked blocks.
    blocks: List[str] = []
    prefix_len = len(f"q{num_qubits - 1}: ") + 1
    body_width = max(max_width - prefix_len, 10)
    bodies = [line[prefix_len:] for line in lines]
    prefixes = [line[:prefix_len] for line in lines]
    start = 0
    while start < len(bodies[0]):
        chunk = [
            prefixes[i] + bodies[i][start : start + body_width]
            for i in range(num_qubits)
        ]
        blocks.append("\n".join(chunk))
        start += body_width
    return "\n\n".join(blocks)
