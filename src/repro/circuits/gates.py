"""Quantum gate definitions and the standard gate library.

A :class:`Gate` is an immutable description of a unitary operator: a name,
an arity (number of qubits it acts on), optional real parameters, and the
unitary matrix itself.  Gates are value objects — two gates with the same
name, arity, parameters and matrix compare equal and hash equal, which the
trial-reordering core relies on when grouping error events.

The module-level constructors (:func:`h`, :func:`cx`, :func:`rz`, ...) build
the standard library used by the benchmark generators and the QASM parser.
All matrices follow the big-endian qubit convention used across this
package: for a multi-qubit gate, the first qubit argument is the most
significant bit of the matrix index.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "Gate",
    "GateError",
    "standard_gate",
    "is_standard_gate",
    "STANDARD_GATE_ARITY",
    "i_gate",
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "t",
    "tdg",
    "sx",
    "rx",
    "ry",
    "rz",
    "u1",
    "u2",
    "u3",
    "cx",
    "cz",
    "cy",
    "ch",
    "swap",
    "crz",
    "cu1",
    "cp",
    "rzz",
    "rxx",
    "ccx",
    "cswap",
    "unitary",
]

_ATOL = 1e-10


class GateError(ValueError):
    """Raised for malformed gate construction (bad arity, non-unitary, ...)."""


class Gate:
    """An immutable quantum gate: a named unitary on ``num_qubits`` qubits.

    Parameters
    ----------
    name:
        Lower-case identifier, e.g. ``"h"`` or ``"cx"``.
    num_qubits:
        Arity of the gate (1 for single-qubit, 2 for CNOT, ...).
    matrix:
        The ``2**num_qubits`` square unitary matrix.
    params:
        Optional real parameters (rotation angles).  Stored only for
        round-tripping to QASM and for display; the matrix is authoritative.
    check_unitary:
        When true (default) the constructor verifies unitarity.  Internal
        callers constructing known-good matrices may disable the check.
    """

    __slots__ = (
        "_name",
        "_num_qubits",
        "_matrix",
        "_params",
        "_key",
        "_diagonal",
        "_permutation",
    )

    def __init__(
        self,
        name: str,
        num_qubits: int,
        matrix: np.ndarray,
        params: Sequence[float] = (),
        check_unitary: bool = True,
    ) -> None:
        if num_qubits < 1:
            raise GateError(f"gate arity must be >= 1, got {num_qubits}")
        matrix = np.asarray(matrix, dtype=np.complex128)
        dim = 2**num_qubits
        if matrix.shape != (dim, dim):
            raise GateError(
                f"gate '{name}' on {num_qubits} qubit(s) needs a "
                f"{dim}x{dim} matrix, got shape {matrix.shape}"
            )
        if check_unitary:
            product = matrix @ matrix.conj().T
            if not np.allclose(product, np.eye(dim), atol=1e-8):
                raise GateError(f"matrix for gate '{name}' is not unitary")
        self._name = name
        self._num_qubits = num_qubits
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self._params = tuple(float(p) for p in params)
        # Rounded matrix bytes make the key robust to float noise while
        # keeping distinct gates distinct.
        self._key = (
            self._name,
            self._num_qubits,
            self._params,
            np.round(self._matrix, 12).tobytes(),
        )
        # Structure flags, computed once at construction so hot paths never
        # rescan the matrix per application (matrices are at most 8x8 here,
        # so the scan is cheap to do eagerly).
        off_diagonal = matrix - np.diag(np.diagonal(matrix))
        self._diagonal = bool(np.count_nonzero(off_diagonal) == 0)
        support = np.abs(matrix) > 1e-12
        self._permutation = bool(
            np.all(support.sum(axis=0) == 1) and np.all(support.sum(axis=1) == 1)
        )

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def matrix(self) -> np.ndarray:
        """The unitary matrix (read-only view)."""
        return self._matrix

    @property
    def params(self) -> Tuple[float, ...]:
        return self._params

    @property
    def is_diagonal(self) -> bool:
        """Whether the matrix is diagonal (flag cached at construction)."""
        return self._diagonal

    @property
    def is_permutation(self) -> bool:
        """One nonzero per row/column — a phase permutation (cached flag)."""
        return self._permutation

    def dagger(self) -> "Gate":
        """Return the adjoint gate, named ``<name>_dg``."""
        return Gate(
            self._name + "_dg",
            self._num_qubits,
            self._matrix.conj().T,
            params=tuple(-p for p in self._params),
            check_unitary=False,
        )

    def is_identity(self, atol: float = _ATOL) -> bool:
        """True when the matrix equals the identity up to global phase."""
        dim = 2**self._num_qubits
        # Strip global phase using the first nonzero diagonal entry.
        diag = np.diagonal(self._matrix)
        anchor = diag[np.argmax(np.abs(diag))]
        if abs(anchor) < atol:
            return False
        phase = anchor / abs(anchor)
        return bool(np.allclose(self._matrix, phase * np.eye(dim), atol=atol))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        if self._params:
            args = ", ".join(f"{p:.6g}" for p in self._params)
            return f"Gate({self._name}({args}), qubits={self._num_qubits})"
        return f"Gate({self._name}, qubits={self._num_qubits})"


# ---------------------------------------------------------------------------
# Fixed (parameter-free) matrices
# ---------------------------------------------------------------------------

_SQRT1_2 = 1.0 / math.sqrt(2.0)

_FIXED_MATRICES: Dict[str, np.ndarray] = {
    "id": np.eye(2),
    "x": np.array([[0, 1], [1, 0]]),
    "y": np.array([[0, -1j], [1j, 0]]),
    "z": np.array([[1, 0], [0, -1]]),
    "h": np.array([[_SQRT1_2, _SQRT1_2], [_SQRT1_2, -_SQRT1_2]]),
    "s": np.array([[1, 0], [0, 1j]]),
    "sdg": np.array([[1, 0], [0, -1j]]),
    "t": np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]]),
    "tdg": np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]]),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]),
    "cx": np.array(
        [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 1, 0],
        ]
    ),
    "cy": np.array(
        [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, 0, -1j],
            [0, 0, 1j, 0],
        ]
    ),
    "cz": np.diag([1, 1, 1, -1]),
    "ch": np.array(
        [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, _SQRT1_2, _SQRT1_2],
            [0, 0, _SQRT1_2, -_SQRT1_2],
        ]
    ),
    "swap": np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ]
    ),
    "ccx": np.eye(8),
    "cswap": np.eye(8),
}
_FIXED_MATRICES["ccx"] = np.eye(8)
_FIXED_MATRICES["ccx"][6:8, 6:8] = np.array([[0, 1], [1, 0]])
# Fredkin: swap the two targets when the (most significant) control is 1.
_FIXED_MATRICES["cswap"] = np.eye(8)
_FIXED_MATRICES["cswap"][[5, 6], :] = _FIXED_MATRICES["cswap"][[6, 5], :]

_FIXED_ARITY: Dict[str, int] = {
    "id": 1,
    "x": 1,
    "y": 1,
    "z": 1,
    "h": 1,
    "s": 1,
    "sdg": 1,
    "t": 1,
    "tdg": 1,
    "sx": 1,
    "cx": 2,
    "cy": 2,
    "cz": 2,
    "ch": 2,
    "swap": 2,
    "ccx": 3,
    "cswap": 3,
}

_PARAMETRIC_ARITY: Dict[str, Tuple[int, int]] = {
    # name -> (num_qubits, num_params)
    "rx": (1, 1),
    "ry": (1, 1),
    "rz": (1, 1),
    "u1": (1, 1),
    "u2": (1, 2),
    "u3": (1, 3),
    "crz": (2, 1),
    "cu1": (2, 1),
    "cp": (2, 1),
    "rzz": (2, 1),
    "rxx": (2, 1),
}

#: Arity of every gate name understood by :func:`standard_gate`.
STANDARD_GATE_ARITY: Dict[str, int] = dict(_FIXED_ARITY)
STANDARD_GATE_ARITY.update({k: v[0] for k, v in _PARAMETRIC_ARITY.items()})

_FIXED_CACHE: Dict[str, Gate] = {}


def is_standard_gate(name: str) -> bool:
    """Whether ``name`` is in the standard library (fixed or parametric)."""
    return name in STANDARD_GATE_ARITY


def _parametric_matrix(name: str, params: Sequence[float]) -> np.ndarray:
    if name == "rx":
        (theta,) = params
        c, sn = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -1j * sn], [-1j * sn, c]])
    if name == "ry":
        (theta,) = params
        c, sn = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -sn], [sn, c]])
    if name == "rz":
        (theta,) = params
        return np.array(
            [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]]
        )
    if name == "u1":
        (lam,) = params
        return np.array([[1, 0], [0, cmath.exp(1j * lam)]])
    if name == "u2":
        phi, lam = params
        return _SQRT1_2 * np.array(
            [
                [1, -cmath.exp(1j * lam)],
                [cmath.exp(1j * phi), cmath.exp(1j * (phi + lam))],
            ]
        )
    if name == "u3":
        theta, phi, lam = params
        c, sn = math.cos(theta / 2), math.sin(theta / 2)
        return np.array(
            [
                [c, -cmath.exp(1j * lam) * sn],
                [cmath.exp(1j * phi) * sn, cmath.exp(1j * (phi + lam)) * c],
            ]
        )
    if name == "crz":
        (theta,) = params
        mat = np.eye(4, dtype=np.complex128)
        mat[2, 2] = cmath.exp(-1j * theta / 2)
        mat[3, 3] = cmath.exp(1j * theta / 2)
        return mat
    if name in ("cu1", "cp"):
        (lam,) = params
        mat = np.eye(4, dtype=np.complex128)
        mat[3, 3] = cmath.exp(1j * lam)
        return mat
    if name == "rzz":
        (theta,) = params
        phase = cmath.exp(-1j * theta / 2)
        return np.diag([phase, phase.conjugate(), phase.conjugate(), phase])
    if name == "rxx":
        (theta,) = params
        c, sn = math.cos(theta / 2), math.sin(theta / 2)
        return np.array(
            [
                [c, 0, 0, -1j * sn],
                [0, c, -1j * sn, 0],
                [0, -1j * sn, c, 0],
                [-1j * sn, 0, 0, c],
            ]
        )
    raise GateError(f"unknown parametric gate '{name}'")


def standard_gate(name: str, params: Sequence[float] = ()) -> Gate:
    """Build a gate from the standard library by name.

    Fixed gates are cached and shared; parametric gates are built per call.
    """
    params = tuple(float(p) for p in params)
    if name in _FIXED_ARITY:
        if params:
            raise GateError(f"gate '{name}' takes no parameters")
        cached = _FIXED_CACHE.get(name)
        if cached is None:
            cached = Gate(
                name,
                _FIXED_ARITY[name],
                _FIXED_MATRICES[name],
                check_unitary=False,
            )
            _FIXED_CACHE[name] = cached
        return cached
    if name in _PARAMETRIC_ARITY:
        arity, nparams = _PARAMETRIC_ARITY[name]
        if len(params) != nparams:
            raise GateError(
                f"gate '{name}' takes {nparams} parameter(s), got {len(params)}"
            )
        return Gate(
            name,
            arity,
            _parametric_matrix(name, params),
            params=params,
            check_unitary=False,
        )
    raise GateError(f"unknown standard gate '{name}'")


def unitary(matrix: np.ndarray, name: str = "unitary", params: Sequence[float] = ()) -> Gate:
    """Wrap an arbitrary unitary matrix as a gate (unitarity is checked)."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    dim = matrix.shape[0]
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GateError("unitary() needs a square matrix")
    num_qubits = int(round(math.log2(dim)))
    if 2**num_qubits != dim:
        raise GateError(f"matrix dimension {dim} is not a power of two")
    return Gate(name, num_qubits, matrix, params=params)


# --- convenience constructors ----------------------------------------------


def i_gate() -> Gate:
    """The single-qubit identity."""
    return standard_gate("id")


def x() -> Gate:
    return standard_gate("x")


def y() -> Gate:
    return standard_gate("y")


def z() -> Gate:
    return standard_gate("z")


def h() -> Gate:
    return standard_gate("h")


def s() -> Gate:
    return standard_gate("s")


def sdg() -> Gate:
    return standard_gate("sdg")


def t() -> Gate:
    return standard_gate("t")


def tdg() -> Gate:
    return standard_gate("tdg")


def sx() -> Gate:
    return standard_gate("sx")


def rx(theta: float) -> Gate:
    return standard_gate("rx", (theta,))


def ry(theta: float) -> Gate:
    return standard_gate("ry", (theta,))


def rz(theta: float) -> Gate:
    return standard_gate("rz", (theta,))


def u1(lam: float) -> Gate:
    return standard_gate("u1", (lam,))


def u2(phi: float, lam: float) -> Gate:
    return standard_gate("u2", (phi, lam))


def u3(theta: float, phi: float, lam: float) -> Gate:
    return standard_gate("u3", (theta, phi, lam))


def cx() -> Gate:
    return standard_gate("cx")


def cy() -> Gate:
    return standard_gate("cy")


def cz() -> Gate:
    return standard_gate("cz")


def ch() -> Gate:
    return standard_gate("ch")


def swap() -> Gate:
    return standard_gate("swap")


def crz(theta: float) -> Gate:
    return standard_gate("crz", (theta,))


def cu1(lam: float) -> Gate:
    return standard_gate("cu1", (lam,))


def cp(lam: float) -> Gate:
    """Controlled phase (alias of ``cu1``, the modern OpenQASM name)."""
    return standard_gate("cp", (lam,))


def rzz(theta: float) -> Gate:
    """Two-qubit ZZ interaction ``exp(-i theta/2 Z(x)Z)``."""
    return standard_gate("rzz", (theta,))


def rxx(theta: float) -> Gate:
    """Two-qubit XX interaction ``exp(-i theta/2 X(x)X)``."""
    return standard_gate("rxx", (theta,))


def cswap() -> Gate:
    """Fredkin gate: swap the last two qubits when the first is |1>."""
    return standard_gate("cswap")


def ccx() -> Gate:
    return standard_gate("ccx")


def pauli_gate(label: str) -> Gate:
    """Return the Pauli gate for label ``"X"``, ``"Y"``, ``"Z"`` or ``"I"``."""
    lowered = label.lower()
    if lowered not in ("x", "y", "z", "id", "i"):
        raise GateError(f"not a Pauli label: {label!r}")
    return standard_gate("id" if lowered in ("i", "id") else lowered)


def random_su4(rng: "np.random.Generator", name: str = "su4") -> Gate:
    """A Haar-random two-qubit unitary (used by Quantum Volume circuits).

    Drawn via the QR decomposition of a complex Ginibre matrix, the standard
    construction for Haar-distributed unitaries.
    """
    ginibre = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
    q_mat, r_mat = np.linalg.qr(ginibre)
    # Normalize phases so the distribution is exactly Haar.
    phases = np.diagonal(r_mat) / np.abs(np.diagonal(r_mat))
    q_mat = q_mat * phases
    return Gate(name, 2, q_mat, check_unitary=False)
