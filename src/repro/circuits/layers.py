"""As-soon-as-possible circuit layering.

The paper's trial model (Sec. IV-B) divides the simulated circuit into
*layers* in which no two operations touch the same qubit; error operators are
injected only at the end of a layer.  :func:`layerize` performs the standard
ASAP scheduling pass and returns a :class:`LayeredCircuit`, the structure the
trial sampler and the execution scheduler both consume.

Measurements are collected separately: the optimized executor requires them
to be terminal (checked here), and measurement errors are classical bit
flips that never interact with layering.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .circuit import Barrier, CircuitError, GateOp, Measurement, QuantumCircuit

__all__ = ["LayeredCircuit", "layerize"]


class LayeredCircuit:
    """A circuit scheduled into qubit-disjoint layers.

    Attributes
    ----------
    circuit:
        The source circuit.
    layers:
        ``layers[i]`` is the tuple of :class:`GateOp` in layer ``i``.  Within
        a layer no two gates share a qubit.
    measurements:
        The terminal measurements, in program order.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        layers: Sequence[Sequence[GateOp]],
        measurements: Sequence[Measurement],
    ) -> None:
        self.circuit = circuit
        self.layers: Tuple[Tuple[GateOp, ...], ...] = tuple(
            tuple(layer) for layer in layers
        )
        self.measurements: Tuple[Measurement, ...] = tuple(measurements)
        self._gates_per_layer = tuple(len(layer) for layer in self.layers)
        # cumulative_gates[i] == number of gate ops in layers[0:i]
        cumulative = [0]
        for count in self._gates_per_layer:
            cumulative.append(cumulative[-1] + count)
        self._cumulative_gates = tuple(cumulative)

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def depth(self) -> int:
        """Circuit depth, i.e. the number of layers."""
        return len(self.layers)

    @property
    def num_gates(self) -> int:
        """Total number of unitary gate applications."""
        return self._cumulative_gates[-1]

    def gates_in_layer(self, layer: int) -> int:
        return self._gates_per_layer[layer]

    def gates_between(self, start_layer: int, end_layer: int) -> int:
        """Number of gate ops in layers ``start_layer .. end_layer - 1``.

        This is the closed-form segment cost used by the counting backend.
        """
        if not 0 <= start_layer <= end_layer <= self.num_layers:
            raise ValueError(
                f"bad layer range [{start_layer}, {end_layer}) for "
                f"{self.num_layers} layer(s)"
            )
        return self._cumulative_gates[end_layer] - self._cumulative_gates[start_layer]

    def __repr__(self) -> str:
        return (
            f"LayeredCircuit({self.circuit.name!r}, layers={self.num_layers}, "
            f"gates={self.num_gates}, measurements={len(self.measurements)})"
        )


def layerize(circuit: QuantumCircuit, require_terminal_measurements: bool = True) -> LayeredCircuit:
    """Schedule ``circuit`` into ASAP layers.

    Each gate is placed in the earliest layer after the last layer touching
    any of its qubits.  A :class:`Barrier` advances the frontier of every
    qubit it covers (all qubits for an empty barrier) to the current maximum,
    forcing subsequent gates into later layers.

    Parameters
    ----------
    require_terminal_measurements:
        When true (default), raise :class:`CircuitError` if a gate follows a
        measurement on the same qubit — the optimized executor's contract.
    """
    if require_terminal_measurements and circuit.has_mid_circuit_measurement():
        raise CircuitError(
            f"circuit {circuit.name!r} has mid-circuit measurement; the "
            "trial-reordering executor requires terminal measurements"
        )

    # frontier[q] == first layer index free for qubit q
    frontier: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    layers: List[List[GateOp]] = []
    measurements: List[Measurement] = []

    for instr in circuit:
        if isinstance(instr, Measurement):
            measurements.append(instr)
            continue
        if isinstance(instr, Barrier):
            covered = instr.qubits or tuple(range(circuit.num_qubits))
            fence = max(frontier[q] for q in covered)
            for q in covered:
                frontier[q] = fence
            continue
        # GateOp
        layer_index = max(frontier[q] for q in instr.qubits)
        while len(layers) <= layer_index:
            layers.append([])
        layers[layer_index].append(instr)
        for q in instr.qubits:
            frontier[q] = layer_index + 1

    return LayeredCircuit(circuit, layers, measurements)
