"""Typed metric registry with atomic snapshots and an OpenMetrics exporter.

The trace layer (:mod:`repro.obs.recorder`) records *everything that
happened*; this module holds *current totals* — the shape a served or
long-running process exposes to a scraper.  Three instrument types, all
labeled:

:class:`Counter`
    Monotone total.  ``inc()`` only; decrementing raises.
:class:`Gauge`
    Settable level; also tracks its running ``peak``.
:class:`Histogram`
    Cumulative bucket counts plus ``sum``/``count`` (observation units
    are the caller's; the recorder bridge observes span seconds).

A :class:`MetricRegistry` owns the instruments.  All mutation and the
:meth:`~MetricRegistry.snapshot` read side share one lock, so a snapshot
is a *consistent cut*: no half-applied increment is ever visible, and the
returned structure is a deep copy the caller may mutate freely.

:func:`registry_from_recorder` is the bridge the profiler and the CLI
use: it folds an :class:`~repro.obs.recorder.InMemoryRecorder` into three
standard families — ``repro_counter`` (label ``name``), ``repro_gauge``
(label ``name``; value = running peak) and ``repro_span_seconds``
(label ``span``; one histogram per span name) — plus
``repro_trace_events`` / ``repro_trace_dropped_events``.  Because the
recorder's aggregates stay exact under ring-buffer truncation, so do the
bridged counter and gauge families; only the span histograms describe
the retained event window.  Lint rule ``P025``
(:func:`repro.lint.lint_metrics_trace`) proves every bridged total equals
an independent replay of the trace.

:func:`render_openmetrics` emits the `OpenMetrics text format`_ (the
Prometheus exposition superset): ``# TYPE``/``# HELP`` headers, a
``_total`` suffix on counter samples, ``_bucket{le=...}``/``_sum``/
``_count`` for histograms, and the mandatory ``# EOF`` trailer.
:func:`validate_openmetrics` is the schema check used by tests and CI.

.. _OpenMetrics text format:
   https://prometheus.io/docs/specifications/om/open_metrics_spec/
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, List, Mapping, Sequence, Tuple

from ..core.atomicio import atomic_write_text
from .recorder import InMemoryRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "registry_from_recorder",
    "render_openmetrics",
    "validate_openmetrics",
    "write_openmetrics",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds): spans range from microsecond
#: kernel programs to multi-second whole runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

_LabelValues = Tuple[str, ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labels(label_names: Sequence[str]) -> Tuple[str, ...]:
    for label in label_names:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
    return tuple(label_names)


class _Instrument:
    """Base: one metric family; per-labelset children live in ``_series``."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        lock: threading.Lock,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names = _check_labels(label_names)
        self._lock = lock
        self._series: Dict[_LabelValues, object] = {}

    def _key(self, labels: Mapping[str, str]) -> _LabelValues:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[label]) for label in self.label_names)


class Counter(_Instrument):
    """Monotone counter family."""

    kind = "counter"

    def inc(self, value: float = 1, **labels: str) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(self._series.get(key, 0.0)) + value

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class Gauge(_Instrument):
    """Settable level; remembers its running peak per labelset."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            _, peak = self._series.get(key, (0.0, None))
            if peak is None or value > peak:
                peak = float(value)
            self._series[key] = (float(value), peak)

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), (0.0, 0.0))[0])

    def peak(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), (0.0, 0.0))[1])


class Histogram(_Instrument):
    """Cumulative-bucket histogram family."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"buckets": [0] * len(self.buckets),
                          "sum": 0.0, "count": 0}
                self._series[key] = series
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    series["buckets"][position] += 1
            series["sum"] += float(value)
            series["count"] += 1

    def count(self, **labels: str) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            return int(series["count"]) if series else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
            return float(series["sum"]) if series else 0.0


class MetricRegistry:
    """A named family registry with one consistent-snapshot lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Instrument] = {}

    def _add(self, instrument: _Instrument) -> _Instrument:
        with self._lock:
            existing = self._families.get(instrument.name)
            if existing is not None:
                if type(existing) is not type(instrument) or (
                    existing.label_names != instrument.label_names
                ):
                    raise ValueError(
                        f"metric {instrument.name!r} already registered "
                        "with a different type or label set"
                    )
                return existing
            self._families[instrument.name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._add(Counter(name, help, labels, self._lock))  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._add(Gauge(name, help, labels, self._lock))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._add(  # type: ignore[return-value]
            Histogram(name, help, labels, self._lock, buckets=buckets)
        )

    def families(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A consistent, deep-copied view of every family.

        Taken under the registry lock, so concurrent ``inc``/``set``/
        ``observe`` calls are either fully included or fully absent —
        never half-applied.  Shape per family::

            {"type", "help", "label_names", "series": [
                {"labels": {...}, "value": ...}                  # counter
                {"labels": {...}, "value": ..., "peak": ...}     # gauge
                {"labels": {...}, "buckets": {"0.001": n, ...},
                 "sum": ..., "count": ...}                       # histogram
            ]}
        """
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for name in sorted(self._families):
                family = self._families[name]
                series: List[Dict[str, object]] = []
                for key in sorted(family._series):
                    labels = dict(zip(family.label_names, key))
                    raw = family._series[key]
                    if family.kind == "counter":
                        series.append({"labels": labels, "value": raw})
                    elif family.kind == "gauge":
                        value, peak = raw  # type: ignore[misc]
                        series.append(
                            {"labels": labels, "value": value, "peak": peak}
                        )
                    else:
                        histogram: Histogram = family  # type: ignore[assignment]
                        series.append(
                            {
                                "labels": labels,
                                "buckets": {
                                    _format_value(bound): count
                                    for bound, count in zip(
                                        histogram.buckets,
                                        raw["buckets"],  # type: ignore[index]
                                    )
                                },
                                "sum": raw["sum"],  # type: ignore[index]
                                "count": raw["count"],  # type: ignore[index]
                            }
                        )
                entry: Dict[str, object] = {
                    "type": family.kind,
                    "help": family.help,
                    "label_names": list(family.label_names),
                    "series": series,
                }
                if family.kind == "histogram":
                    entry["bucket_bounds"] = [
                        _format_value(b)
                        for b in family.buckets  # type: ignore[attr-defined]
                    ]
                out[name] = entry
            return out


# ---------------------------------------------------------------------------
# Recorder bridge
# ---------------------------------------------------------------------------

#: Family names the recorder bridge emits; P025 keys off these.
COUNTER_FAMILY = "repro_counter"
GAUGE_FAMILY = "repro_gauge"
SPAN_FAMILY = "repro_span_seconds"
EVENTS_FAMILY = "repro_trace_events"
DROPPED_FAMILY = "repro_trace_dropped_events"


def registry_from_recorder(recorder: InMemoryRecorder) -> MetricRegistry:
    """Fold a recorded run into the standard metric families.

    Counter and gauge families come from the recorder's out-of-band
    aggregates, so they are exact even when the ring buffer truncated the
    event timeline; the span histograms replay matched ``B``/``E`` pairs
    and therefore describe the retained window only (``P025`` degrades
    to aggregate checks accordingly).
    """
    registry = MetricRegistry()
    counters = registry.counter(
        COUNTER_FAMILY, "Trace counter running totals.", labels=("name",)
    )
    for name in sorted(recorder.counters):
        counters.inc(recorder.counters[name], name=name)
    gauges = registry.gauge(
        GAUGE_FAMILY, "Trace gauge running peaks.", labels=("name",)
    )
    for name in sorted(recorder.gauge_peaks):
        gauges.set(recorder.gauge_peaks[name], name=name)
    spans = registry.histogram(
        SPAN_FAMILY,
        "Matched span durations from the retained event window.",
        labels=("span",),
    )
    durations = _span_duration_samples(recorder)
    for span in sorted(durations):
        for seconds in durations[span]:
            spans.observe(seconds, span=span)
    events = registry.counter(
        EVENTS_FAMILY, "Events retained in the recorder ring."
    )
    events.inc(len(recorder.events))
    dropped = registry.counter(
        DROPPED_FAMILY, "Events evicted by the recorder ring bound."
    )
    dropped.inc(getattr(recorder, "dropped_events", 0))
    return registry


def _span_duration_samples(
    recorder: InMemoryRecorder,
) -> Dict[str, List[float]]:
    """Per-span-name duration samples (LIFO pairing, unbalanced ignored).

    Same pairing rule as :meth:`InMemoryRecorder.span_durations`, but
    keeping individual samples so the histogram sees each observation.
    """
    stacks: Dict[str, List[float]] = {}
    samples: Dict[str, List[float]] = {}
    for event in recorder.events:
        if event.ph == "B":
            stacks.setdefault(event.name, []).append(event.ts)
        elif event.ph == "E":
            stack = stacks.get(event.name)
            if stack:
                started = stack.pop()
                samples.setdefault(event.name, []).append(event.ts - started)
    return samples


# ---------------------------------------------------------------------------
# OpenMetrics exposition
# ---------------------------------------------------------------------------


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"' for key in sorted(labels)
    )
    return "{" + inner + "}"


def render_openmetrics(snapshot: Mapping[str, Dict[str, object]]) -> str:
    """Render a :meth:`MetricRegistry.snapshot` as OpenMetrics text."""
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family["type"]
        lines.append(f"# TYPE {name} {kind}")
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        for series in family["series"]:  # type: ignore[union-attr]
            labels: Dict[str, str] = dict(series["labels"])  # type: ignore[index,arg-type]
            if kind == "counter":
                lines.append(
                    f"{name}_total{_labels_text(labels)} "
                    f"{_format_value(series['value'])}"  # type: ignore[index,arg-type]
                )
            elif kind == "gauge":
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{_format_value(series['value'])}"  # type: ignore[index,arg-type]
                )
            else:
                # ``observe`` increments every bucket whose bound covers
                # the value, so stored counts are already cumulative as
                # the exposition format requires.
                for bound, count in series["buckets"].items():  # type: ignore[index,union-attr]
                    bucket_labels = dict(labels, le=bound)
                    lines.append(
                        f"{name}_bucket{_labels_text(bucket_labels)} "
                        f"{_format_value(count)}"
                    )
                inf_labels = dict(labels, le="+Inf")
                lines.append(
                    f"{name}_bucket{_labels_text(inf_labels)} "
                    f"{_format_value(series['count'])}"  # type: ignore[index,arg-type]
                )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} "
                    f"{_format_value(series['sum'])}"  # type: ignore[index,arg-type]
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} "
                    f"{_format_value(series['count'])}"  # type: ignore[index,arg-type]
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)\s*\Z"
)


def validate_openmetrics(text: str) -> List[str]:
    """Schema-check an OpenMetrics exposition; returns a problem list.

    Checks: every sample parses, every sample's family has a ``# TYPE``
    header, counter samples use the ``_total`` suffix, histogram
    ``_count`` equals the ``+Inf`` bucket, and the document ends with
    ``# EOF``.  An empty list means valid.
    """
    problems: List[str] = []
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        problems.append("document does not end with # EOF")
    types: Dict[str, str] = {}
    inf_buckets: Dict[str, float] = {}
    counts: Dict[str, float] = {}
    for position, line in enumerate(lines):
        if not line.strip() or line.strip() == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {position + 1}: malformed TYPE header")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {position + 1}: unparseable sample {line!r}")
            continue
        sample = match.group("name")
        family = sample
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if sample.endswith(suffix) and sample[: -len(suffix)] in types:
                family = sample[: -len(suffix)]
                break
        kind = types.get(family)
        if kind is None:
            problems.append(
                f"line {position + 1}: sample {sample!r} has no TYPE header"
            )
            continue
        if kind == "counter" and not sample.endswith("_total"):
            problems.append(
                f"line {position + 1}: counter sample {sample!r} lacks the "
                "_total suffix"
            )
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {position + 1}: non-numeric value "
                f"{match.group('value')!r}"
            )
            continue
        labels = match.group("labels") or ""
        series_key = family + "{" + ",".join(
            part for part in sorted(labels.split(","))
            if part and not part.startswith("le=")
        ) + "}"
        if kind == "histogram" and sample.endswith("_bucket"):
            if 'le="+Inf"' in labels:
                inf_buckets[series_key] = value
        elif kind == "histogram" and sample.endswith("_count"):
            counts[series_key] = value
    for series_key, count in counts.items():
        inf = inf_buckets.get(series_key)
        if inf is None:
            problems.append(f"histogram {series_key} has no +Inf bucket")
        elif inf != count:
            problems.append(
                f"histogram {series_key} +Inf bucket {inf} != count {count}"
            )
    return problems


def write_openmetrics(
    registry_or_snapshot, path: str
) -> str:
    """Render, validate and atomically write an OpenMetrics snapshot.

    Accepts a :class:`MetricRegistry` (snapshotted here) or an existing
    snapshot mapping; raises :class:`ValueError` if the rendered text
    fails :func:`validate_openmetrics` — a malformed exposition is an
    exporter bug and must not be shipped silently.
    """
    if isinstance(registry_or_snapshot, MetricRegistry):
        snapshot = registry_or_snapshot.snapshot()
    else:
        snapshot = registry_or_snapshot
    text = render_openmetrics(snapshot)
    problems = validate_openmetrics(text)
    if problems:
        raise ValueError(
            "refusing to write invalid OpenMetrics text: "
            + "; ".join(problems)
        )
    atomic_write_text(path, text)
    return text
