"""Observability: execution tracing, runtime metrics and profiling hooks.

The paper's argument is about *where the work goes* — which matrix-vector
multiplications are skipped, how many Maintained State Vectors are live at
once, when cached prefixes are stored and dropped.  This package makes
those quantities first-class observables instead of end-of-run aggregates:

* :class:`TraceRecorder` / :class:`NullRecorder` / :class:`InMemoryRecorder`
  — the write side.  Every instrumented hot path guards with a single
  ``if recorder:`` check and :class:`NullRecorder` is falsy, so disabled
  runs execute zero recorder calls (asserted in the overhead tests).
* :mod:`repro.obs.export` — Chrome ``chrome://tracing`` trace-event JSON
  (open a full noisy run in a trace viewer) and a structured JSON dump,
  plus the schema validator used by CI.
* :mod:`repro.obs.summary` — derive ``ExecutionOutcome`` / ``RunMetrics``
  *back out of the recorded events* and cross-check them against the
  executor's own counters (:func:`verify_trace`), plus the text
  formatters behind ``repro trace`` and ``repro run``.

Entry points::

    from repro import NoisySimulator, ibm_yorktown
    from repro.obs import InMemoryRecorder, summarize, write_chrome_trace

    recorder = InMemoryRecorder()
    result = sim.run(num_trials=1024, recorder=recorder)
    print(summarize(recorder).peak_msv)        # == result.metrics.peak_msv
    write_chrome_trace(recorder, "run.trace.json")

or end to end from the CLI: ``python -m repro trace grover``.
"""

from .recorder import InMemoryRecorder, NullRecorder, TraceEvent, TraceRecorder
from .export import (
    TRACE_SCHEMA,
    chrome_trace,
    trace_json,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace_json,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    registry_from_recorder,
    render_openmetrics,
    validate_openmetrics,
    write_openmetrics,
)
from .profile import (
    PROFILE_SCHEMA,
    SpanProfile,
    build_profile_report,
    flamegraph_lines,
    fold_spans,
    format_profile_report,
    kernel_class_attribution,
    measure_peaks,
    roofline_segments,
    write_flamegraph,
)
from .summary import (
    TraceSummary,
    format_run_metrics,
    format_trace_summary,
    metrics_from_trace,
    outcome_from_trace,
    segment_profile,
    summarize,
    verify_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemoryRecorder",
    "MetricRegistry",
    "NullRecorder",
    "PROFILE_SCHEMA",
    "SpanProfile",
    "TRACE_SCHEMA",
    "TraceEvent",
    "TraceRecorder",
    "TraceSummary",
    "build_profile_report",
    "chrome_trace",
    "flamegraph_lines",
    "fold_spans",
    "format_profile_report",
    "format_run_metrics",
    "format_trace_summary",
    "kernel_class_attribution",
    "measure_peaks",
    "metrics_from_trace",
    "outcome_from_trace",
    "registry_from_recorder",
    "render_openmetrics",
    "roofline_segments",
    "segment_profile",
    "summarize",
    "trace_json",
    "validate_chrome_trace",
    "validate_openmetrics",
    "verify_trace",
    "write_chrome_trace",
    "write_flamegraph",
    "write_openmetrics",
    "write_trace_json",
]
