"""Trace recorders: the write side of the observability layer.

Everything the executor, the cache and the compiled backend can report
flows through one tiny protocol — :class:`TraceRecorder` — with exactly
four primitive event kinds:

``begin(name)`` / ``end(name)``
    A *span*: a named duration (one ``Advance`` segment, one kernel
    program, one baseline trial, one whole run).  Spans of the same name
    nest like a stack; exporters pair them into Chrome ``B``/``E``
    duration events.
``instant(name)``
    A zero-duration marker (a cache store, an error injection, a trial
    finish).
``counter(name, value)``
    A cumulative, monotone counter (``ops.applied``, ``scratch.swaps``);
    recorders aggregate the running total and keep the per-increment
    timeline.
``gauge(name, value)``
    A sampled level (``msv.live``) — the timeline the paper's MSV metric
    is the maximum of.

All four accept arbitrary keyword arguments, stored as the event's
``args`` payload.

Bounded recording
-----------------
:class:`InMemoryRecorder` accepts ``max_events=N`` for long or served
runs: the event timeline becomes a ring buffer that keeps the *newest*
``N`` events and counts every evicted one in :attr:`dropped_events`.
Aggregates — :attr:`counters` running totals and :attr:`gauge_peaks`
maxima — are maintained out-of-band and stay **exact** under truncation;
only event-replay derivations (span pairing, instant counts) describe
the retained window.  See :func:`repro.obs.export.validate_chrome_trace`
for the exporter's side of the truncation contract.

Disabled-path contract
----------------------
Instrumented hot paths guard every recorder touch with a single truthiness
check — ``if recorder:`` — and :class:`NullRecorder` is *falsy*, so the
disabled path performs no recorder calls, no argument packing and no
allocations whatsoever.  ``recorder=None`` and ``recorder=NullRecorder()``
are therefore exactly equivalent on the hot path; the overhead test suite
asserts both (zero method calls, identical outcomes).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, NamedTuple, Optional, Tuple

__all__ = ["TraceEvent", "TraceRecorder", "NullRecorder", "InMemoryRecorder"]


class TraceEvent(NamedTuple):
    """One recorded event.

    ``ph`` follows the Chrome trace-event phase alphabet: ``B`` span
    begin, ``E`` span end, ``i`` instant, ``C`` counter/gauge sample.
    ``ts`` is a raw :func:`time.perf_counter` reading; exporters rebase
    it to the trace's first event.
    """

    ph: str
    name: str
    cat: str
    ts: float
    args: Optional[Dict[str, object]]


class TraceRecorder:
    """Recorder protocol; subclasses implement the four primitives.

    The base class supplies only the :meth:`span` convenience wrapper.
    Instrumentation sites must not call any method without first checking
    ``if recorder:`` — that single check is the whole disabled-path cost.
    """

    def begin(self, name: str, cat: str = "exec", **args: object) -> None:
        raise NotImplementedError

    def end(self, name: str, cat: str = "exec", **args: object) -> None:
        raise NotImplementedError

    def instant(self, name: str, cat: str = "exec", **args: object) -> None:
        raise NotImplementedError

    def counter(
        self, name: str, value: float = 1, cat: str = "counter", **args: object
    ) -> None:
        raise NotImplementedError

    def gauge(
        self, name: str, value: float, cat: str = "gauge", **args: object
    ) -> None:
        raise NotImplementedError

    @contextmanager
    def span(self, name: str, cat: str = "exec", **args: object) -> Iterator[None]:
        """``with recorder.span("phase"):`` — begin/end bracketing."""
        self.begin(name, cat, **args)
        try:
            yield
        finally:
            self.end(name, cat)


class NullRecorder(TraceRecorder):
    """The do-nothing recorder: falsy, so guarded call sites skip it.

    ``bool(NullRecorder()) is False`` — a hot path written as
    ``if recorder: recorder.counter(...)`` never invokes a method on it.
    The methods are still real no-ops so that *unguarded* (cold-path)
    callers remain safe.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def begin(self, name: str, cat: str = "exec", **args: object) -> None:
        pass

    def end(self, name: str, cat: str = "exec", **args: object) -> None:
        pass

    def instant(self, name: str, cat: str = "exec", **args: object) -> None:
        pass

    def counter(
        self, name: str, value: float = 1, cat: str = "counter", **args: object
    ) -> None:
        pass

    def gauge(
        self, name: str, value: float, cat: str = "gauge", **args: object
    ) -> None:
        pass


class InMemoryRecorder(TraceRecorder):
    """Append-only in-process recorder backing the exporters and summaries.

    Events land in :attr:`events` in emission order; counters additionally
    aggregate into :attr:`counters` (name -> running total) and gauges
    track their maxima in :attr:`gauge_peaks` so summary derivation never
    rescans the event list for totals.

    With ``max_events=N`` the event list is a bounded ring: once full,
    each append evicts the oldest event and bumps :attr:`dropped_events`.
    The aggregates above are exempt — they are updated before the event
    is enqueued, so ``counter_total`` / ``gauge_peak`` stay exact however
    long the run, which is what makes a bounded recorder suitable for
    served runs feeding the metric registry (:mod:`repro.obs.metrics`).
    """

    __slots__ = (
        "events",
        "counters",
        "gauge_peaks",
        "max_events",
        "dropped_events",
        "_clock",
    )

    def __init__(
        self,
        clock=time.perf_counter,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.counters: Dict[str, float] = {}
        self.gauge_peaks: Dict[str, float] = {}
        self.max_events = max_events
        self.dropped_events = 0
        self._clock = clock

    @property
    def truncated(self) -> bool:
        """True once the ring buffer has evicted at least one event."""
        return self.dropped_events > 0

    def _record(self, event: TraceEvent) -> None:
        events = self.events
        if self.max_events is not None and len(events) == self.max_events:
            self.dropped_events += 1
        events.append(event)

    def __bool__(self) -> bool:
        # Truthy even when empty: ``__len__`` would otherwise make a fresh
        # recorder falsy and silently disable every guarded call site.
        return True

    def __len__(self) -> int:
        return len(self.events)

    def begin(self, name: str, cat: str = "exec", **args: object) -> None:
        self._record(
            TraceEvent("B", name, cat, self._clock(), args or None)
        )

    def end(self, name: str, cat: str = "exec", **args: object) -> None:
        self._record(
            TraceEvent("E", name, cat, self._clock(), args or None)
        )

    def instant(self, name: str, cat: str = "exec", **args: object) -> None:
        self._record(
            TraceEvent("i", name, cat, self._clock(), args or None)
        )

    def counter(
        self, name: str, value: float = 1, cat: str = "counter", **args: object
    ) -> None:
        total = self.counters.get(name, 0) + value
        self.counters[name] = total
        payload: Dict[str, object] = {"value": total, "delta": value}
        if args:
            payload.update(args)
        self._record(TraceEvent("C", name, cat, self._clock(), payload))

    def gauge(
        self, name: str, value: float, cat: str = "gauge", **args: object
    ) -> None:
        peak = self.gauge_peaks.get(name)
        if peak is None or value > peak:
            self.gauge_peaks[name] = value
        payload: Dict[str, object] = {"value": value}
        if args:
            payload.update(args)
        self._record(TraceEvent("C", name, cat, self._clock(), payload))

    # -- multi-process composition -------------------------------------------

    def child(self) -> "InMemoryRecorder":
        """A fresh recorder sharing this one's clock.

        Parallel workers record into a child (forked processes inherit
        ``perf_counter``'s CLOCK_MONOTONIC origin, so child timestamps
        compose with the parent's without rebasing) and the parent folds
        the children back in with :meth:`merge` after the pool drains.
        A bounded parent hands its ``max_events`` down, so workers of a
        served run are ring-buffered too.
        """
        return InMemoryRecorder(clock=self._clock, max_events=self.max_events)

    def merge(
        self,
        other: "InMemoryRecorder",
        ts_offset: float = 0.0,
        worker: Optional[int] = None,
    ) -> None:
        """Fold another recorder's events into this one.

        Events are appended in ``other``'s emission order with
        ``ts_offset`` added to their timestamps; with ``worker`` given,
        each event's args gain a ``worker`` tag (pre-existing tags are
        kept, so re-merging an already-merged recorder is safe) and the
        Chrome exporter fans the events out to a per-worker thread track.
        Counter totals are summed and gauge peaks maxed — counter *events*
        keep their source-local running ``value``; only the aggregate
        :attr:`counters` view is global after a merge.  Merged events pass
        through this recorder's ring bound, and the other recorder's
        :attr:`dropped_events` carry over — an event dropped upstream is
        dropped from the merged view too.
        """
        for event in other.events:
            args = dict(event.args) if event.args else {}
            if worker is not None:
                args.setdefault("worker", worker)
            self._record(
                TraceEvent(
                    event.ph,
                    event.name,
                    event.cat,
                    event.ts + ts_offset,
                    args or None,
                )
            )
        self.dropped_events += other.dropped_events
        for name, total in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + total
        for name, peak in other.gauge_peaks.items():
            mine = self.gauge_peaks.get(name)
            if mine is None or peak > mine:
                self.gauge_peaks[name] = peak

    # -- read-side helpers (summaries, tests) -------------------------------

    def counter_total(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def gauge_peak(self, name: str, default: float = 0) -> float:
        return self.gauge_peaks.get(name, default)

    def events_named(self, name: str, ph: Optional[str] = None) -> List[TraceEvent]:
        return [
            event
            for event in self.events
            if event.name == name and (ph is None or event.ph == ph)
        ]

    def instants(self, cat: Optional[str] = None) -> List[TraceEvent]:
        return [
            event
            for event in self.events
            if event.ph == "i" and (cat is None or event.cat == cat)
        ]

    def first_instant_args(self, name: str) -> Optional[Dict[str, object]]:
        """Args of the first instant called ``name`` (e.g. ``run.meta``)."""
        for event in self.events:
            if event.ph == "i" and event.name == name:
                return event.args or {}
        return None

    def span_durations(self) -> Dict[str, Tuple[int, float]]:
        """Aggregate matched B/E pairs: name -> (count, total seconds).

        Spans of the same name pair LIFO (nested same-name spans close
        innermost-first); unbalanced events are ignored rather than
        raised — the exporter's validator is the strict path.
        """
        stacks: Dict[str, List[float]] = {}
        totals: Dict[str, Tuple[int, float]] = {}
        for event in self.events:
            if event.ph == "B":
                stacks.setdefault(event.name, []).append(event.ts)
            elif event.ph == "E":
                stack = stacks.get(event.name)
                if stack:
                    started = stack.pop()
                    count, total = totals.get(event.name, (0, 0.0))
                    totals[event.name] = (count + 1, total + event.ts - started)
        return totals

    def gauge_timeline(self, name: str) -> List[Tuple[float, float]]:
        """``(ts, value)`` samples of one gauge, in emission order."""
        return [
            (event.ts, float(event.args["value"]))  # type: ignore[index,arg-type]
            for event in self.events
            if event.ph == "C" and event.name == name and event.args
        ]

    def clear(self) -> None:
        self.events.clear()
        self.counters.clear()
        self.gauge_peaks.clear()
        self.dropped_events = 0

    def __repr__(self) -> str:
        dropped = (
            f", dropped={self.dropped_events}" if self.dropped_events else ""
        )
        return (
            f"InMemoryRecorder(events={len(self.events)}, "
            f"counters={len(self.counters)}{dropped})"
        )
