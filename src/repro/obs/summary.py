"""Trace summaries: derive the paper's counters back out of the events.

A recorded run is self-describing: the instrumentation in
:func:`repro.core.executor.run_optimized` / ``run_baseline`` emits a
``run.meta`` instant (circuit size, trial count, closed-form baseline
ops), per-segment spans, cache instants and the live-MSV gauge, so every
headline number of :class:`~repro.core.metrics.RunMetrics` can be
*re-derived from the trace alone* and cross-checked against the
executor's own counters.  That replay is the observability layer's
correctness pin — :func:`verify_trace` is asserted in the integration
suite and surfaced by ``repro trace``.

Event-name contract (kept in sync with ``docs/architecture.md`` §10):

=====================  ====  ========  ==========================================
name                   ph    cat       emitted by
=====================  ====  ========  ==========================================
``run``                B/E   run       executor, around the whole run
``run.meta``           i     run       executor, once, before execution
``advance[s,e)``       B/E   segment   executor, per ``Advance`` instruction
``trial[i]``           B/E   trial     baseline executor, per trial
``kernels[s,e)``       B/E   kernel    compiled backend, per program replay
``compile[s,e)``       B/E   compile   compiled circuit, per memoization miss
``inject``             i     exec      executor, per error injection
``finish``             i     exec      executor, per ``Finish``
``cache.store``        i     cache     executor, per ``Snapshot``
``cache.hit``          i     cache     executor, per ``Restore`` (drop-on-use)
``shared.hit``         i     shared    executor, per cross-job store hit
``shared.publish``     C     counter   executor, per state published to the store
``ops.shared``         C     counter   executor, gates skipped via shared hits
``ops.applied``        C     counter   executor (gates + injected operators)
``trials.finished``    C     counter   executor
``segment.hit``        C     counter   compiled circuit, memoized program reuse
``segment.compile``    C     counter   compiled circuit, first-use compilation
``kernel.<kind>``      C     counter   compiled circuit, per compiled kernel
``kernel.batched.<kind>``  C  counter  compiled backend, per batched dispatch
``fusion.runs``        C     counter   compiled circuit, fused 1q-run count
``fusion.gates``       C     counter   compiled circuit, gates absorbed by fusion
``scratch.swaps``      C     counter   compiled backend, ping-pong buffer swaps
``scratch.batched.swaps``  C  counter  compiled backend, batched ping-pong swaps
``msv.live``           C     gauge     state cache, sampled at every cache event
``msv.stored``         C     gauge     state cache, stored snapshots only
``run.host``           i     run       runner, once after the run (cpu, rss)
=====================  ====  ========  ==========================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.cache import CacheStats
from ..core.executor import ExecutionOutcome
from ..core.metrics import RunMetrics
from .recorder import InMemoryRecorder

__all__ = [
    "TraceSummary",
    "summarize",
    "segment_profile",
    "outcome_from_trace",
    "metrics_from_trace",
    "verify_trace",
    "format_trace_summary",
    "format_run_metrics",
]


class TraceSummary:
    """Aggregates derived from one recorded run."""

    def __init__(
        self,
        mode: str,
        num_trials: int,
        num_distinct_trials: int,
        num_gates: int,
        num_layers: int,
        ops_applied: int,
        baseline_ops: int,
        trials_finished: int,
        finish_calls: int,
        peak_msv: int,
        peak_stored: int,
        cache_stores: int,
        cache_hits: int,
        segment_compiles: int,
        segment_hits: int,
        fusion_runs: int,
        fusion_gates: int,
        scratch_swaps: int,
        kernel_histogram: Dict[str, int],
        hot_segments: List[Tuple[str, int, float]],
        msv_high_water: List[Tuple[float, int]],
        wall_s: float,
        num_events: int,
        batched_kernel_histogram: Optional[Dict[str, int]] = None,
        dropped_events: int = 0,
    ) -> None:
        self.mode = mode
        self.num_trials = num_trials
        self.num_distinct_trials = num_distinct_trials
        self.num_gates = num_gates
        self.num_layers = num_layers
        self.ops_applied = ops_applied
        self.baseline_ops = baseline_ops
        self.trials_finished = trials_finished
        self.finish_calls = finish_calls
        self.peak_msv = peak_msv
        self.peak_stored = peak_stored
        self.cache_stores = cache_stores
        self.cache_hits = cache_hits
        self.segment_compiles = segment_compiles
        self.segment_hits = segment_hits
        self.fusion_runs = fusion_runs
        self.fusion_gates = fusion_gates
        self.scratch_swaps = scratch_swaps
        self.kernel_histogram = kernel_histogram
        #: ``(span name, replay count, total seconds)``, hottest first.
        self.hot_segments = hot_segments
        #: ``(seconds since run start, new live-MSV maximum)``.
        self.msv_high_water = msv_high_water
        self.wall_s = wall_s
        self.num_events = num_events
        #: Batched wavefront dispatches per kernel kind (``kernel.batched.*``).
        self.batched_kernel_histogram = batched_kernel_histogram or {}
        #: Events evicted by a bounded recorder; 0 for unbounded recording.
        self.dropped_events = dropped_events

    @property
    def truncated(self) -> bool:
        return self.dropped_events > 0

    @property
    def ops_skipped(self) -> int:
        """Baseline operations eliminated by reuse (the paper's saving)."""
        return max(0, self.baseline_ops - self.ops_applied)

    @property
    def normalized_computation(self) -> float:
        if self.baseline_ops == 0:
            return 1.0
        return self.ops_applied / self.baseline_ops

    @property
    def cache_hit_ratio(self) -> float:
        """Consumed snapshots over stored snapshots (1.0 = nothing leaked)."""
        if self.cache_stores == 0:
            return 1.0
        return self.cache_hits / self.cache_stores

    @property
    def segment_reuse_ratio(self) -> float:
        """Memoized program replays over all program requests."""
        requests = self.segment_hits + self.segment_compiles
        if requests == 0:
            return 0.0
        return self.segment_hits / requests

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "num_trials": self.num_trials,
            "num_distinct_trials": self.num_distinct_trials,
            "num_gates": self.num_gates,
            "num_layers": self.num_layers,
            "ops_applied": self.ops_applied,
            "ops_skipped": self.ops_skipped,
            "baseline_ops": self.baseline_ops,
            "normalized_computation": self.normalized_computation,
            "trials_finished": self.trials_finished,
            "finish_calls": self.finish_calls,
            "peak_msv": self.peak_msv,
            "peak_stored": self.peak_stored,
            "cache_stores": self.cache_stores,
            "cache_hits": self.cache_hits,
            "cache_hit_ratio": self.cache_hit_ratio,
            "segment_compiles": self.segment_compiles,
            "segment_hits": self.segment_hits,
            "segment_reuse_ratio": self.segment_reuse_ratio,
            "fusion_runs": self.fusion_runs,
            "fusion_gates": self.fusion_gates,
            "scratch_swaps": self.scratch_swaps,
            "kernel_histogram": dict(self.kernel_histogram),
            "batched_kernel_histogram": dict(self.batched_kernel_histogram),
            "dropped_events": self.dropped_events,
            "truncated": self.truncated,
            "hot_segments": [
                {"name": name, "count": count, "total_s": total}
                for name, count, total in self.hot_segments
            ],
            "msv_high_water": [
                {"t_s": t, "msv": value} for t, value in self.msv_high_water
            ],
            "wall_s": self.wall_s,
            "num_events": self.num_events,
        }

    def __repr__(self) -> str:
        return (
            f"TraceSummary(mode={self.mode!r}, ops={self.ops_applied}, "
            f"peak_msv={self.peak_msv}, events={self.num_events})"
        )


def summarize(recorder: InMemoryRecorder) -> TraceSummary:
    """Derive a :class:`TraceSummary` from a recorded run."""
    meta = recorder.first_instant_args("run.meta") or {}
    durations = recorder.span_durations()
    hot = sorted(
        (
            (name, count, total)
            for name, (count, total) in durations.items()
            if name.startswith("advance[")
        ),
        key=lambda entry: -entry[2],
    )
    run_count, run_total = durations.get("run", (0, 0.0))

    high_water: List[Tuple[float, int]] = []
    timeline = recorder.gauge_timeline("msv.live")
    if timeline:
        base = recorder.events[0].ts
        running = 0.0
        for ts, value in timeline:
            if value > running:
                running = value
                high_water.append((ts - base, int(value)))

    kernel_histogram = {
        name[len("kernel."):]: int(total)
        for name, total in recorder.counters.items()
        if name.startswith("kernel.")
        and not name.startswith("kernel.batched.")
    }
    batched_kernel_histogram = {
        name[len("kernel.batched."):]: int(total)
        for name, total in recorder.counters.items()
        if name.startswith("kernel.batched.")
    }

    return TraceSummary(
        mode=str(meta.get("mode", "unknown")),
        num_trials=int(meta.get("num_trials", 0)),
        num_distinct_trials=int(meta.get("num_distinct_trials", 0)),
        num_gates=int(meta.get("num_gates", 0)),
        num_layers=int(meta.get("num_layers", 0)),
        ops_applied=int(recorder.counter_total("ops.applied")),
        baseline_ops=int(meta.get("baseline_ops", 0)),
        trials_finished=int(recorder.counter_total("trials.finished")),
        finish_calls=len(recorder.events_named("finish", ph="i")),
        peak_msv=int(recorder.gauge_peak("msv.live")),
        peak_stored=int(recorder.gauge_peak("msv.stored")),
        cache_stores=len(recorder.events_named("cache.store", ph="i")),
        cache_hits=len(recorder.events_named("cache.hit", ph="i")),
        segment_compiles=int(recorder.counter_total("segment.compile")),
        segment_hits=int(recorder.counter_total("segment.hit")),
        fusion_runs=int(recorder.counter_total("fusion.runs")),
        fusion_gates=int(recorder.counter_total("fusion.gates")),
        scratch_swaps=int(recorder.counter_total("scratch.swaps")),
        kernel_histogram=kernel_histogram,
        hot_segments=hot,
        msv_high_water=high_water,
        wall_s=run_total if run_count else 0.0,
        num_events=len(recorder.events),
        batched_kernel_histogram=batched_kernel_histogram,
        dropped_events=int(getattr(recorder, "dropped_events", 0)),
    )


def segment_profile(recorder: InMemoryRecorder) -> Dict[str, object]:
    """Extract the trace's per-segment cost evidence.

    The shape lint rule ``P020`` compares against a resource
    certificate's ``plan`` section: per advance-span name the replay
    count and per-replay gate weight, the inject count, the finished
    trial total, and any recompute operations a drop-mode cache budget
    added (which the certificate accounts separately from plan ops).
    Works on merged multi-worker traces — span counts sum over all
    tracks, exactly like the instruction multiset they record.  Wavefront
    traces batch ``batch`` serial advances into one span; the span's
    ``batch`` argument restores the serial count, so certificates built
    from the serial plan validate unchanged against batched runs.
    Requires an untruncated recorder — ring eviction loses span events,
    so P020 evidence must be recorded unbounded.
    """
    segments: Dict[str, Dict[str, int]] = {}
    recompute_ops = 0
    injects = 0
    for event in recorder.events:
        if event.ph == "B" and event.cat == "segment":
            entry = segments.setdefault(event.name, {"count": 0, "gates": 0})
            entry["count"] += int((event.args or {}).get("batch", 1))
            entry["gates"] = int((event.args or {}).get("gates", 0))
        elif event.ph == "i" and event.name == "inject":
            injects += 1
        elif event.ph == "i" and event.name == "cache.recompute":
            recompute_ops += int((event.args or {}).get("ops", 0))
    return {
        "segments": segments,
        "injects": injects,
        "recompute_ops": recompute_ops,
        "ops_applied": int(recorder.counter_total("ops.applied")),
        "trials_finished": int(recorder.counter_total("trials.finished")),
    }


def outcome_from_trace(recorder: InMemoryRecorder) -> ExecutionOutcome:
    """Replay an :class:`ExecutionOutcome` purely from recorded events.

    The returned object must equal the one the executor computed from its
    live counters — ``verify_trace`` and the integration tests assert
    field-for-field equality.
    """
    summary = summarize(recorder)
    return ExecutionOutcome(
        ops_applied=summary.ops_applied,
        num_trials=summary.num_trials,
        cache_stats=CacheStats(
            peak_msv=summary.peak_msv,
            peak_stored=summary.peak_stored,
            snapshots_taken=summary.cache_stores,
            snapshots_released=summary.cache_hits,
        ),
        finish_calls=summary.finish_calls,
        ops_shared=int(recorder.counter_total("ops.shared")),
    )


def metrics_from_trace(recorder: InMemoryRecorder) -> RunMetrics:
    """Replay :class:`RunMetrics` purely from recorded events."""
    summary = summarize(recorder)
    return RunMetrics(
        num_trials=summary.num_trials,
        num_distinct_trials=summary.num_distinct_trials,
        optimized_ops=summary.ops_applied,
        baseline_ops=summary.baseline_ops,
        peak_msv=summary.peak_msv,
        peak_stored=summary.peak_stored,
        num_gates=summary.num_gates,
        num_layers=summary.num_layers,
    )


def verify_trace(
    recorder: InMemoryRecorder,
    outcome: Optional[ExecutionOutcome] = None,
    metrics: Optional[RunMetrics] = None,
) -> List[str]:
    """Cross-check trace-derived counters against executor counters.

    Returns human-readable mismatch descriptions; empty means the trace
    replays exactly.  A ring-truncated recorder cannot replay — instant
    counts describe the retained window only — so truncation is reported
    as a single problem instead of a cascade of spurious mismatches.
    """
    dropped = int(getattr(recorder, "dropped_events", 0))
    if dropped:
        return [
            f"recorder truncated ({dropped} event(s) evicted by the ring "
            "buffer); event replay is unavailable — use the aggregate "
            "counters, which remain exact"
        ]
    problems: List[str] = []

    def check(field: str, derived: object, live: object) -> None:
        if derived != live:
            problems.append(
                f"{field}: trace-derived {derived!r} != recorded-run {live!r}"
            )

    if outcome is not None:
        derived_outcome = outcome_from_trace(recorder)
        check("ops_applied", derived_outcome.ops_applied, outcome.ops_applied)
        check("ops_shared", derived_outcome.ops_shared, outcome.ops_shared)
        check("num_trials", derived_outcome.num_trials, outcome.num_trials)
        check("finish_calls", derived_outcome.finish_calls, outcome.finish_calls)
        check("peak_msv", derived_outcome.peak_msv, outcome.peak_msv)
        check("peak_stored", derived_outcome.peak_stored, outcome.peak_stored)
        check(
            "snapshots_taken",
            derived_outcome.cache_stats.snapshots_taken,
            outcome.cache_stats.snapshots_taken,
        )
        check(
            "snapshots_released",
            derived_outcome.cache_stats.snapshots_released,
            outcome.cache_stats.snapshots_released,
        )
    if metrics is not None:
        derived_metrics = metrics_from_trace(recorder)
        for field in (
            "num_trials",
            "num_distinct_trials",
            "optimized_ops",
            "baseline_ops",
            "peak_msv",
            "peak_stored",
            "num_gates",
            "num_layers",
        ):
            check(field, getattr(derived_metrics, field), getattr(metrics, field))
    return problems


# ---------------------------------------------------------------------------
# Text formatters (shared by ``repro trace`` and ``repro run``)
# ---------------------------------------------------------------------------


def _ratio(part: float, whole: float) -> str:
    return f"{part / whole:.1%}" if whole else "n/a"


def format_trace_summary(summary: TraceSummary, top: int = 10) -> str:
    """Human-readable profile block for one recorded run."""
    lines = [
        f"mode              : {summary.mode}",
        f"trials            : {summary.num_trials} "
        f"({summary.num_distinct_trials} distinct)",
        f"events recorded   : {summary.num_events}",
        f"ops applied       : {summary.ops_applied}",
        f"ops skipped       : {summary.ops_skipped} "
        f"({_ratio(summary.ops_skipped, summary.baseline_ops)} of baseline "
        f"{summary.baseline_ops})",
        f"peak MSV          : {summary.peak_msv} "
        f"(stored snapshots peak {summary.peak_stored})",
        f"cache store/hit   : {summary.cache_stores}/{summary.cache_hits} "
        f"(hit ratio {summary.cache_hit_ratio:.2f})",
    ]
    if summary.segment_compiles or summary.segment_hits:
        lines.append(
            f"segment programs  : {summary.segment_compiles} compiled, "
            f"{summary.segment_hits} reused "
            f"(reuse {summary.segment_reuse_ratio:.1%})"
        )
    if summary.kernel_histogram:
        histogram = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(summary.kernel_histogram.items())
        )
        lines.append(f"kernel classes    : {histogram}")
    if summary.batched_kernel_histogram:
        histogram = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(
                summary.batched_kernel_histogram.items()
            )
        )
        lines.append(f"batched kernels   : {histogram} (dispatches)")
    if summary.truncated:
        lines.append(
            f"ring truncation   : {summary.dropped_events} event(s) "
            "evicted (aggregate counters remain exact)"
        )
    if summary.fusion_runs:
        lines.append(
            f"fusion            : {summary.fusion_runs} run(s) fused, "
            f"{summary.fusion_gates} gate(s) absorbed"
        )
    if summary.scratch_swaps:
        lines.append(f"scratch swaps     : {summary.scratch_swaps}")
    if summary.wall_s:
        lines.append(f"recorded wall time: {summary.wall_s * 1e3:.2f} ms")
    if summary.hot_segments:
        lines.append(f"hottest segments  : (top {min(top, len(summary.hot_segments))})")
        for name, count, total in summary.hot_segments[:top]:
            lines.append(
                f"  {name:<18} x{count:<6} {total * 1e3:9.3f} ms total"
            )
    if summary.msv_high_water:
        lines.append("MSV high-water    :")
        for t, value in summary.msv_high_water:
            lines.append(f"  {t * 1e3:9.3f} ms  -> {value}")
    return "\n".join(lines)


def format_run_metrics(metrics: RunMetrics, wall_s: Optional[float] = None) -> str:
    """The standard ``RunMetrics`` block printed by ``repro run``."""
    lines = [
        f"trials            : {metrics.num_trials}",
        f"distinct trials   : {metrics.num_distinct_trials}",
        f"basic operations  : {metrics.optimized_ops}",
        f"baseline ops      : {metrics.baseline_ops}",
        f"normalized comp.  : {metrics.normalized_computation:.3f}",
        f"computation saved : {metrics.computation_saving:.1%}",
        f"peak MSV          : {metrics.peak_msv}",
        f"peak stored       : {metrics.peak_stored}",
    ]
    if wall_s is not None:
        lines.append(f"wall time         : {wall_s:.2f}s")
    return "\n".join(lines)
