"""Wall-time attribution and roofline analysis over recorded traces.

The read side of the performance observatory: fold a recorder's span
stream into *exclusive* per-span wall time (hotspot table, collapsed
flamegraph stacks), then divide each ``advance[s,e)`` segment's measured
seconds into the flops and bytes the resource certificate certifies for
that exact segment.  Because the numerators come straight from the
certificate (the same numbers lint rule ``P020`` proves against the
trace), the achieved GFLOP/s and GB/s figures inherit the certificate's
exactness — only the denominator is a measurement.

Attribution model
-----------------
Spans nest per track (the main thread, or one track per merged worker).
Walking the ``B``/``E`` stream with a stack, every interval between two
consecutive events belongs *exclusively* to the innermost open span, so

* the sum of exclusive times over a run's spans equals the run span's
  inclusive time by construction (coverage == 1.0 on a well-formed
  trace — the ``repro profile`` CLI fails if it drifts), and
* accumulating the same intervals per stack *path* yields collapsed
  flamegraph stacks (``run;advance[0,4);kernels[0,4) 1234``) for any
  `flamegraph.pl`-compatible renderer.

Roofline methodology
--------------------
:func:`measure_peaks` calibrates the machine with three numpy
microbenchmarks: a complex matmul (peak GFLOP/s at the cost model's
8-flops-per-complex-MAC convention), a large out-of-cache copy (DRAM
GB/s) and a small cache-resident copy loop (cache GB/s).  Each
segment's arithmetic intensity (certified flops / certified bytes)
then classifies it as memory- or compute-bound, and the achieved
bandwidth band tests the paper's working-set hypothesis: a segment
streaming faster than DRAM allows must have been served from cache
(docs/architecture.md section 15).
"""

from __future__ import annotations

import re
import time
from typing import Dict, List, Optional, Tuple

from ..core.atomicio import atomic_write_text
from ..core.hostinfo import machine_info
from .recorder import InMemoryRecorder

__all__ = [
    "PROFILE_SCHEMA",
    "SpanProfile",
    "fold_spans",
    "flamegraph_lines",
    "write_flamegraph",
    "measure_peaks",
    "roofline_segments",
    "kernel_class_attribution",
    "build_profile_report",
    "format_profile_report",
]

PROFILE_SCHEMA = "repro-profile/1"

_SEGMENT_RE = re.compile(r"^advance\[(\d+),(\d+)\)$")

#: bytes of one complex128 amplitude (mirrors repro.sim.kernels)
_AMP_BYTES = 16


class SpanProfile:
    """Folded span stream: per-name times, stack paths, coverage.

    ``spans`` maps span name to ``{"cat", "count", "total_s",
    "exclusive_s"}`` where ``total_s`` is inclusive (sum of matched
    B→E durations) and ``exclusive_s`` subtracts time spent in nested
    child spans.  ``stacks`` maps a ``;``-joined root-to-leaf path to
    the exclusive seconds spent with exactly that stack open — the
    collapsed flamegraph representation.  ``run_total_s`` is the
    inclusive time of ``cat == "run"`` spans; ``attributed_s`` the
    exclusive time accumulated while a run span was open, so
    ``coverage == attributed_s / run_total_s`` is 1.0 on a well-formed
    trace and sinks below it only when events went missing.
    """

    def __init__(self) -> None:
        self.spans: Dict[str, Dict[str, object]] = {}
        self.stacks: Dict[str, float] = {}
        self.run_total_s = 0.0
        self.attributed_s = 0.0
        self.orphan_ends = 0
        self.unclosed_spans = 0
        self.dropped_events = 0

    @property
    def coverage(self) -> float:
        if self.run_total_s <= 0.0:
            return 0.0
        return self.attributed_s / self.run_total_s

    def hotspots(self, top: Optional[int] = None) -> List[Dict[str, object]]:
        """Spans ranked by exclusive time, with share of attributed time."""
        ranked = sorted(
            self.spans.items(),
            key=lambda item: item[1]["exclusive_s"],  # type: ignore[index]
            reverse=True,
        )
        if top is not None:
            ranked = ranked[:top]
        denominator = self.attributed_s or 1.0
        return [
            {
                "name": name,
                "cat": entry["cat"],
                "count": entry["count"],
                "total_s": entry["total_s"],
                "exclusive_s": entry["exclusive_s"],
                "share": float(entry["exclusive_s"]) / denominator,  # type: ignore[arg-type]
            }
            for name, entry in ranked
        ]

    def as_dict(self) -> Dict[str, object]:
        return {
            "spans": {name: dict(entry) for name, entry in self.spans.items()},
            "run_total_s": self.run_total_s,
            "attributed_s": self.attributed_s,
            "coverage": self.coverage,
            "orphan_ends": self.orphan_ends,
            "unclosed_spans": self.unclosed_spans,
            "dropped_events": self.dropped_events,
        }


def fold_spans(recorder: InMemoryRecorder) -> SpanProfile:
    """Fold a recorder's B/E stream into a :class:`SpanProfile`.

    Events are walked per track (events merged from parallel workers
    carry a ``worker`` arg and fold on their own stack), attributing
    each inter-event interval to the innermost open span and to its
    full stack path.  Orphan end events (the ring buffer evicted their
    begin) are counted and skipped; spans left open at the end of the
    stream (mid-span truncation) are counted in ``unclosed_spans`` and
    contribute no inclusive time.
    """
    profile = SpanProfile()
    profile.dropped_events = int(getattr(recorder, "dropped_events", 0))
    # track key -> (stack of (name, cat, begin_ts), last event ts)
    stacks: Dict[object, List[Tuple[str, str, float]]] = {}
    last_ts: Dict[object, float] = {}

    def entry(name: str, cat: str) -> Dict[str, object]:
        found = profile.spans.get(name)
        if found is None:
            found = {"cat": cat, "count": 0, "total_s": 0.0, "exclusive_s": 0.0}
            profile.spans[name] = found
        return found

    def attribute(track: object, now: float) -> None:
        stack = stacks.get(track)
        previous = last_ts.get(track)
        if not stack or previous is None:
            return
        delta = now - previous
        if delta <= 0.0:
            return
        name, cat, _ = stack[-1]
        record = entry(name, cat)
        record["exclusive_s"] = float(record["exclusive_s"]) + delta
        path = ";".join(frame[0] for frame in stack)
        profile.stacks[path] = profile.stacks.get(path, 0.0) + delta
        if stack[0][1] == "run":
            profile.attributed_s += delta

    for event in recorder.events:
        if event.ph not in ("B", "E"):
            continue
        track = (event.args or {}).get("worker")
        attribute(track, event.ts)
        last_ts[track] = event.ts
        stack = stacks.setdefault(track, [])
        if event.ph == "B":
            record = entry(event.name, event.cat)
            record["count"] = int(record["count"]) + 1
            stack.append((event.name, event.cat, event.ts))
        else:
            if stack and stack[-1][0] == event.name:
                name, cat, begin_ts = stack.pop()
                record = entry(name, cat)
                record["total_s"] = float(record["total_s"]) + (
                    event.ts - begin_ts
                )
                if cat == "run":
                    profile.run_total_s += event.ts - begin_ts
            else:
                profile.orphan_ends += 1
    profile.unclosed_spans = sum(len(stack) for stack in stacks.values())
    return profile


def flamegraph_lines(profile: SpanProfile) -> List[str]:
    """Collapsed-stack lines (``path count``), counts in whole microseconds.

    The format `flamegraph.pl` and speedscope ingest directly: one line
    per distinct stack, the sample count being exclusive microseconds.
    Paths whose time rounds to zero microseconds are kept at weight 1 so
    no recorded stack silently vanishes from the rendering.
    """
    lines = []
    for path in sorted(profile.stacks):
        micros = int(round(profile.stacks[path] * 1e6))
        lines.append(f"{path} {max(micros, 1)}")
    return lines


def write_flamegraph(profile: SpanProfile, path: str) -> None:
    """Write the collapsed-stack file for ``flamegraph.pl``/speedscope."""
    atomic_write_text(path, "\n".join(flamegraph_lines(profile)) + "\n")


# -- machine calibration -----------------------------------------------------


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        run()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def measure_peaks(
    repeats: int = 3,
    matmul_n: int = 192,
    dram_mb: int = 64,
    cache_kb: int = 128,
) -> Dict[str, object]:
    """Calibrate peak GFLOP/s, DRAM GB/s and cache GB/s with numpy.

    * ``peak_gflops`` — best-of-``repeats`` complex128 matmul, priced at
      the cost model's convention of 8 real flops per complex
      multiply-add, so achieved/peak ratios compare like with like.
    * ``dram_gbps`` — copy between two buffers far larger than any
      cache (``dram_mb`` MB each); bytes counted once read + once
      written, matching :func:`~repro.sim.kernels.kernel_cost`.
    * ``cache_gbps`` — the same copy looped over ``cache_kb`` KB
      buffers small enough to stay L2-resident; the gap between the two
      bandwidths is the band the roofline verdicts interpolate.
    """
    import numpy as np

    rng = np.random.default_rng(7)

    n = int(matmul_n)
    a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    b = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    a @ b  # warm the BLAS dispatch before timing
    matmul_s = _best_of(repeats, lambda: a @ b)
    matmul_flops = 8 * n**3

    dram_elems = max(1, (int(dram_mb) * 2**20) // _AMP_BYTES)
    src = np.zeros(dram_elems, dtype=np.complex128)
    dst = np.empty_like(src)
    np.copyto(dst, src)  # fault the pages before timing
    dram_s = _best_of(repeats, lambda: np.copyto(dst, src))
    dram_bytes = 2 * src.nbytes

    cache_elems = max(1, (int(cache_kb) * 2**10) // _AMP_BYTES)
    small_src = np.zeros(cache_elems, dtype=np.complex128)
    small_dst = np.empty_like(small_src)
    loops = max(1, dram_elems // cache_elems)

    def cache_copy() -> None:
        for _ in range(loops):
            np.copyto(small_dst, small_src)

    cache_copy()
    cache_s = _best_of(repeats, cache_copy)
    cache_bytes = 2 * small_src.nbytes * loops

    return {
        "peak_gflops": matmul_flops / matmul_s / 1e9,
        "dram_gbps": dram_bytes / dram_s / 1e9,
        "cache_gbps": cache_bytes / cache_s / 1e9,
        "matmul_n": n,
        "matmul_seconds": matmul_s,
        "dram_buffer_bytes": src.nbytes,
        "cache_buffer_bytes": small_src.nbytes,
        "repeats": int(repeats),
    }


# -- roofline attribution ----------------------------------------------------


def roofline_segments(
    plan_segments: Dict[str, Dict[str, int]],
    profile: SpanProfile,
    peaks: Dict[str, object],
    num_qubits: int,
) -> List[Dict[str, object]]:
    """Per-segment roofline verdicts from certified numerators.

    For each certificate segment present in the trace, divides the
    certified whole-run ``flops`` / ``bytes_moved`` (the *exact* P020
    numbers — no re-estimation happens here) by the segment span's
    measured inclusive seconds.  The verdict compares the segment's
    arithmetic intensity against the machine balance point; the
    ``band`` field tests the cache-residency hypothesis — achieved
    bandwidth above what DRAM sustains is only possible if the
    working state (``16 * 2**n`` bytes) stayed cache-resident.
    """
    peak_gflops = float(peaks["peak_gflops"])  # type: ignore[arg-type]
    dram_gbps = float(peaks["dram_gbps"])  # type: ignore[arg-type]
    state_bytes = _AMP_BYTES * 2**num_qubits
    rows: List[Dict[str, object]] = []
    for name in sorted(plan_segments, key=_segment_sort_key):
        certified = plan_segments[name]
        span = profile.spans.get(name)
        if span is None:
            continue
        seconds = float(span["total_s"])  # type: ignore[arg-type]
        flops = int(certified.get("flops", 0))
        bytes_moved = int(certified.get("bytes_moved", 0))
        achieved_gflops = flops / seconds / 1e9 if seconds > 0 else 0.0
        achieved_gbps = bytes_moved / seconds / 1e9 if seconds > 0 else 0.0
        intensity = flops / bytes_moved if bytes_moved else 0.0
        memory_roof = intensity * dram_gbps
        bound_gflops = min(peak_gflops, memory_roof) or peak_gflops
        verdict = "memory-bound" if memory_roof < peak_gflops else "compute-bound"
        rows.append(
            {
                "name": name,
                "count": int(certified.get("count", 0)),
                "gates": int(certified.get("gates", 0)),
                "flops": flops,
                "bytes_moved": bytes_moved,
                "seconds": seconds,
                "achieved_gflops": achieved_gflops,
                "achieved_gbps": achieved_gbps,
                "intensity_flops_per_byte": intensity,
                "bound_gflops": bound_gflops,
                "efficiency": (
                    achieved_gflops / bound_gflops if bound_gflops else 0.0
                ),
                "verdict": verdict,
                "band": "cache" if achieved_gbps > dram_gbps else "dram",
                "state_bytes": state_bytes,
            }
        )
    return rows


def _segment_sort_key(name: str) -> Tuple[int, int, str]:
    match = _SEGMENT_RE.match(name)
    if match:
        return (int(match.group(1)), int(match.group(2)), name)
    return (1 << 30, 1 << 30, name)


def kernel_class_attribution(
    plan_segments: Dict[str, Dict[str, int]],
    profile: SpanProfile,
    compiled,
) -> List[Dict[str, object]]:
    """Split measured segment time across kernel classes by flop share.

    The trace times whole ``advance[s,e)`` spans, not individual
    kernels; :meth:`CompiledCircuit.segment_kind_costs` prices each
    kernel kind's exact flop share of the segment, and that static
    share apportions the measured seconds.  Kinds whose flop count is
    zero (pure-copy permutations) share the remaining time by byte
    share instead, so free-flops kernels are not attributed zero wall
    time they demonstrably spent moving amplitudes.
    """
    classes: Dict[str, Dict[str, float]] = {}
    for name, certified in plan_segments.items():
        match = _SEGMENT_RE.match(name)
        span = profile.spans.get(name)
        if match is None or span is None:
            continue
        start, end = int(match.group(1)), int(match.group(2))
        split = compiled.segment_kind_costs(start, end)
        seconds = float(span["total_s"])  # type: ignore[arg-type]
        count = int(certified.get("count", 0))
        total_flops = sum(entry["flops"] for entry in split.values())
        total_bytes = sum(entry["bytes_moved"] for entry in split.values())
        for kind, entry in split.items():
            if total_flops > 0:
                share = entry["flops"] / total_flops
            elif total_bytes > 0:
                share = entry["bytes_moved"] / total_bytes
            else:
                share = 1.0 / len(split)
            bucket = classes.setdefault(
                kind,
                {"count": 0.0, "flops": 0.0, "bytes_moved": 0.0, "seconds": 0.0},
            )
            bucket["count"] += entry["count"] * count
            bucket["flops"] += entry["flops"] * count
            bucket["bytes_moved"] += entry["bytes_moved"] * count
            bucket["seconds"] += seconds * share
    rows = []
    for kind in sorted(classes, key=lambda k: -classes[k]["seconds"]):
        bucket = classes[kind]
        seconds = bucket["seconds"]
        rows.append(
            {
                "kind": kind,
                "count": int(bucket["count"]),
                "flops": int(bucket["flops"]),
                "bytes_moved": int(bucket["bytes_moved"]),
                "seconds": seconds,
                "achieved_gflops": (
                    bucket["flops"] / seconds / 1e9 if seconds > 0 else 0.0
                ),
            }
        )
    return rows


# -- report assembly ---------------------------------------------------------


def build_profile_report(
    recorder: InMemoryRecorder,
    plan_segments: Dict[str, Dict[str, int]],
    compiled,
    num_qubits: int,
    peaks: Optional[Dict[str, object]] = None,
    top: int = 12,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the full ``repro-profile/1`` document.

    ``plan_segments`` is the certificate's ``plan.segments`` mapping —
    the certified numerators.  ``peaks`` defaults to a fresh
    :func:`measure_peaks` calibration.  The caller (the ``repro
    profile`` CLI) attaches the P020 parity verdict and the metrics
    snapshot path afterwards.
    """
    if peaks is None:
        peaks = measure_peaks()
    profile = fold_spans(recorder)
    segments = roofline_segments(plan_segments, profile, peaks, num_qubits)
    classes = kernel_class_attribution(plan_segments, profile, compiled)
    report: Dict[str, object] = {
        "schema": PROFILE_SCHEMA,
        "machine": machine_info(),
        "run": {
            "total_s": profile.run_total_s,
            "attributed_s": profile.attributed_s,
            "coverage": profile.coverage,
            "orphan_ends": profile.orphan_ends,
            "unclosed_spans": profile.unclosed_spans,
            "dropped_events": profile.dropped_events,
        },
        "hotspots": profile.hotspots(top=top),
        "segments": segments,
        "kernel_classes": classes,
        "calibration": dict(peaks),
    }
    if meta:
        report.update(meta)
    return report


def format_profile_report(report: Dict[str, object], top: int = 12) -> str:
    """Human-readable rendering of a profile report (the CLI's stdout)."""
    from ..analysis.report import rows_to_table

    lines: List[str] = []
    run = report["run"]  # type: ignore[index]
    lines.append(
        "run total {total:.4f}s  attributed {attr:.4f}s  "
        "coverage {cov:.1%}".format(
            total=run["total_s"],  # type: ignore[index]
            attr=run["attributed_s"],  # type: ignore[index]
            cov=run["coverage"],  # type: ignore[index]
        )
    )
    hotspots = report.get("hotspots") or []
    if hotspots:
        lines.append("")
        lines.append("hotspots (exclusive wall time):")
        rows = [
            {
                "span": h["name"],
                "cat": h["cat"],
                "count": h["count"],
                "excl_ms": f"{float(h['exclusive_s']) * 1e3:.3f}",
                "incl_ms": f"{float(h['total_s']) * 1e3:.3f}",
                "share": f"{float(h['share']):.1%}",
            }
            for h in hotspots[:top]
        ]
        lines.append(rows_to_table(rows))
    segments = report.get("segments") or []
    if segments:
        calibration = report["calibration"]  # type: ignore[index]
        lines.append("")
        lines.append(
            "roofline (peak {peak:.1f} GFLOP/s, DRAM {dram:.1f} GB/s, "
            "cache {cache:.1f} GB/s):".format(
                peak=float(calibration["peak_gflops"]),  # type: ignore[index]
                dram=float(calibration["dram_gbps"]),  # type: ignore[index]
                cache=float(calibration["cache_gbps"]),  # type: ignore[index]
            )
        )
        rows = [
            {
                "segment": s["name"],
                "count": s["count"],
                "GFLOP/s": f"{float(s['achieved_gflops']):.2f}",
                "GB/s": f"{float(s['achieved_gbps']):.2f}",
                "flops/B": f"{float(s['intensity_flops_per_byte']):.2f}",
                "roof": f"{float(s['bound_gflops']):.1f}",
                "eff": f"{float(s['efficiency']):.1%}",
                "verdict": s["verdict"],
                "band": s["band"],
            }
            for s in segments
        ]
        lines.append(rows_to_table(rows))
    classes = report.get("kernel_classes") or []
    if classes:
        lines.append("")
        lines.append("kernel classes (flop-share attribution):")
        rows = [
            {
                "kind": c["kind"],
                "kernels": c["count"],
                "sec": f"{float(c['seconds']):.4f}",
                "GFLOP/s": f"{float(c['achieved_gflops']):.2f}",
            }
            for c in classes
        ]
        lines.append(rows_to_table(rows))
    return "\n".join(lines)
