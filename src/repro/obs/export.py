"""Trace exporters: Chrome trace-event JSON and the structured dump.

Two formats, one source of truth (:class:`~repro.obs.recorder.InMemoryRecorder`):

* :func:`chrome_trace` — the `Trace Event Format`_ consumed by
  ``chrome://tracing`` / Perfetto.  Spans become ``B``/``E`` duration
  events, instants become ``i`` events, counters and gauges become ``C``
  events whose ``args`` carry the sampled value, all on one pid/tid with
  microsecond timestamps rebased to the first event.
* :func:`trace_json` — a schema-tagged structured document (events +
  aggregated counters + derived summary) for tooling that wants numbers,
  not a timeline viewer.

:func:`validate_chrome_trace` is the schema check used by the tests and
the CI trace-smoke step: required keys, monotonically non-decreasing
``ts`` and balanced ``B``/``E`` nesting.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.atomicio import atomic_write_json
from .recorder import InMemoryRecorder

__all__ = [
    "TRACE_SCHEMA",
    "chrome_trace",
    "trace_json",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_trace_json",
]

TRACE_SCHEMA = "repro-trace/1"

_PID = 1
_TID = 1


def _orphan_end_positions(recorder: InMemoryRecorder) -> frozenset:
    """Positions of ``E`` events whose ``B`` fell off the ring buffer.

    Ring eviction drops the *oldest* events, and a span's begin always
    precedes its end, so truncation can only orphan end events — never
    leave a begin without its end.  Matching is LIFO per (name, worker)
    track, mirroring the validator's nesting rule.
    """
    orphans = set()
    stacks: Dict[object, list] = {}
    for position, event in enumerate(recorder.events):
        worker = (event.args or {}).get("worker")
        if event.ph == "B":
            stacks.setdefault((event.name, worker), []).append(position)
        elif event.ph == "E":
            stack = stacks.get((event.name, worker))
            if stack:
                stack.pop()
            else:
                orphans.add(position)
    return frozenset(orphans)


def chrome_trace(
    recorder: InMemoryRecorder, metadata: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Convert a recorder's events into a Chrome trace-event document.

    Truncation contract: when the recorder's ring buffer has evicted
    events (``dropped_events > 0``), end events whose begin was evicted
    are skipped — the exported document stays balanced and valid — and
    ``otherData`` records ``dropped_events`` plus how many orphan ends
    were skipped.  Untruncated recorders are exported verbatim, so a
    genuinely unbalanced stream still fails validation (an
    instrumentation bug must not be repaired silently).
    """
    skip: frozenset = frozenset()
    dropped = getattr(recorder, "dropped_events", 0)
    if dropped:
        skip = _orphan_end_positions(recorder)
    base = recorder.events[0].ts if recorder.events else 0.0
    trace_events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": _TID,
            "ts": 0,
            "args": {"name": "repro noisy simulation"},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _PID,
            "tid": _TID,
            "ts": 0,
            "args": {"name": "main"},
        },
    ]
    # Events merged back from parallel workers carry a ``worker`` arg
    # (see InMemoryRecorder.merge); fan each worker out to its own thread
    # track so spans from different processes never interleave on one tid.
    worker_tids: Dict[int, int] = {}
    for position, event in enumerate(recorder.events):
        if position in skip:
            continue
        tid = _TID
        if event.args and "worker" in event.args:
            worker = int(event.args["worker"])  # type: ignore[arg-type]
            tid = worker_tids.get(worker)
            if tid is None:
                tid = _TID + 1 + worker
                worker_tids[worker] = tid
                trace_events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": _PID,
                        "tid": tid,
                        "ts": 0,
                        "args": {"name": f"worker {worker}"},
                    }
                )
        payload: Dict[str, object] = {
            "ph": event.ph,
            "name": event.name,
            "cat": event.cat,
            "ts": (event.ts - base) * 1e6,
            "pid": _PID,
            "tid": tid,
        }
        if event.ph == "i":
            payload["s"] = "t"  # thread-scoped instant
        if event.args:
            payload["args"] = dict(event.args)
        trace_events.append(payload)
    other_data: Dict[str, object] = {"schema": TRACE_SCHEMA, **(metadata or {})}
    if dropped:
        other_data["truncated"] = True
        other_data["dropped_events"] = int(dropped)
        other_data["orphan_ends_skipped"] = len(skip)
    document: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }
    return document


def trace_json(
    recorder: InMemoryRecorder, metadata: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """The structured (non-viewer) export: events, counters, summary."""
    from .summary import summarize

    base = recorder.events[0].ts if recorder.events else 0.0
    return {
        "schema": TRACE_SCHEMA,
        "metadata": dict(metadata or {}),
        "summary": summarize(recorder).as_dict(),
        "counters": dict(recorder.counters),
        "dropped_events": int(getattr(recorder, "dropped_events", 0)),
        "events": [
            {
                "ph": event.ph,
                "name": event.name,
                "cat": event.cat,
                "ts_us": (event.ts - base) * 1e6,
                "args": dict(event.args) if event.args else {},
            }
            for event in recorder.events
        ],
    }


def validate_chrome_trace(document: Dict[str, object]) -> List[str]:
    """Schema-check a Chrome trace document; returns a list of problems.

    Checks: top-level shape, per-event required keys, monotonically
    non-decreasing ``ts`` and balanced ``B``/``E`` span nesting per
    ``(pid, tid)`` (every end matches the innermost open begin of the
    same name; nothing left open at the end).  An empty list means valid.

    Truncation contract: a ring-buffered recorder
    (``InMemoryRecorder(max_events=N)``) evicts its *oldest* events, so
    the only imbalance truncation can create is an end event whose begin
    was evicted.  :func:`chrome_trace` skips those orphan ends when the
    recorder reports ``dropped_events > 0`` and stamps
    ``otherData.truncated`` / ``dropped_events`` /
    ``orphan_ends_skipped``, so a truncated export still passes this
    validator; counter/gauge aggregates are recorded out-of-band and
    remain exact.  An imbalance in an *untruncated* stream is an
    instrumentation bug and fails validation here — only genuine ring
    eviction is repaired, never silently.
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    last_ts: Dict[tuple, float] = {}
    open_spans: Dict[tuple, List[str]] = {}
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event[{position}] is not an object")
            continue
        for key in ("ph", "name", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event[{position}] lacks required key {key!r}")
        ph = event.get("ph")
        if ph == "M":
            continue  # metadata events carry no timeline semantics
        track = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            previous = last_ts.get(track)
            if previous is not None and ts < previous:
                problems.append(
                    f"event[{position}] ts {ts} goes backwards "
                    f"(previous {previous})"
                )
            last_ts[track] = float(ts)
        name = event.get("name")
        if ph == "B":
            open_spans.setdefault(track, []).append(str(name))
        elif ph == "E":
            stack = open_spans.get(track, [])
            if not stack:
                problems.append(
                    f"event[{position}] ends span {name!r} with no span open"
                )
            elif stack[-1] != name:
                problems.append(
                    f"event[{position}] ends span {name!r} but innermost "
                    f"open span is {stack[-1]!r}"
                )
            else:
                stack.pop()
    for track, stack in open_spans.items():
        for name in stack:
            problems.append(f"span {name!r} on track {track} is never ended")
    return problems


def write_chrome_trace(
    recorder: InMemoryRecorder,
    path: str,
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Export, validate and write the Chrome trace; returns the document.

    Raises :class:`ValueError` if the recorded event stream does not
    satisfy the trace schema — a malformed trace indicates an
    instrumentation bug and must not be shipped silently.
    """
    document = chrome_trace(recorder, metadata=metadata)
    problems = validate_chrome_trace(document)
    if problems:
        raise ValueError(
            "refusing to write invalid Chrome trace: " + "; ".join(problems)
        )
    atomic_write_json(path, document, indent=1, sort_keys=True)
    return document


def write_trace_json(
    recorder: InMemoryRecorder,
    path: str,
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write the structured trace document; returns it."""
    document = trace_json(recorder, metadata=metadata)
    atomic_write_json(path, document, indent=2, sort_keys=True)
    return document
