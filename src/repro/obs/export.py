"""Trace exporters: Chrome trace-event JSON and the structured dump.

Two formats, one source of truth (:class:`~repro.obs.recorder.InMemoryRecorder`):

* :func:`chrome_trace` — the `Trace Event Format`_ consumed by
  ``chrome://tracing`` / Perfetto.  Spans become ``B``/``E`` duration
  events, instants become ``i`` events, counters and gauges become ``C``
  events whose ``args`` carry the sampled value, all on one pid/tid with
  microsecond timestamps rebased to the first event.
* :func:`trace_json` — a schema-tagged structured document (events +
  aggregated counters + derived summary) for tooling that wants numbers,
  not a timeline viewer.

:func:`validate_chrome_trace` is the schema check used by the tests and
the CI trace-smoke step: required keys, monotonically non-decreasing
``ts`` and balanced ``B``/``E`` nesting.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.atomicio import atomic_write_json
from .recorder import InMemoryRecorder

__all__ = [
    "TRACE_SCHEMA",
    "chrome_trace",
    "trace_json",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_trace_json",
]

TRACE_SCHEMA = "repro-trace/1"

_PID = 1
_TID = 1


def chrome_trace(
    recorder: InMemoryRecorder, metadata: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Convert a recorder's events into a Chrome trace-event document."""
    base = recorder.events[0].ts if recorder.events else 0.0
    trace_events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": _TID,
            "ts": 0,
            "args": {"name": "repro noisy simulation"},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _PID,
            "tid": _TID,
            "ts": 0,
            "args": {"name": "main"},
        },
    ]
    # Events merged back from parallel workers carry a ``worker`` arg
    # (see InMemoryRecorder.merge); fan each worker out to its own thread
    # track so spans from different processes never interleave on one tid.
    worker_tids: Dict[int, int] = {}
    for event in recorder.events:
        tid = _TID
        if event.args and "worker" in event.args:
            worker = int(event.args["worker"])  # type: ignore[arg-type]
            tid = worker_tids.get(worker)
            if tid is None:
                tid = _TID + 1 + worker
                worker_tids[worker] = tid
                trace_events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": _PID,
                        "tid": tid,
                        "ts": 0,
                        "args": {"name": f"worker {worker}"},
                    }
                )
        payload: Dict[str, object] = {
            "ph": event.ph,
            "name": event.name,
            "cat": event.cat,
            "ts": (event.ts - base) * 1e6,
            "pid": _PID,
            "tid": tid,
        }
        if event.ph == "i":
            payload["s"] = "t"  # thread-scoped instant
        if event.args:
            payload["args"] = dict(event.args)
        trace_events.append(payload)
    document: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, **(metadata or {})},
    }
    return document


def trace_json(
    recorder: InMemoryRecorder, metadata: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """The structured (non-viewer) export: events, counters, summary."""
    from .summary import summarize

    base = recorder.events[0].ts if recorder.events else 0.0
    return {
        "schema": TRACE_SCHEMA,
        "metadata": dict(metadata or {}),
        "summary": summarize(recorder).as_dict(),
        "counters": dict(recorder.counters),
        "events": [
            {
                "ph": event.ph,
                "name": event.name,
                "cat": event.cat,
                "ts_us": (event.ts - base) * 1e6,
                "args": dict(event.args) if event.args else {},
            }
            for event in recorder.events
        ],
    }


def validate_chrome_trace(document: Dict[str, object]) -> List[str]:
    """Schema-check a Chrome trace document; returns a list of problems.

    Checks: top-level shape, per-event required keys, monotonically
    non-decreasing ``ts`` and balanced ``B``/``E`` span nesting per
    ``(pid, tid)`` (every end matches the innermost open begin of the
    same name; nothing left open at the end).  An empty list means valid.
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    last_ts: Dict[tuple, float] = {}
    open_spans: Dict[tuple, List[str]] = {}
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event[{position}] is not an object")
            continue
        for key in ("ph", "name", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event[{position}] lacks required key {key!r}")
        ph = event.get("ph")
        if ph == "M":
            continue  # metadata events carry no timeline semantics
        track = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            previous = last_ts.get(track)
            if previous is not None and ts < previous:
                problems.append(
                    f"event[{position}] ts {ts} goes backwards "
                    f"(previous {previous})"
                )
            last_ts[track] = float(ts)
        name = event.get("name")
        if ph == "B":
            open_spans.setdefault(track, []).append(str(name))
        elif ph == "E":
            stack = open_spans.get(track, [])
            if not stack:
                problems.append(
                    f"event[{position}] ends span {name!r} with no span open"
                )
            elif stack[-1] != name:
                problems.append(
                    f"event[{position}] ends span {name!r} but innermost "
                    f"open span is {stack[-1]!r}"
                )
            else:
                stack.pop()
    for track, stack in open_spans.items():
        for name in stack:
            problems.append(f"span {name!r} on track {track} is never ended")
    return problems


def write_chrome_trace(
    recorder: InMemoryRecorder,
    path: str,
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Export, validate and write the Chrome trace; returns the document.

    Raises :class:`ValueError` if the recorded event stream does not
    satisfy the trace schema — a malformed trace indicates an
    instrumentation bug and must not be shipped silently.
    """
    document = chrome_trace(recorder, metadata=metadata)
    problems = validate_chrome_trace(document)
    if problems:
        raise ValueError(
            "refusing to write invalid Chrome trace: " + "; ".join(problems)
        )
    atomic_write_json(path, document, indent=1, sort_keys=True)
    return document


def write_trace_json(
    recorder: InMemoryRecorder,
    path: str,
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write the structured trace document; returns it."""
    document = trace_json(recorder, metadata=metadata)
    atomic_write_json(path, document, indent=2, sort_keys=True)
    return document
