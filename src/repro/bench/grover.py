"""Grover search circuits (Table I ``grover``).

3-qubit Grover search over an 8-entry database, marking one basis state
with a CCZ oracle and amplifying with the standard diffusion operator.  Two
iterations maximize the success probability for N = 8 (~94.5 %); the noise
tests assert the marked state dominates the output distribution.
"""

from __future__ import annotations


from ..circuits.circuit import QuantumCircuit

__all__ = ["grover", "grover3"]


def _ccz(circuit: QuantumCircuit, a: int, b: int, c: int) -> None:
    """CCZ = H(target) CCX H(target)."""
    circuit.h(c)
    circuit.ccx(a, b, c)
    circuit.h(c)


def _oracle(circuit: QuantumCircuit, marked: str) -> None:
    """Phase-flip the basis state ``marked`` (bit i = qubit i)."""
    zeros = [qubit for qubit, bit in enumerate(marked) if bit == "0"]
    for qubit in zeros:
        circuit.x(qubit)
    _ccz(circuit, 0, 1, 2)
    for qubit in zeros:
        circuit.x(qubit)


def _diffusion(circuit: QuantumCircuit) -> None:
    """Inversion about the mean: H X CCZ X H on all qubits."""
    for qubit in range(3):
        circuit.h(qubit)
    for qubit in range(3):
        circuit.x(qubit)
    _ccz(circuit, 0, 1, 2)
    for qubit in range(3):
        circuit.x(qubit)
    for qubit in range(3):
        circuit.h(qubit)


def grover(marked: str = "111", iterations: int = 2) -> QuantumCircuit:
    """Grover search on 3 qubits for the ``marked`` basis state."""
    if len(marked) != 3 or set(marked) - {"0", "1"}:
        raise ValueError(f"marked state must be 3 bits, got {marked!r}")
    if iterations < 1:
        raise ValueError("need at least one Grover iteration")
    circuit = QuantumCircuit(3, name="grover")
    for qubit in range(3):
        circuit.h(qubit)
    for _ in range(iterations):
        _oracle(circuit, marked)
        _diffusion(circuit)
    circuit.measure_all()
    return circuit


def grover3() -> QuantumCircuit:
    """Table I ``grover``: 3 qubits, 2 iterations, marked state |111>."""
    return grover()
