"""Bernstein-Vazirani circuits.

``bv(n)`` builds the textbook BV circuit on ``n`` qubits: ``n - 1`` data
qubits holding the query result plus one ancilla prepared in ``|->``.  With
the all-ones hidden string (the paper's convention, giving ``n - 1`` CNOTs)
the noise-free output is the hidden string itself — the property tests
assert exactly that.  Table I's ``bv4`` / ``bv5`` are ``bv(4)`` / ``bv(5)``.
"""

from __future__ import annotations

from typing import Optional

from ..circuits.circuit import QuantumCircuit

__all__ = ["bv", "bv4", "bv5"]


def bv(num_qubits: int, hidden_string: Optional[str] = None) -> QuantumCircuit:
    """Bernstein-Vazirani on ``num_qubits`` (last qubit is the ancilla).

    Parameters
    ----------
    hidden_string:
        Bitstring of length ``num_qubits - 1``; defaults to all ones.
    """
    if num_qubits < 2:
        raise ValueError("BV needs at least one data qubit plus the ancilla")
    data = num_qubits - 1
    if hidden_string is None:
        hidden_string = "1" * data
    if len(hidden_string) != data or set(hidden_string) - {"0", "1"}:
        raise ValueError(
            f"hidden string must be {data} bits of 0/1, got {hidden_string!r}"
        )
    ancilla = data
    circuit = QuantumCircuit(num_qubits, data, name=f"bv{num_qubits}")
    for qubit in range(data):
        circuit.h(qubit)
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit, bit in enumerate(hidden_string):
        if bit == "1":
            circuit.cx(qubit, ancilla)
    for qubit in range(data):
        circuit.h(qubit)
    for qubit in range(data):
        circuit.measure(qubit, qubit)
    return circuit


def bv4() -> QuantumCircuit:
    """Table I ``bv4``: 4 qubits, hidden string ``111``."""
    return bv(4)


def bv5() -> QuantumCircuit:
    """Table I ``bv5``: 5 qubits, hidden string ``1111``."""
    return bv(5)
