"""Quantum Fourier Transform circuits (Table I ``qft4`` / ``qft5``).

The textbook QFT: per qubit a Hadamard followed by controlled phase
rotations ``cu1(pi / 2**k)`` from every later qubit, with the optional final
qubit-reversal SWAP network.  The circuit is measured on every qubit; the
noise-free output of QFT applied to ``|0...0>`` is the uniform
superposition, which the tests assert.
"""

from __future__ import annotations

import math

from ..circuits.circuit import QuantumCircuit

__all__ = ["qft", "qft4", "qft5"]


def qft(
    num_qubits: int,
    with_swaps: bool = True,
    measured: bool = True,
) -> QuantumCircuit:
    """The ``num_qubits``-qubit QFT.

    Parameters
    ----------
    with_swaps:
        Append the qubit-reversal SWAP network (the full textbook unitary).
    measured:
        Measure every qubit at the end (the paper's benchmark form).
    """
    if num_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=2):
            circuit.cu1(2.0 * math.pi / (2**offset), control, target)
    if with_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    if measured:
        circuit.measure_all()
    return circuit


def qft4() -> QuantumCircuit:
    """Table I ``qft4``."""
    return qft(4)


def qft5() -> QuantumCircuit:
    """Table I ``qft5``."""
    return qft(5)
