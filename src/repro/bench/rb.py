"""Randomized-benchmarking style sequences (Table I ``rb``).

A two-qubit RB sequence: a random string of Clifford-group gates (drawn
from a self-inverse-or-paired subset so the inverse stays in the standard
basis) followed by the exact inverse of the whole string.  The noise-free
output is therefore ``|00>`` with certainty — the canonical RB property,
asserted by the tests; under noise the survival probability of ``|00>``
decays, which is what RB measures on hardware.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..circuits.circuit import GateOp, QuantumCircuit
from ..circuits.gates import standard_gate

__all__ = ["rb_sequence", "rb2"]

#: (gate name, inverse gate name) pairs the sequence draws from.
_INVERTIBLE_1Q: Tuple[Tuple[str, str], ...] = (
    ("h", "h"),
    ("x", "x"),
    ("y", "y"),
    ("z", "z"),
    ("s", "sdg"),
    ("sdg", "s"),
    ("t", "tdg"),
    ("tdg", "t"),
)


def rb_sequence(
    num_qubits: int = 2,
    length: int = 3,
    seed: int = 2020,
    measured: bool = True,
    singles_per_round: int = 1,
) -> QuantumCircuit:
    """A random self-inverting benchmark sequence.

    Each of the ``length`` rounds applies ``singles_per_round`` random
    single-qubit gates per qubit followed by a CNOT on a random adjacent
    pair (when 2+ qubits); the inverse sequence is appended in reverse.
    The identity of the whole circuit is a test invariant.
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    if length < 1:
        raise ValueError("need at least one round")
    if singles_per_round < 1:
        raise ValueError("need at least one single-qubit gate per round")
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"rb{num_qubits}")
    inverse_ops: List[GateOp] = []

    for _ in range(length):
        for qubit in range(num_qubits):
            for _ in range(singles_per_round):
                name, inverse_name = _INVERTIBLE_1Q[
                    int(rng.integers(len(_INVERTIBLE_1Q)))
                ]
                circuit.gate(name, qubit)
                inverse_ops.append(GateOp(standard_gate(inverse_name), (qubit,)))
        if num_qubits >= 2:
            control = int(rng.integers(num_qubits - 1))
            pair = (control, control + 1)
            circuit.cx(*pair)
            inverse_ops.append(GateOp(standard_gate("cx"), pair))

    for op in reversed(inverse_ops):
        circuit.append(op)
    if measured:
        circuit.measure_all()
    return circuit


def rb2() -> QuantumCircuit:
    """Table I ``rb``: a short 2-qubit sequence (~9 single gates, 2 CNOTs)."""
    return rb_sequence(num_qubits=2, length=1, seed=7, singles_per_round=2)
