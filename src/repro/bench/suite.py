"""The Table I benchmark suite.

Twelve programs, each compiled to IBM's 5-qubit Yorktown device exactly as
in the paper (Sec. V-A).  For every benchmark the suite records the paper's
post-compilation characteristics (qubit / single-gate / CNOT / measurement
counts) next to the counts our compiler produces — our router replaces the
Enfield compiler, so counts match approximately, not exactly; the
evaluation metrics (Figs. 5-6) are computed from *our* compiled circuits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Tuple

from ..circuits.circuit import QuantumCircuit
from ..mapping.coupling import yorktown_coupling
from ..mapping.router import compile_for_device
from .bv import bv, bv4, bv5
from .grover import grover3
from .mod15 import seven_x_one_mod15
from .qft import qft, qft4, qft5
from .qv import qv_n5
from .rb import rb2
from .wstate import wstate3

__all__ = [
    "BenchmarkSpec",
    "LARGE_BENCHMARKS",
    "LargeBenchmarkSpec",
    "TABLE1_BENCHMARKS",
    "all_benchmark_names",
    "benchmark_names",
    "build_benchmark",
    "build_compiled_benchmark",
    "export_qasm_suite",
    "large_benchmark_names",
    "resolve_benchmark",
    "table1_rows",
]


class BenchmarkSpec(NamedTuple):
    """One Table I row: a builder plus the paper's reported counts."""

    name: str
    builder: Callable[[], QuantumCircuit]
    paper_qubits: int
    paper_single: int
    paper_cnot: int
    paper_measure: int


TABLE1_BENCHMARKS: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("rb", rb2, 2, 9, 2, 2),
    BenchmarkSpec("grover", grover3, 3, 87, 25, 3),
    BenchmarkSpec("wstate", wstate3, 3, 21, 9, 3),
    BenchmarkSpec("7x1mod15", seven_x_one_mod15, 4, 17, 9, 4),
    BenchmarkSpec("bv4", bv4, 4, 8, 3, 3),
    BenchmarkSpec("bv5", bv5, 5, 10, 4, 4),
    BenchmarkSpec("qft4", qft4, 4, 42, 15, 4),
    BenchmarkSpec("qft5", qft5, 5, 83, 26, 5),
    BenchmarkSpec("qv_n5d2", lambda: qv_n5(2), 5, 44, 12, 5),
    BenchmarkSpec("qv_n5d3", lambda: qv_n5(3), 5, 74, 21, 5),
    BenchmarkSpec("qv_n5d4", lambda: qv_n5(4), 5, 100, 30, 5),
    BenchmarkSpec("qv_n5d5", lambda: qv_n5(5), 5, 130, 36, 5),
)

_BY_NAME: Dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in TABLE1_BENCHMARKS
}


def benchmark_names() -> List[str]:
    """Names of the twelve Table I benchmarks, in paper order."""
    return [spec.name for spec in TABLE1_BENCHMARKS]


def build_benchmark(name: str) -> QuantumCircuit:
    """Build the *logical* (pre-compilation) benchmark circuit."""
    try:
        spec = _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {benchmark_names()}"
        ) from None
    return spec.builder()


def build_compiled_benchmark(name: str, optimized: bool = False) -> QuantumCircuit:
    """Build the benchmark compiled to the Yorktown device basis/topology.

    ``optimized=True`` additionally runs the peephole passes
    (:func:`repro.mapping.optimize_circuit`) — fewer gates, hence fewer
    error positions; the ``compiler_quality`` ablation benchmark measures
    how that shifts the noise profile and the optimizer's savings.
    """
    compiled = compile_for_device(build_benchmark(name), yorktown_coupling())
    if optimized:
        from ..mapping.optimize import optimize_circuit

        compiled = optimize_circuit(compiled)
    return compiled


def export_qasm_suite(directory, compiled: bool = True) -> List[str]:
    """Write every Table I benchmark as an OpenQASM 2.0 file.

    Returns the written file paths.  ``compiled=True`` exports the
    Yorktown-mapped form (the paper's simulated circuits); ``False``
    exports the logical circuits.
    """
    import os

    from ..circuits.qasm import to_qasm

    os.makedirs(directory, exist_ok=True)
    written = []
    for spec in TABLE1_BENCHMARKS:
        circuit = (
            compile_for_device(spec.builder(), yorktown_coupling())
            if compiled
            else spec.builder()
        )
        path = os.path.join(directory, f"{spec.name}.qasm")
        with open(path, "w") as handle:
            handle.write(to_qasm(circuit))
        written.append(path)
    return written


class LargeBenchmarkSpec(NamedTuple):
    """A beyond-Table-I benchmark for the parallel/perf harness.

    Too many qubits for the 5-qubit Yorktown device, so these run as
    *logical* circuits under a uniform artificial noise model (the
    paper's Sec. V-B scalability methodology): single-qubit rate
    ``error_rate``, two-qubit and measurement rates 10x that.
    """

    name: str
    builder: Callable[[], QuantumCircuit]
    num_qubits: int
    error_rate: float


#: 12+-qubit workloads for ``repro bench --workers``.  Error rates are
#: tuned so a 1024-trial set branches into enough distinct subtrees to
#: load-balance across workers while keeping the distinct-final-state
#: count (hence memory and runtime) bounded.
LARGE_BENCHMARKS: Tuple[LargeBenchmarkSpec, ...] = (
    LargeBenchmarkSpec("qft12", lambda: qft(12), 12, 1.0e-3),
    LargeBenchmarkSpec("bv14", lambda: bv(14), 14, 2.0e-3),
    LargeBenchmarkSpec("qft14", lambda: qft(14), 14, 7.0e-4),
)

_LARGE_BY_NAME: Dict[str, LargeBenchmarkSpec] = {
    spec.name: spec for spec in LARGE_BENCHMARKS
}


def large_benchmark_names() -> List[str]:
    """Names of the large (12+-qubit) benchmarks."""
    return [spec.name for spec in LARGE_BENCHMARKS]


def all_benchmark_names() -> List[str]:
    """Table I names followed by the large-suite names."""
    return benchmark_names() + large_benchmark_names()


def resolve_benchmark(name: str):
    """Resolve any benchmark name to ``(circuit, noise_model)``.

    Table I names yield the Yorktown-compiled circuit with the real
    device model; large-suite names yield the logical circuit with the
    spec's uniform artificial model.  This is the single lookup the CLI
    and the perf harness share.
    """
    from ..noise.devices import artificial_model, ibm_yorktown

    if name in _LARGE_BY_NAME:
        spec = _LARGE_BY_NAME[name]
        return spec.builder(), artificial_model(spec.error_rate)
    return build_compiled_benchmark(name), ibm_yorktown()


def table1_rows() -> List[Dict[str, object]]:
    """Paper-vs-measured Table I characteristics for all benchmarks."""
    rows: List[Dict[str, object]] = []
    for spec in TABLE1_BENCHMARKS:
        compiled = compile_for_device(spec.builder(), yorktown_coupling())
        rows.append(
            {
                "name": spec.name,
                "qubits_paper": spec.paper_qubits,
                "qubits_used": spec.builder().num_qubits,
                "single_paper": spec.paper_single,
                "single_ours": compiled.num_single_qubit_gates(),
                "cnot_paper": spec.paper_cnot,
                "cnot_ours": compiled.num_two_qubit_gates(),
                "measure_paper": spec.paper_measure,
                "measure_ours": compiled.num_measurements(),
            }
        )
    return rows
