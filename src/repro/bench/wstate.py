"""W-state preparation circuits (Table I ``wstate``).

Prepares the n-qubit W state ``(|10...0> + |010...0> + ... + |0...01>) /
sqrt(n)`` with the excitation-cascade construction: start from ``|10...0>``
and repeatedly split the single excitation toward the next qubit with a
controlled-RY (angle ``2*arccos(sqrt(1/k))``) followed by a CNOT back.
Controlled-RYs are emitted pre-decomposed into {ry, cx}, so the circuit is
already in the device basis.

The statevector tests assert the exact W amplitudes.
"""

from __future__ import annotations

import math

from ..circuits.circuit import QuantumCircuit

__all__ = ["wstate", "wstate3"]


def _cry(circuit: QuantumCircuit, theta: float, control: int, target: int) -> None:
    """Controlled-RY in the {ry, cx} basis."""
    circuit.ry(theta / 2.0, target)
    circuit.cx(control, target)
    circuit.ry(-theta / 2.0, target)
    circuit.cx(control, target)


def wstate(num_qubits: int, measured: bool = True) -> QuantumCircuit:
    """Prepare the ``num_qubits``-qubit W state."""
    if num_qubits < 2:
        raise ValueError("a W state needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits, name=f"wstate{num_qubits}")
    circuit.x(0)
    # After step k the excitation is spread over qubits 0..k with the first
    # k amplitudes already final.  Splitting qubit k keeps amplitude
    # sqrt(1/(n-k)) of the remainder and passes the rest along.
    for qubit in range(num_qubits - 1):
        remaining = num_qubits - qubit
        theta = 2.0 * math.acos(math.sqrt(1.0 / remaining))
        _cry(circuit, theta, qubit, qubit + 1)
        circuit.cx(qubit + 1, qubit)
    if measured:
        circuit.measure_all()
    return circuit


def wstate3() -> QuantumCircuit:
    """Table I ``wstate``: the 3-qubit W state."""
    return wstate(3)
