"""Quantum Volume model circuits (Table I ``qv_*`` and the Figs. 7-8 sweep).

IBM's Quantum Volume circuits: ``depth`` layers, each a random permutation
of the qubits followed by a random SU(4) on every adjacent pair of the
permutation.  Two emission modes:

* ``decomposed=True`` (default) — each SU(4) is emitted in the universal
  3-CNOT template (``u3 x u3 . CX . u3 x u3 . CX . u3 x u3 . CX .
  u3 x u3`` with Haar-ish random angles).  This is the form the error model
  consumes (errors attach to physical gates) and the form whose gate counts
  Table I reports.
* ``decomposed=False`` — each SU(4) is a single Haar-random 4x4 unitary
  gate, useful for dense-matrix validation.

The permutation is *free* (relabeling) at generation time; when the circuit
is compiled to a constrained device the router turns far pairs into SWAPs,
matching how Table I's counts include mapping overhead.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import random_su4

__all__ = ["quantum_volume", "qv_n5", "QV_SCALABILITY_SIZES"]

#: The (num_qubits, depth) grid of the paper's scalability study (Figs. 7-8).
QV_SCALABILITY_SIZES: Tuple[Tuple[int, int], ...] = (
    (10, 5),
    (10, 10),
    (10, 15),
    (10, 20),
    (20, 20),
    (30, 20),
    (40, 20),
)


def _random_u3_params(rng: np.random.Generator) -> Tuple[float, float, float]:
    theta = float(rng.uniform(0.0, math.pi))
    phi = float(rng.uniform(0.0, 2.0 * math.pi))
    lam = float(rng.uniform(0.0, 2.0 * math.pi))
    return theta, phi, lam


def _su4_template(
    circuit: QuantumCircuit, a: int, b: int, rng: np.random.Generator
) -> None:
    """The universal 3-CNOT two-qubit block with random rotations."""
    for qubit in (a, b):
        circuit.u3(*_random_u3_params(rng), qubit)
    circuit.cx(a, b)
    for qubit in (a, b):
        circuit.u3(*_random_u3_params(rng), qubit)
    circuit.cx(a, b)
    for qubit in (a, b):
        circuit.u3(*_random_u3_params(rng), qubit)
    circuit.cx(a, b)
    for qubit in (a, b):
        circuit.u3(*_random_u3_params(rng), qubit)


def quantum_volume(
    num_qubits: int,
    depth: int,
    seed: int = 0,
    decomposed: bool = True,
    measured: bool = True,
) -> QuantumCircuit:
    """Generate a Quantum Volume circuit ``qv_n{num_qubits}d{depth}``."""
    if num_qubits < 2:
        raise ValueError("QV needs at least 2 qubits")
    if depth < 1:
        raise ValueError("QV depth must be positive")
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"qv_n{num_qubits}d{depth}")
    for _ in range(depth):
        permutation = rng.permutation(num_qubits)
        for pair_index in range(num_qubits // 2):
            a = int(permutation[2 * pair_index])
            b = int(permutation[2 * pair_index + 1])
            if decomposed:
                _su4_template(circuit, a, b, rng)
            else:
                circuit.apply(random_su4(rng), a, b)
    if measured:
        circuit.measure_all()
    return circuit


def qv_n5(depth: int, seed: int = 0) -> QuantumCircuit:
    """Table I ``qv_n5d{depth}``: 5-qubit QV of the given depth."""
    return quantum_volume(5, depth, seed=seed)
