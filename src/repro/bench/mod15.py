"""Modular multiplication circuit ``7x1 mod 15`` (Table I ``7x1mod15``).

The Shor-algorithm building block that multiplies a 4-bit register by 7
modulo 15.  Because ``7 = -8 (mod 15)`` and 15 is a Mersenne number, the
map factors into two cheap pieces:

* ``x -> 8x mod 15`` is a cyclic rotation of the 4 bits by three positions
  (three SWAPs), and
* ``y -> -y mod 15`` is the bitwise complement (an X on every bit).

Starting from ``|0001>`` (the integer 1), the noise-free output is
``7 = 0111`` — asserted in the tests for every input value 1..14.  (As in
the standard hardware implementations, the unused values 0 and 15 map to
each other instead of being fixed points.)
"""

from __future__ import annotations

from ..circuits.circuit import QuantumCircuit

__all__ = ["mod15_mult7", "seven_x_one_mod15"]


def mod15_mult7(initial_value: int = 1, measured: bool = True) -> QuantumCircuit:
    """Multiply ``initial_value`` by 7 mod 15 on a 4-qubit register.

    Qubit 0 is the most significant bit of the register (matching the
    statevector convention).  ``initial_value`` must be in ``0..15``; the
    arithmetic is exact for values 1..14, while 0 and 15 (unused in Shor's
    algorithm) map to each other.
    """
    if not 0 <= initial_value <= 15:
        raise ValueError(f"register value out of range: {initial_value}")
    circuit = QuantumCircuit(4, name="7x1mod15")
    # Prepare |initial_value>.
    for qubit in range(4):
        if (initial_value >> (3 - qubit)) & 1:
            circuit.x(qubit)
    # x -> 8x mod 15: rotate bits left by 3 == rotate right by 1.
    # (b0 b1 b2 b3) -> (b3 b0 b1 b2), done as a chain of adjacent swaps.
    circuit.swap(2, 3)
    circuit.swap(1, 2)
    circuit.swap(0, 1)
    # y -> -y mod 15: complement every bit.
    for qubit in range(4):
        circuit.x(qubit)
    if measured:
        circuit.measure_all()
    return circuit


def seven_x_one_mod15() -> QuantumCircuit:
    """Table I ``7x1mod15``: the 7*1 mod 15 instance."""
    return mod15_mult7(1)
