"""Benchmark circuit generators: the paper's Table I workloads."""

from .bv import bv, bv4, bv5
from .grover import grover, grover3
from .mod15 import mod15_mult7, seven_x_one_mod15
from .qft import qft, qft4, qft5
from .qv import QV_SCALABILITY_SIZES, quantum_volume, qv_n5
from .rb import rb2, rb_sequence
from .suite import (
    BenchmarkSpec,
    TABLE1_BENCHMARKS,
    benchmark_names,
    build_benchmark,
    build_compiled_benchmark,
    export_qasm_suite,
    table1_rows,
)
from .wstate import wstate, wstate3

__all__ = [
    "BenchmarkSpec",
    "QV_SCALABILITY_SIZES",
    "TABLE1_BENCHMARKS",
    "benchmark_names",
    "build_benchmark",
    "build_compiled_benchmark",
    "export_qasm_suite",
    "bv",
    "bv4",
    "bv5",
    "grover",
    "grover3",
    "mod15_mult7",
    "qft",
    "qft4",
    "qft5",
    "quantum_volume",
    "qv_n5",
    "rb2",
    "rb_sequence",
    "seven_x_one_mod15",
    "table1_rows",
    "wstate",
    "wstate3",
]
