"""repro — Eliminating Redundant Computation in Noisy Quantum Computing Simulation.

A full reproduction of Li, Ding and Xie (DAC 2020): a noisy statevector
simulator whose Monte-Carlo error-injection trials are statically
generated, reordered to maximize shared prefixes, and executed with
prefix-state caching — saving ~80 % of the matrix-vector work with only a
handful of maintained state vectors.

Quickstart::

    from repro import NoisySimulator, ibm_yorktown
    from repro.bench import build_compiled_benchmark

    circuit = build_compiled_benchmark("bv4")
    sim = NoisySimulator(circuit, ibm_yorktown(), seed=7)
    result = sim.run(num_trials=1024)
    print(result.counts)
    print(result.metrics.computation_saving)   # fraction of ops eliminated

Package map: :mod:`repro.circuits` (IR + QASM), :mod:`repro.sim`
(statevector / density / counting engines), :mod:`repro.noise` (error
models and trial sampling), :mod:`repro.core` (the reordering optimization),
:mod:`repro.mapping` (device compilation), :mod:`repro.bench` (paper
benchmarks), :mod:`repro.experiments` (Table I / Figs. 5-8 drivers),
:mod:`repro.obs` (execution tracing and profiling).
"""

from .circuits import QuantumCircuit, layerize, parse_qasm, to_qasm
from .core import (
    ErrorEvent,
    NoisySimulator,
    RunInterrupted,
    RunMetrics,
    SharedPrefixStore,
    SimulationResult,
    Trial,
    build_plan,
    make_trial,
    reorder_trials,
    reorder_trials_recursive,
    run_baseline,
    run_optimized,
)
from .lint import (
    Diagnostic,
    LintConfig,
    LintResult,
    lint_circuit,
    sanitize_plan,
)
from .noise import (
    NoiseModel,
    artificial_model,
    depolarizing,
    ibm_yorktown,
    sample_trials,
)
from .obs import InMemoryRecorder, NullRecorder, TraceRecorder
from .sim import DensityMatrix, Statevector

__version__ = "1.0.0"

__all__ = [
    "DensityMatrix",
    "Diagnostic",
    "ErrorEvent",
    "InMemoryRecorder",
    "LintConfig",
    "LintResult",
    "NoiseModel",
    "NoisySimulator",
    "NullRecorder",
    "QuantumCircuit",
    "RunInterrupted",
    "RunMetrics",
    "SharedPrefixStore",
    "SimulationResult",
    "Statevector",
    "TraceRecorder",
    "Trial",
    "__version__",
    "artificial_model",
    "build_plan",
    "depolarizing",
    "ibm_yorktown",
    "layerize",
    "lint_circuit",
    "make_trial",
    "parse_qasm",
    "sanitize_plan",
    "reorder_trials",
    "reorder_trials_recursive",
    "run_baseline",
    "run_optimized",
    "sample_trials",
    "to_qasm",
]
