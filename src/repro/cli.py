"""Command-line interface: regenerate every table and figure of the paper.

Examples::

    python -m repro table1                 # Table I characteristics
    python -m repro device                 # Fig. 4 calibration data
    python -m repro fig5                   # normalized computation (realistic)
    python -m repro fig6                   # MSVs (realistic)
    python -m repro fig7 --trials 100000   # scalability, normalized computation
    python -m repro fig8 --trials 100000   # scalability, MSVs
    python -m repro run bv4 --trials 2048  # one benchmark end to end
    python -m repro lint                   # static audit of every benchmark
    python -m repro lint circuit.qasm      # lint an OpenQASM file
    python -m repro bench --json BENCH.json  # compiled-vs-interpreted perf
    python -m repro trace grover           # recorded run -> .trace.json + profile
    python -m repro serve /tmp/state       # crash-safe job server
    python -m repro submit /tmp/state bv4 --trials 2048 --stream
    python -m repro jobs /tmp/state        # list jobs on a running server
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from .analysis.report import rows_to_table
from .core.atomicio import atomic_write_json
from .bench.suite import (
    all_benchmark_names,
    benchmark_names,
    build_compiled_benchmark,
    table1_rows,
)
from .core.runner import NoisySimulator
from .experiments.realistic import (
    fig5_rows,
    fig6_rows,
    run_realistic_experiment,
)
from .experiments.scalability import (
    fig7_rows,
    fig8_rows,
    run_scalability_experiment,
)
from .noise.devices import (
    YORKTOWN_COUPLING,
    ibm_yorktown,
)

__all__ = ["main"]


def _maybe_write_json(args: argparse.Namespace, rows) -> None:
    """Write experiment rows to ``--json PATH`` when requested."""
    path = getattr(args, "json", None)
    if not path:
        return
    atomic_write_json(path, rows, indent=2, sort_keys=True)
    print(f"\nwrote {len(rows)} rows to {path}")


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = table1_rows()
    print(
        rows_to_table(
            rows,
            title="Table I: benchmark characteristics (paper vs this repo)",
        )
    )
    _maybe_write_json(args, rows)
    return 0


def _cmd_device(args: argparse.Namespace) -> int:
    model = ibm_yorktown()
    rows = []
    for qubit in range(5):
        rows.append(
            {
                "qubit": f"Q{qubit}",
                "single (1e-3)": model.single_qubit_error[qubit] * 1e3,
                "measure (1e-2)": model.measurement_error[qubit] * 1e2,
            }
        )
    print(rows_to_table(rows, title="Fig. 4: IBM Yorktown per-qubit error rates"))
    print()
    pair_rows = [
        {
            "pair": f"Q{min(pair)}-Q{max(pair)}",
            "cnot (1e-2)": model.two_qubit_error[frozenset(pair)] * 1e2,
        }
        for pair in YORKTOWN_COUPLING
    ]
    print(rows_to_table(pair_rows, title="Fig. 4: two-qubit gate error rates"))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    records = run_realistic_experiment(
        benchmarks=args.benchmarks, seed=args.seed
    )
    rows = fig5_rows(records)
    print(
        rows_to_table(
            rows,
            title="Fig. 5: normalized computation, Yorktown model",
        )
    )
    _maybe_write_json(args, rows)
    savings = [
        1.0 - r.normalized_computation for r in records if r.num_trials == 8192
    ]
    if savings:
        print(
            f"\naverage computation saving @8192 trials: "
            f"{sum(savings) / len(savings):.1%}"
        )
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    records = run_realistic_experiment(
        benchmarks=args.benchmarks, trial_counts=(1024,), seed=args.seed
    )
    rows = fig6_rows(records)
    print(
        rows_to_table(
            rows,
            title="Fig. 6: maintained state vectors (MSVs), 1024 trials",
        )
    )
    _maybe_write_json(args, rows)
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    records = run_scalability_experiment(
        num_trials=args.trials, seed=args.seed, engine=args.engine
    )
    rows = fig7_rows(records)
    print(
        rows_to_table(
            rows,
            title=(
                "Fig. 7: normalized computation, artificial models "
                f"({args.trials} trials; paper uses 10^6)"
            ),
        )
    )
    _maybe_write_json(args, rows)
    values = [r.normalized_computation for r in records]
    print(f"\naverage computation saving: {1.0 - sum(values) / len(values):.1%}")
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    records = run_scalability_experiment(
        num_trials=args.trials, seed=args.seed, engine=args.engine
    )
    rows = fig8_rows(records)
    print(
        rows_to_table(
            rows,
            title=(
                "Fig. 8: maintained state vectors, artificial models "
                f"({args.trials} trials; paper uses 10^6)"
            ),
        )
    )
    _maybe_write_json(args, rows)
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    import numpy as np

    from .circuits import layerize
    from .experiments import ablation_report
    from .noise.sampling import sample_trials

    model = ibm_yorktown()
    rows = []
    names = args.benchmarks or ["bv4", "qft4", "qv_n5d3", "qv_n5d5"]
    for name in names:
        layered = layerize(build_compiled_benchmark(name))
        trials = sample_trials(
            layered, model, args.trials, np.random.default_rng(args.seed)
        )
        report = ablation_report(layered, trials)
        base = report["baseline"]
        rows.append(
            {"benchmark": name, **{k: v / base for k, v in report.items()}}
        )
    print(
        rows_to_table(
            rows,
            title=(
                f"Ablations: normalized ops ({args.trials} trials, Yorktown) — "
                "dedup / reuse-without-reorder / reorder / full trie"
            ),
        )
    )
    return 0


def _cmd_draw(args: argparse.Namespace) -> int:
    from .circuits.draw import draw

    circuit = (
        build_compiled_benchmark(args.benchmark)
        if args.compiled
        else __import__("repro.bench", fromlist=["build_benchmark"]).build_benchmark(
            args.benchmark
        )
    )
    print(draw(circuit, max_width=args.width))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    """Analytic prediction vs measured saving for one benchmark."""
    from .analysis.predictor import predict_summary
    from .analysis.sharing import analyze_sharing
    from .circuits import layerize

    circuit = build_compiled_benchmark(args.benchmark)
    layered = layerize(circuit)
    model = ibm_yorktown()
    summary = predict_summary(layered, model, args.trials)
    print(f"benchmark                  : {args.benchmark}")
    print(f"error positions            : {summary['num_positions']:.0f}")
    print(f"P(error-free trial)        : {summary['error_free_probability']:.4f}")
    print(f"expected fired positions   : {summary['expected_fired_positions']:.3f}")
    print(
        f"expected error-free trials : "
        f"{summary['expected_error_free_trials']:.1f} / {args.trials}"
    )
    print(f"predicted saving (bound)   : {summary['saving_lower_bound']:.1%}")

    from .analysis.budget import error_budget

    budget = error_budget(layered, model)
    fractions = budget.fractions()
    print(
        "error budget               : "
        f"1q {fractions['single_qubit']:.0%}, "
        f"2q {fractions['two_qubit']:.0%}, "
        f"idle {fractions['idle']:.0%}, "
        f"readout {fractions['readout']:.0%} "
        f"(dominant: {budget.dominant_source()})"
    )

    simulator = NoisySimulator(circuit, model, seed=args.seed)
    trials = simulator.sample(args.trials)
    report = analyze_sharing(layered, trials)
    print(f"measured saving            : {report.computation_saving:.1%}")
    print(f"measured duplicate mass    : {report.duplicate_fraction:.1%}")
    print(f"mean adjacent shared prefix: {report.mean_lcp:.2f} events")
    print(f"peak MSV                   : {report.peak_msv}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Wall-clock perf harness: compiled kernels vs interpreted statevector."""
    from .perf import bench_rows, run_bench, write_bench_json

    try:
        payload = run_bench(
            benchmarks=args.benchmarks,
            num_trials=args.trials,
            repeats=args.repeats,
            warmup=args.warmup,
            seed=args.seed,
            check=not args.no_check,
            trace=args.trace,
            workers=args.workers or (),
            partition_depth=args.partition_depth,
            auto=args.auto,
            batches=args.batch or (),
            hybrid=args.hybrid,
            progress=lambda name: print(f"benching {name} ...", file=sys.stderr),
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(
        rows_to_table(
            bench_rows(payload),
            title=(
                f"repro bench: statevector execution, {args.trials} trials "
                f"(best of {args.repeats} after {args.warmup} warmup)"
            ),
        )
    )
    summary = payload["summary"]
    print(
        f"\ngeomean speedup: {summary['geomean_speedup']:.2f}x "
        f"(min {summary['min_speedup']:.2f}x, "
        f"max {summary['max_speedup']:.2f}x)"
    )
    if not args.no_check:
        status = "ok" if summary["all_equivalent"] else "FAILED"
        print(f"equivalence (ops, peak MSV, final states): {status}")
    if args.workers:
        status = "ok" if summary["all_parallel_exact"] else "FAILED"
        print(
            f"parallel exactness (bit-identical states, equal ops) at "
            f"workers {args.workers}: {status}"
        )
    if args.batch:
        status = "ok" if summary["all_batch_exact"] else "FAILED"
        print(
            f"batch exactness (bit-identical payload stream, equal ops) "
            f"at widths {args.batch}: {status}"
        )
        for record in payload["results"]:
            sections = ", ".join(
                f"b{s['batch']} {s['speedup_vs_serial']:.2f}x"
                for s in record.get("batch", ())
            )
            print(f"batch {record['benchmark']}: {sections}")
        print(
            f"geomean best-batch speedup vs serial compiled: "
            f"{summary['geomean_batch_speedup']:.2f}x"
        )
        micro = payload["microbench"]
        print(
            f"dense microbench ({micro['num_qubits']}q x{micro['width']}): "
            f"batched/serial throughput ratio {micro['ratio']:.2f}"
        )
    if args.hybrid:
        status = "ok" if summary["all_hybrid_exact"] else "FAILED"
        print(
            "hybrid exactness (bit-identical payloads, equal nominal "
            f"ops) at fragment widths 0/64: {status}"
        )
        for record in payload["results"]:
            sections = ", ".join(
                f"{'b' + str(s['batch']) if s['batch'] else 'dfs'} "
                f"{s['speedup_vs_serial']:.2f}x"
                f"{'' if s['active'] else ' (inactive)'}"
                for s in record.get("hybrid", ())
            )
            print(f"hybrid {record['benchmark']}: {sections}")
        print(
            f"geomean best-hybrid speedup vs serial compiled: "
            f"{summary['geomean_hybrid_speedup']:.2f}x"
        )
        micro = payload["hybrid_microbench"]
        print(
            f"hybrid microbench ({micro['num_qubits']}q "
            f"x{micro['gates']} Clifford gates): dense/symbolic time "
            f"ratio {micro['ratio']:.1f}"
        )
    if args.auto:
        for record in payload["results"]:
            advice = record["advise"]["advice"]
            picked = (
                f"workers={advice['workers']} depth={advice['depth']}"
                if advice["workers"]
                else "serial"
            )
            advised = record.get("advised")
            timing = (
                f", measured {advised['best_s']:.3f}s "
                f"({advised['speedup_vs_serial']:.2f}x vs serial)"
                if advised
                else ""
            )
            print(f"advise {record['benchmark']}: {picked}{timing}")
        if summary["all_advised_exact"] is False:
            print("advised schedule exactness: FAILED")
    trace_failures = []
    if args.trace:
        trace_failures = [
            record["benchmark"]
            for record in payload["results"]
            if not record["profile"]["crosscheck_ok"]
        ]
        status = "ok" if not trace_failures else (
            f"FAILED ({', '.join(trace_failures)})"
        )
        print(f"trace profiles attached, replay cross-check: {status}")
    if args.json:
        write_bench_json(payload, args.json)
        print(f"wrote {args.json}")
    comparison_ok = True
    if args.compare:
        from .perf import compare_bench

        try:
            with open(args.compare) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        comparison = compare_bench(
            payload,
            baseline,
            tolerance=args.compare_tolerance,
            min_seconds=args.compare_noise_floor,
        )
        rows = [
            {
                "benchmark": row["benchmark"],
                "section": row["section"],
                "baseline": f"{row['baseline_speedup']:.2f}x",
                "current": f"{row['current_speedup']:.2f}x",
                "ratio": f"{row['ratio']:.2f}",
                "status": (
                    "REGRESSED"
                    if row["regressed"]
                    else "noise-floor"
                    if row["below_noise_floor"]
                    else "ok"
                ),
            }
            for row in comparison["rows"]
        ]
        if rows:
            print(
                rows_to_table(
                    rows,
                    title=(
                        f"regression gate vs {args.compare} "
                        f"(tolerance {args.compare_tolerance:.0%}, noise "
                        f"floor {args.compare_noise_floor * 1e3:.0f}ms)"
                    ),
                )
            )
        else:
            print(
                f"regression gate vs {args.compare}: no common "
                "benchmark sections to compare"
            )
        for note in comparison["config_mismatches"]:
            print(f"config mismatch: {note}")
        for note in comparison["sections_skipped"]:
            print(f"skipped: {note}")
        comparison_ok = comparison["ok"]
        if comparison_ok:
            print("regression gate: ok")
        else:
            print(
                "regression gate: FAILED "
                f"({', '.join(comparison['regressions'])})",
                file=sys.stderr,
            )
    if not args.no_check and not summary["all_equivalent"]:
        return 1
    if args.workers and not summary["all_parallel_exact"]:
        return 1
    if args.batch and not summary["all_batch_exact"]:
        return 1
    if args.hybrid and not summary["all_hybrid_exact"]:
        return 1
    if args.auto and summary["all_advised_exact"] is False:
        return 1
    if trace_failures:
        return 1
    if not comparison_ok:
        return 1
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .bench.suite import resolve_benchmark
    from .obs import format_run_metrics

    circuit, model = resolve_benchmark(args.benchmark)
    simulator = NoisySimulator(circuit, model, seed=args.seed)

    certificate = None
    recorder = None
    auto_trials = None
    settings = {
        "workers": args.workers,
        "partition_depth": args.partition_depth,
        "max_cache_bytes": args.max_cache_bytes,
        "cache_degrade": args.cache_degrade,
        "task_weights": None,
        "hybrid": args.hybrid,
    }
    if args.hybrid:
        if args.mode != "optimized":
            print(
                "error: --hybrid requires --mode optimized (the fast "
                "path rewrites the optimized plan's trie spans)",
                file=sys.stderr,
            )
            return 2
        if args.journal is not None:
            print(
                "error: --hybrid and --journal are mutually exclusive "
                "(symbolic spans produce no journalable finish stream)",
                file=sys.stderr,
            )
            return 2
        if args.max_cache_bytes is not None:
            print(
                "error: --hybrid and --max-cache-bytes are mutually "
                "exclusive (symbolic snapshots are O(n) Pauli frames, "
                "not budgetable statevectors)",
                file=sys.stderr,
            )
            return 2
    if args.batch:
        if args.mode != "optimized":
            print(
                "error: --batch requires --mode optimized (the baseline "
                "has no plan to batch over)",
                file=sys.stderr,
            )
            return 2
        if args.journal is not None:
            print(
                "error: --batch and --journal are mutually exclusive "
                "(journaled resume replays the serial schedule)",
                file=sys.stderr,
            )
            return 2
        if args.auto:
            print(
                "error: --batch and --auto are mutually exclusive (the "
                "certificate's memory timeline describes the serial "
                "schedule; see `repro advise` for the certified batch "
                "advisory)",
                file=sys.stderr,
            )
            return 2
    if args.auto:
        if args.mode != "optimized":
            print(
                "error: --auto requires --mode optimized (the certificate "
                "describes the optimized plan)",
                file=sys.stderr,
            )
            return 2
        if args.journal is not None:
            print(
                "error: --auto and --journal are mutually exclusive (a "
                "resumed run no longer matches the certificate)",
                file=sys.stderr,
            )
            return 2
        from .lint import build_certificate
        from .obs import InMemoryRecorder

        budget = None
        if args.max_cache_bytes is not None:
            from .core.cache import CacheBudget

            budget = CacheBudget(
                max_bytes=args.max_cache_bytes, mode=args.cache_degrade
            )
        auto_trials = simulator.sample(args.trials)
        certificate = build_certificate(
            simulator.layered,
            auto_trials,
            benchmark=args.benchmark,
            seed=args.seed,
            budget=budget,
            compiled=simulator.compiled_circuit(),
        )
        settings = _advised_settings(certificate)
        recorder = InMemoryRecorder()

    start = time.perf_counter()
    result = simulator.run(
        num_trials=args.trials,
        trials=auto_trials,
        mode=args.mode,
        workers=settings["workers"],
        partition_depth=settings["partition_depth"],
        journal=args.journal,
        max_cache_bytes=settings["max_cache_bytes"],
        cache_degrade=settings["cache_degrade"],
        task_timeout=args.task_timeout,
        retries=args.retries,
        task_weights=settings["task_weights"],
        recorder=recorder,
        batch_size=args.batch,
        hybrid=settings["hybrid"],
    )
    elapsed = time.perf_counter() - start
    metrics = result.metrics
    if args.json:
        payload = {
            "benchmark": args.benchmark,
            "mode": args.mode,
            "seed": args.seed,
            "workers": settings["workers"],
            "batch": args.batch,
            "hybrid": settings["hybrid"],
            "metrics": metrics.as_dict(),
            "counts": result.counts,
            "wall_s": elapsed,
        }
        if args.auto:
            payload["advice"] = certificate["advice"]
        if result.journal is not None:
            payload["journal"] = {
                "path": result.journal.path,
                "resumed": result.journal.resumed,
                "replayed_trials": result.journal.replayed_trials,
                "recorded_finishes": result.journal.recorded_finishes,
                "truncated_tail": result.journal.truncated_tail,
            }
        atomic_write_json(args.json, payload, indent=2, sort_keys=True)
    print(f"benchmark         : {args.benchmark}")
    print(f"mode              : {args.mode}")
    if args.auto:
        advice = certificate["advice"]
        chosen = (
            f"workers {advice['workers']}, depth {advice['depth']}"
            if advice["workers"]
            else "serial"
        )
        if advice.get("hybrid"):
            chosen += ", hybrid fast path"
        print(
            f"auto-tuned        : {chosen} (certified makespan "
            f"{advice['makespan_flops'] / 1e6:.2f} Mflop, "
            f"memory {advice['memory_states']} states)"
        )
    if settings["workers"]:
        print(
            f"workers           : {settings['workers']} "
            f"(partition depth {settings['partition_depth']})"
        )
    if args.batch:
        print(
            f"batch             : wavefront execution, up to {args.batch} "
            "trial column(s) per kernel call (bit-identical to serial)"
        )
    if settings["hybrid"]:
        print(
            "hybrid            : Clifford spans run as Pauli-frame "
            "deltas over shared anchors (bit-identical to serial dense)"
        )
    if result.journal is not None:
        summary = result.journal
        state = (
            f"resumed, {summary.replayed_trials} trial(s) replayed "
            "with zero recompute"
            if summary.resumed
            else "fresh"
        )
        print(
            f"journal           : {summary.path} ({state}; "
            f"{summary.recorded_finishes} finish(es) recorded)"
        )
        if summary.truncated_tail:
            print(
                "journal           : torn tail discarded (crash mid-record)"
            )
    if settings["max_cache_bytes"] is not None:
        print(
            f"cache budget      : {settings['max_cache_bytes']} bytes "
            f"({settings['cache_degrade']} on overflow; nominal peak MSV "
            "reported below is unchanged by design)"
        )
    print(format_run_metrics(metrics, wall_s=elapsed))
    top = sorted(result.counts.items(), key=lambda kv: -kv[1])[:8]
    print("top outcomes      :")
    for bits, count in top:
        print(f"  {bits}  {count:6d}  ({count / metrics.num_trials:.3f})")
    if args.json:
        print(f"\nwrote {args.json}")

    if args.auto:
        # Close the loop: the run just taken must match its certificate.
        from .lint import lint_certificate_trace, lint_memory_timeline

        exact = (
            settings["workers"] == 0
            and settings["max_cache_bytes"] is None
        )
        r20 = lint_certificate_trace(certificate, recorder)
        r21 = lint_memory_timeline(certificate, recorder, exact=exact)
        problems = [d.render() for d in r20.errors + r21.errors]
        if problems:
            print("certificate cross-check : FAILED", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(
            "certificate cross-check : ok (P020 op counts exact, "
            "P021 memory timeline sound)"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one benchmark with recording on; emit trace file + profile."""
    from .bench.suite import resolve_benchmark
    from .core.schedule import build_plan
    from .lint import lint_trace
    from .obs import (
        InMemoryRecorder,
        format_trace_summary,
        summarize,
        verify_trace,
        write_chrome_trace,
    )

    if args.batch:
        if args.workers:
            print(
                "error: --batch and --workers are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        if args.mode != "optimized" or args.backend != "statevector":
            print(
                "error: --batch requires --mode optimized and "
                "--backend statevector",
                file=sys.stderr,
            )
            return 2

    circuit, model = resolve_benchmark(args.benchmark)
    simulator = NoisySimulator(circuit, model, seed=args.seed)
    trials = simulator.sample(args.trials)
    recorder = InMemoryRecorder()
    result = simulator.run(
        trials=trials,
        mode=args.mode,
        backend=args.backend,
        recorder=recorder,
        workers=args.workers,
        partition_depth=args.partition_depth,
        batch_size=args.batch,
    )

    out = args.out or f"{args.benchmark}.trace.json"
    write_chrome_trace(
        recorder,
        out,
        metadata={
            "benchmark": args.benchmark,
            "mode": args.mode,
            "backend": args.backend,
            "seed": args.seed,
            "num_trials": args.trials,
            "workers": args.workers,
            "batch": args.batch,
        },
    )

    print(f"benchmark         : {args.benchmark}")
    print(f"backend           : {args.backend}")
    if args.workers:
        print(
            f"workers           : {args.workers} "
            f"(partition depth {args.partition_depth})"
        )
    summary = summarize(recorder)
    print(format_trace_summary(summary, top=args.top))
    print(f"\nwrote {out} ({len(recorder.events)} events)")

    problems = []
    if args.workers:
        # A merged trace interleaves one prefix replay and N worker
        # tracks, so the serial replay checks don't apply.  Instead
        # prove the partition itself sound (P018), then re-derive it
        # and hold every track to its own plan (per-worker P017).
        from .core.parallel import partition_plan
        from .lint import lint_partition, lint_partition_trace

        partition = partition_plan(
            simulator.layered, trials, depth=args.partition_depth
        )
        audit = lint_partition(
            partition, trials=trials, layered=simulator.layered
        )
        problems.extend(str(diagnostic) for diagnostic in audit.errors)
        trace_audit = lint_partition_trace(
            partition, partition.assign(args.workers), recorder
        )
        problems.extend(str(diagnostic) for diagnostic in trace_audit.errors)
        recorded_ops = recorder.counters.get("ops.applied", 0)
        if recorded_ops != result.metrics.optimized_ops:
            problems.append(
                f"merged ops.applied counter {recorded_ops} != "
                f"RunMetrics.optimized_ops {result.metrics.optimized_ops}"
            )
        if not problems:
            print(
                "trace cross-check : ok (partition exactly covers the "
                "trials; every worker track matches its sub-plans; "
                "merged counters equal RunMetrics)"
            )
    elif args.batch:
        # Wavefront traces carry fork instants instead of cache
        # store/hit events, so P017 doesn't apply; instead prove the
        # batched spans against the serial plan's cost analysis (P020:
        # each span's ``batch`` arg restores the serial segment count).
        from .lint import analyze_plan, lint_certificate_trace

        problems = verify_trace(recorder, metrics=result.metrics)
        plan = build_plan(simulator.layered, trials)
        analysis = analyze_plan(
            plan, simulator.layered, compiled=simulator.compiled_circuit()
        )
        certificate = {"plan": analysis.to_dict(), "num_trials": len(trials)}
        audit = lint_certificate_trace(certificate, recorder)
        problems.extend(str(diagnostic) for diagnostic in audit.errors)
        if not problems:
            print(
                "trace cross-check : ok (replayed counters equal "
                "RunMetrics; batched spans match the serial plan's "
                "certified segment counts)"
            )
    else:
        problems = verify_trace(recorder, metrics=result.metrics)
        if args.mode == "optimized":
            plan = build_plan(simulator.layered, trials)
            audit = lint_trace(plan, recorder)
            problems.extend(str(diagnostic) for diagnostic in audit.errors)
        if not problems:
            print(
                "trace cross-check : ok (replayed counters equal "
                "RunMetrics; cache events match the plan)"
            )
    if problems:
        print("trace cross-check : FAILED", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Roofline profiler: attribute wall time to certified flops/bytes."""
    from .bench.suite import resolve_benchmark
    from .core.schedule import build_plan
    from .lint import analyze_plan, lint_certificate_trace, lint_metrics_trace
    from .obs import (
        InMemoryRecorder,
        build_profile_report,
        fold_spans,
        format_profile_report,
        measure_peaks,
        registry_from_recorder,
        write_flamegraph,
        write_openmetrics,
    )

    circuit, model = resolve_benchmark(args.benchmark)
    simulator = NoisySimulator(circuit, model, seed=args.seed)
    trials = simulator.sample(args.trials)
    compiled = simulator.compiled_circuit()
    plan = build_plan(simulator.layered, trials)
    analysis = analyze_plan(plan, simulator.layered, compiled=compiled)
    certificate = {
        "plan": analysis.to_dict(),
        "num_trials": len(trials),
    }

    recorder = InMemoryRecorder()
    simulator.run(
        trials=trials,
        mode="optimized",
        backend="statevector",
        recorder=recorder,
        batch_size=args.batch,
    )

    failures = []

    # P020 parity: the roofline numerators below are exactly the
    # certificate's per-segment flop counts, so prove the certificate
    # against the recorded spans first — an unproven numerator is noise.
    parity = lint_certificate_trace(certificate, recorder)
    parity_problems = [str(diagnostic) for diagnostic in parity.diagnostics]
    if parity_problems:
        failures.append(
            "certificate/trace parity (P020) failed: "
            + "; ".join(parity_problems)
        )

    profile = fold_spans(recorder)
    if abs(profile.coverage - 1.0) > 0.05:
        failures.append(
            f"attributed exclusive time covers {profile.coverage:.1%} of "
            "the run span (must be within 5%)"
        )

    peaks = measure_peaks(repeats=args.calibration_repeats)
    report = build_profile_report(
        recorder,
        certificate["plan"]["segments"],
        compiled,
        simulator.layered.num_qubits,
        peaks=peaks,
        top=args.top,
        meta={
            "benchmark": args.benchmark,
            "mode": "optimized",
            "seed": args.seed,
            "num_trials": args.trials,
            "batch": args.batch,
        },
    )
    report["parity"] = {"ok": not parity_problems, "problems": parity_problems}

    # Metrics bridge + P025: the OpenMetrics snapshot must be provably
    # the same data as the trace it was bridged from.
    registry = registry_from_recorder(recorder)
    metrics_audit = lint_metrics_trace(registry, recorder)
    metrics_problems = [
        str(diagnostic) for diagnostic in metrics_audit.diagnostics
    ]
    if metrics_problems:
        failures.append(
            "metrics/trace consistency (P025) failed: "
            + "; ".join(metrics_problems)
        )
    metrics_path = args.metrics or f"{args.benchmark}.metrics.txt"
    write_openmetrics(registry, metrics_path)
    report["metrics"] = {
        "path": metrics_path,
        "p025_ok": not metrics_problems,
        "problems": metrics_problems,
    }

    flamegraph_path = args.flamegraph or f"{args.benchmark}.folded"
    write_flamegraph(profile, flamegraph_path)

    print(
        f"benchmark         : {args.benchmark} "
        f"({args.trials} trials, "
        f"{'batch ' + str(args.batch) if args.batch else 'serial'})"
    )
    print(format_profile_report(report, top=args.top))
    print(f"\nwrote {flamegraph_path} ({len(profile.stacks)} stacks)")
    print(f"wrote {metrics_path}")
    print(
        "certificate parity (P020): "
        + ("ok" if not parity_problems else "FAILED")
    )
    print(
        "metrics consistency (P025): "
        + ("ok" if not metrics_problems else "FAILED")
    )
    if args.json:
        atomic_write_json(args.json, report, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if failures:
        print("profile cross-check : FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis: plan sanitizer + circuit/QASM/noise lint rules."""
    from .lint import LintConfig, all_rules, get_rule, lint_qasm_file, lint_suite

    if args.list_rules:
        for rule in all_rules():
            print(
                f"{rule.code}  {rule.severity.label:<7}  "
                f"{rule.name:<26}  {rule.description}"
            )
        return 0

    if args.explain:
        code = args.explain.upper()
        try:
            rule = get_rule(code)
        except KeyError:
            from .lint import registered_codes

            print(
                f"error: unknown diagnostic code {code!r}; known: "
                f"{', '.join(registered_codes())}",
                file=sys.stderr,
            )
            return 2
        print(f"{rule.code} ({rule.name}) — {rule.severity.label}, "
              f"scope: {rule.scope}")
        print(f"\n{rule.description}\n")
        print(rule.explanation)
        return 0

    config = LintConfig(
        disabled=frozenset(args.disable or ()),
        warnings_as_errors=args.werror,
    )
    if args.journal:
        from .core.resilience import JournalError, load_journal
        from .lint import lint_journal

        try:
            replay = load_journal(args.journal)
        except (JournalError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        layered = lint_trials = None
        if args.benchmarks:
            # Re-derive the exact run context so the fingerprint and the
            # finish-order prefix can be proven, not just the structure.
            from .bench.suite import resolve_benchmark

            if len(args.benchmarks) != 1:
                print(
                    "error: --journal takes exactly one --benchmarks name",
                    file=sys.stderr,
                )
                return 2
            circuit, model = resolve_benchmark(args.benchmarks[0])
            simulator = NoisySimulator(circuit, model, seed=args.seed)
            layered = simulator.layered
            lint_trials = simulator.sample(args.trials)
        results = {
            args.journal: lint_journal(
                replay, layered=layered, trials=lint_trials, config=config
            )
        }
    elif args.paths:
        results = {
            path: lint_qasm_file(path, config=config) for path in args.paths
        }
    else:
        try:
            results = lint_suite(
                benchmarks=args.benchmarks,
                num_trials=args.trials,
                seed=args.seed,
                config=config,
                runtime_crosscheck=not args.no_crosscheck,
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    num_errors = sum(len(result.errors) for result in results.values())
    # Rule checkers that crashed are analyzer bugs, not clean audits: the
    # exit status must not report success just because no diagnostic
    # fired.  (Previously the JSON path swallowed them entirely.)
    num_internal = sum(
        len(result.internal_errors) for result in results.values()
    )
    if args.format == "json":
        payload = {name: result.to_dict() for name, result in results.items()}
        print(json.dumps(payload, indent=2, sort_keys=True))
        if num_internal:
            for name, result in results.items():
                for failure in result.internal_errors:
                    print(
                        f"internal error: {name}: {failure}", file=sys.stderr
                    )
            return 2
        return 1 if num_errors else 0

    for name, result in results.items():
        for failure in result.internal_errors:
            print(f"{name}: INTERNAL ERROR {failure}", file=sys.stderr)
        if result.diagnostics:
            print(f"{name}: {result.summary()}")
            for diagnostic in result:
                print(f"  {diagnostic.render()}")
        else:
            detail = ""
            if "peak_msv" in result.info:
                detail = (
                    f" ({result.info['num_instructions']} plan "
                    f"instructions, static peak MSV "
                    f"{result.info['peak_msv']})"
                )
            elif "completed_trials" in result.info:
                torn = (
                    ", torn tail discarded"
                    if result.info.get("truncated")
                    else ""
                )
                detail = (
                    f" ({result.info['records']} record(s), "
                    f"{result.info['completed_trials']} trial(s) "
                    f"committed{torn})"
                )
            print(f"{name}: ok{detail}")
    num_warnings = sum(len(result.warnings) for result in results.values())
    internal_note = (
        f", {num_internal} internal error(s)" if num_internal else ""
    )
    print(
        f"\nchecked {len(results)} target(s): {num_errors} error(s), "
        f"{num_warnings} warning(s){internal_note}"
    )
    if num_internal:
        return 2
    return 1 if num_errors else 0


def _advise_certificate(args: argparse.Namespace):
    """Build the resource certificate ``repro advise``/``--auto`` share.

    Returns ``(certificate, layered, trials, compiled, budget)`` for the
    benchmark named by ``args`` — sampled with the same seeded RNG a
    :class:`NoisySimulator` run would use, so the certificate describes
    exactly the run that ``--auto`` will launch.
    """
    import numpy as np

    from .bench.suite import resolve_benchmark
    from .circuits import layerize
    from .lint import build_certificate
    from .noise.sampling import sample_trials
    from .sim.compiled import CompiledCircuit

    circuit, model = resolve_benchmark(args.benchmark)
    layered = layerize(circuit)
    trials = sample_trials(
        layered, model, args.trials, np.random.default_rng(args.seed)
    )
    budget = None
    if getattr(args, "max_cache_bytes", None) is not None:
        from .core.cache import CacheBudget

        budget = CacheBudget(
            max_bytes=args.max_cache_bytes, mode=args.cache_degrade
        )
    compiled = CompiledCircuit(layered)
    certificate = build_certificate(
        layered,
        trials,
        benchmark=args.benchmark,
        seed=args.seed,
        depths=getattr(args, "depths", None) or (1, 2),
        workers=getattr(args, "candidate_workers", None) or (1, 2, 4),
        budget=budget,
        compiled=compiled,
        batches=getattr(args, "candidate_batches", None) or (1, 8, 16, 32, 64),
    )
    return certificate, layered, trials, compiled, budget


def _advised_settings(certificate) -> dict:
    """Translate a certificate's ``advice`` into ``NoisySimulator.run``
    keyword arguments plus the matching certificate task weights."""
    advice = certificate["advice"]
    settings = {
        "workers": advice["workers"],
        "partition_depth": advice["depth"] or 1,
        "max_cache_bytes": advice["max_cache_bytes"],
        "cache_degrade": advice["cache_degrade"] or "spill",
        "task_weights": None,
        "hybrid": bool(advice.get("hybrid")),
    }
    if advice["workers"]:
        for schedule in certificate["schedules"]:
            if schedule["depth"] == advice["depth"]:
                settings["task_weights"] = list(schedule["task_flops"])
                break
    return settings


def _cmd_advise(args: argparse.Namespace) -> int:
    """Static auto-tuner: rank (depth, workers, budget) candidates."""
    from .lint import (
        lint_certificate_schedule,
        validate_certificate,
        write_certificate,
    )

    try:
        certificate, layered, trials, _, budget = _advise_certificate(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    problems = validate_certificate(certificate)
    schedule_audit = lint_certificate_schedule(certificate)

    print(f"benchmark         : {args.benchmark}")
    print(
        f"plan              : {certificate['plan']['ops']} ops, "
        f"{certificate['plan']['flops']} flops, "
        f"peak MSV {certificate['plan']['memory']['peak_msv']} "
        f"({certificate['num_trials']} trials)"
    )
    if budget is not None:
        predicted = certificate["budget"]["predicted"]
        print(
            f"cache budget      : {budget.max_bytes} bytes ({budget.mode}); "
            f"predicted {predicted['spills']} spill(s), "
            f"{predicted['drops']} drop(s), "
            f"{predicted['recompute_ops']} recompute op(s)"
        )
    rows = [
        {
            "depth": c["depth"] or "-",
            "workers": c["workers"] or "serial",
            "batch": c.get("batch") or "-",
            "hybrid": "yes" if c.get("hybrid") else "-",
            "Mflop makespan": c["makespan_flops"] / 1e6,
            "mem states": c["memory_states"],
            "budget": "yes" if c["budget"] else "-",
            "score": c["score"],
        }
        for c in certificate["candidates"][: args.top]
    ]
    print(
        rows_to_table(
            rows,
            title="certified candidates (score = makespan x memory, "
            "lower is better)",
        )
    )
    advice = certificate["advice"]
    suggestion = [f"repro run {args.benchmark}", f"--trials {args.trials}"]
    if advice["workers"]:
        suggestion += [
            f"--workers {advice['workers']}",
            f"--partition-depth {advice['depth']}",
        ]
    if advice["max_cache_bytes"] is not None:
        suggestion += [
            f"--max-cache-bytes {advice['max_cache_bytes']}",
            f"--cache-degrade {advice['cache_degrade']}",
        ]
    if advice.get("batch_size") and not advice["workers"]:
        suggestion.append(f"--batch {advice['batch_size']}")
    if advice.get("hybrid"):
        suggestion.append("--hybrid")
    hybrid_section = certificate.get("hybrid")
    if hybrid_section is not None:
        memory = hybrid_section["memory"]
        stats = hybrid_section["stats"]
        print(
            f"hybrid            : "
            f"{'active' if hybrid_section['active'] else 'inactive'} "
            f"({stats['symbolic_gates']}/{stats['planned_ops']} gates "
            f"symbolic, {hybrid_section['modeled_speedup']:.2f}x flop "
            f"model); snapshot cache {memory['cache_resident_bytes']} B "
            f"vs dense {memory['dense_cache_resident_bytes']} B"
        )
    best_wave = max(
        certificate["wavefront"],
        key=lambda e: e["modeled_speedup"],
        default=None,
    )
    if best_wave is not None:
        print(
            f"wavefront         : best modeled width "
            f"{best_wave['batch']} ({best_wave['modeled_speedup']:.2f}x "
            f"fewer-dispatch model, {best_wave['memory_states']} states "
            "working set; ops conserved exactly)"
        )
    print(f"\nadvice            : {' '.join(suggestion)}")
    print("                    (or: repro run "
          f"{args.benchmark} --trials {args.trials} --auto)")

    status = "ok" if schedule_audit.ok and not problems else "FAILED"
    print(f"certificate check : {status} (schema + P022)")
    for problem in problems:
        print(f"  {problem}", file=sys.stderr)
    for diagnostic in schedule_audit.errors:
        print(f"  {diagnostic.render()}", file=sys.stderr)

    if args.json:
        write_certificate(args.json, certificate)
        print(f"\nwrote {args.json}")
    return 0 if status == "ok" else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, run_server

    config = ServeConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        exec_threads=args.exec_threads,
        shared_budget_bytes=(
            None if args.shared_budget_mb == 0
            else args.shared_budget_mb * 1024 * 1024
        ),
        shared_mode=args.shared_mode,
        install_signal_handlers=True,
    )
    print(f"serving from {config.state_dir} on {config.host} "
          f"(endpoint.json appears once bound; SIGTERM stops resumably)")
    run_server(config)
    print("server exited cleanly")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve import ServeClient, ServeError

    spec = {
        "circuit": {"benchmark": args.benchmark},
        "noise": "ibm_yorktown",
        "trials": args.trials,
        "seed": args.seed,
        "workers": args.workers,
        "priority": args.priority,
        "label": args.label or args.benchmark,
    }
    if args.timeout is not None:
        spec["timeout"] = args.timeout
    client = ServeClient.from_state_dir(args.state_dir)
    try:
        if args.stream:
            streamed = [0]

            def tick(_index: int, _bits: str) -> None:
                streamed[0] += 1

            result = client.submit_streaming(spec, on_trial=tick)
            print(f"streamed {streamed[0]} trials")
        else:
            accepted = client.submit_with_backoff(spec)
            print(f"accepted as {accepted['job_id']} "
                  f"(position {accepted['position']})")
            outcome = client.wait(accepted["job_id"])
            if outcome["state"] != "done":
                print(f"job ended {outcome['state']}: "
                      f"{outcome.get('message')}", file=sys.stderr)
                return 1
            result = outcome["result"]
    except ServeError as exc:
        print(f"submit failed ({exc.code}): {exc}", file=sys.stderr)
        return 1
    top = sorted(
        result["counts"].items(), key=lambda item: -item[1]
    )[: args.top]
    print(f"job {result['job_id']}: {result['num_trials']} trials, "
          f"{result['ops_applied']} ops applied, "
          f"{result['ops_shared']} adopted from the shared store")
    for bits, count in top:
        print(f"  {bits}  {count}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from .serve import ServeClient, ServeError

    client = ServeClient.from_state_dir(args.state_dir)
    try:
        jobs = client.list_jobs()
    except (ServeError, OSError) as exc:
        print(f"cannot reach server: {exc}", file=sys.stderr)
        return 1
    if not jobs:
        print("no jobs")
        return 0
    width = max(len(job["job_id"]) for job in jobs)
    for job in jobs:
        print(f"{job['job_id']:<{width}}  {job['state']:<11} "
              f"{job['priority']:<11} trials={job['trials']:<6} "
              f"streamed={job['trials_streamed']:<6} {job['label']}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Reproduction harness for 'Eliminating Redundant Computation in "
            "Noisy Quantum Computing Simulation' (DAC 2020)."
        ),
    )
    parser.add_argument("--seed", type=int, default=2020)
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="Table I benchmark characteristics")
    p1.add_argument("--json", default=None)
    sub.add_parser("device", help="Fig. 4 Yorktown calibration data")

    p5 = sub.add_parser("fig5", help="normalized computation, realistic model")
    p5.add_argument("--benchmarks", nargs="*", default=None)
    p5.add_argument("--json", default=None)
    p6 = sub.add_parser("fig6", help="MSVs, realistic model")
    p6.add_argument("--benchmarks", nargs="*", default=None)
    p6.add_argument("--json", default=None)

    p7 = sub.add_parser("fig7", help="normalized computation, scalability")
    p7.add_argument("--trials", type=int, default=100_000)
    p7.add_argument("--engine", choices=("packed", "object"), default="packed")
    p7.add_argument("--json", default=None)
    p8 = sub.add_parser("fig8", help="MSVs, scalability")
    p8.add_argument("--trials", type=int, default=100_000)
    p8.add_argument("--engine", choices=("packed", "object"), default="packed")
    p8.add_argument("--json", default=None)

    pab = sub.add_parser("ablations", help="design-choice ablation table")
    pab.add_argument("--benchmarks", nargs="*", default=None)
    pab.add_argument("--trials", type=int, default=2048)

    ppred = sub.add_parser(
        "predict", help="analytic saving prediction vs measurement"
    )
    ppred.add_argument("benchmark", choices=benchmark_names())
    ppred.add_argument("--trials", type=int, default=1024)

    pdraw = sub.add_parser("draw", help="ASCII-render a benchmark circuit")
    pdraw.add_argument("benchmark", choices=benchmark_names())
    pdraw.add_argument("--compiled", action="store_true")
    pdraw.add_argument("--width", type=int, default=120)

    plint = sub.add_parser(
        "lint",
        help="static plan sanitizer + circuit/QASM lint",
        description=(
            "With no arguments, audit every Table I benchmark: lint the "
            "compiled circuit and noise model, sample a seeded trial set, "
            "build the execution plan, prove it sound with the symbolic "
            "sanitizer and cross-check the static peak-MSV bound against a "
            "counting-backend run.  With file arguments, lint OpenQASM "
            "programs instead.  Exit status 1 when any error-severity "
            "diagnostic fires."
        ),
    )
    plint.add_argument(
        "paths", nargs="*", help="OpenQASM files (default: benchmark audit)"
    )
    plint.add_argument("--benchmarks", nargs="*", default=None)
    plint.add_argument("--trials", type=int, default=256)
    plint.add_argument("--format", choices=("text", "json"), default="text")
    plint.add_argument(
        "--disable", nargs="*", default=None, metavar="CODE",
        help="diagnostic codes to suppress",
    )
    plint.add_argument(
        "--werror", action="store_true", help="treat warnings as errors"
    )
    plint.add_argument(
        "--no-crosscheck", action="store_true",
        help="skip the runtime peak-MSV cross-check",
    )
    plint.add_argument(
        "--list-rules", action="store_true",
        help="print every registered diagnostic code and exit",
    )
    plint.add_argument(
        "--journal", default=None, metavar="PATH",
        help="audit a run journal (rule P019) instead of the benchmark "
        "suite; pass --benchmarks NAME (with --trials/--seed) to also "
        "prove the fingerprint and finish-order prefix against that run",
    )
    plint.add_argument(
        "--explain", default=None, metavar="CODE",
        help="print the registered rationale for one diagnostic code "
        "(why the rule exists, what a finding means) and exit",
    )

    padvise = sub.add_parser(
        "advise",
        help="static auto-tuner: certified (depth, workers, budget) ranking",
        description=(
            "Build a machine-checkable resource certificate for one "
            "benchmark — per-segment flop/byte costs from the kernel "
            "taxonomy, the full resident-memory timeline (with predicted "
            "spill/drop events under --max-cache-bytes), and LPT makespans "
            "for every candidate partition depth and worker count — then "
            "rank the candidates by certified makespan x memory and print "
            "the recommended settings.  No statevector is ever allocated.  "
            "Feed the pick into a real run with 'repro run <benchmark> "
            "--auto'.  Exit status 1 if the certificate fails its own "
            "consistency proof (P022)."
        ),
    )
    padvise.add_argument("benchmark", choices=all_benchmark_names())
    padvise.add_argument("--trials", type=int, default=1024)
    padvise.add_argument(
        "--depths", nargs="*", type=int, default=None, metavar="D",
        help="candidate partition depths (default: 1 2)",
    )
    padvise.add_argument(
        "--candidate-workers", nargs="*", type=int, default=None,
        metavar="N", help="candidate worker counts (default: 1 2 4)",
    )
    padvise.add_argument(
        "--candidate-batches", nargs="*", type=int, default=None,
        metavar="W",
        help="candidate wavefront batch widths (default: 1 8 16 32 64)",
    )
    padvise.add_argument(
        "--max-cache-bytes", type=int, default=None, metavar="BYTES",
        help="also certify degradation under this snapshot-cache budget",
    )
    padvise.add_argument(
        "--cache-degrade", choices=("spill", "drop"), default="spill",
    )
    padvise.add_argument(
        "--top", type=int, default=8,
        help="how many ranked candidates to print (default: 8)",
    )
    padvise.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full ResourceCertificate JSON (atomic)",
    )

    pbench = sub.add_parser(
        "bench",
        help="perf harness: compiled vs interpreted statevector execution",
        description=(
            "Time the optimized executor over the Table I suite with the "
            "compiled-kernel backend and the interpreted tensordot backend "
            "against the same prebuilt plan, then report wall time, ops/sec "
            "and speedup.  Unless --no-check is passed, also prove exactness "
            "(equal ops_applied, equal peak MSV, allclose final states); "
            "exit status 1 if any benchmark diverges.  --json emits the "
            "BENCH_<nnnn>.json payload committed with each PR."
        ),
    )
    pbench.add_argument("--benchmarks", nargs="*", default=None)
    pbench.add_argument("--trials", type=int, default=1024)
    pbench.add_argument("--repeats", type=int, default=3)
    pbench.add_argument("--warmup", type=int, default=1)
    pbench.add_argument("--json", default=None)
    pbench.add_argument(
        "--no-check", action="store_true",
        help="skip the compiled-vs-interpreted equivalence proof",
    )
    pbench.add_argument(
        "--trace", action="store_true",
        help="attach a recorded-run profile per benchmark (outside the "
        "timed loop) and cross-check it against the run's counters",
    )
    pbench.add_argument(
        "--workers", nargs="*", type=int, default=None, metavar="N",
        help="also time run_parallel at these worker counts and prove "
        "the merged results bit-identical to the serial run",
    )
    pbench.add_argument(
        "--partition-depth", type=int, default=1,
        help="trie cut depth for the parallel partition (default 1)",
    )
    pbench.add_argument(
        "--auto", action="store_true",
        help="attach a ResourceCertificate advice per benchmark and, when "
        "it picks a parallel schedule, time one extra section with the "
        "certificate's task weights driving the scheduler",
    )
    pbench.add_argument(
        "--batch", nargs="*", type=int, default=None, metavar="W",
        help="also time the trial-batched wavefront executor at these "
        "widths and prove its payload stream bit-identical to the serial "
        "compiled run (plus a dense-kernel microbench in the payload)",
    )
    pbench.add_argument(
        "--hybrid", action="store_true",
        help="also time the Clifford/Pauli-frame fast path (per-trial "
        "and with width-64 wavefront fragments) and prove every payload "
        "bit-identical to the serial compiled run (plus a frame-vs-"
        "dense microbench in the payload)",
    )
    pbench.add_argument(
        "--compare", default=None, metavar="BASELINE.json",
        help="regression gate: compare per-section speedups against a "
        "baseline BENCH_<nnnn>.json payload; exit 1 when any section "
        "common to both runs regresses beyond --compare-tolerance",
    )
    pbench.add_argument(
        "--compare-tolerance", type=float, default=0.35, metavar="FRAC",
        help="allowed fractional speedup loss vs the baseline before a "
        "section counts as regressed (default 0.35)",
    )
    pbench.add_argument(
        "--compare-noise-floor", type=float, default=0.005, metavar="SECONDS",
        help="sections whose best time is below this on either side are "
        "reported but never failed — timer jitter, not signal "
        "(default 0.005)",
    )

    prun = sub.add_parser("run", help="run one benchmark end to end")
    prun.add_argument("benchmark", choices=all_benchmark_names())
    prun.add_argument("--trials", type=int, default=1024)
    prun.add_argument(
        "--mode", choices=("optimized", "baseline"), default="optimized"
    )
    prun.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="execute the partitioned plan across N worker processes "
        "(optimized mode only; 0 = serial)",
    )
    prun.add_argument(
        "--partition-depth", type=int, default=1,
        help="trie cut depth for the parallel partition (default 1)",
    )
    prun.add_argument(
        "--batch", type=int, default=0, metavar="W",
        help="trial-batched wavefront execution: vectorize kernels over "
        "up to W trials at once (optimized mode, compiled backend; "
        "results stay bit-identical to serial; 0 = off)",
    )
    prun.add_argument(
        "--hybrid", action="store_true",
        help="Clifford/Pauli-frame fast path: run pure-Clifford trie "
        "spans symbolically over shared dense anchors and materialize "
        "amplitudes only at non-Clifford gates or Finish (optimized "
        "mode, compiled backend; bit-identical to serial dense; "
        "composes with --workers and --batch)",
    )
    prun.add_argument(
        "--json", default=None, metavar="PATH",
        help="also dump metrics and counts as JSON",
    )
    prun.add_argument(
        "--journal", default=None, metavar="PATH",
        help="crash-safe run journal: record finish payloads as they "
        "stream; re-running with the same path after a crash resumes "
        "with zero recomputation of committed trials",
    )
    prun.add_argument(
        "--max-cache-bytes", type=int, default=None, metavar="BYTES",
        help="snapshot-cache byte budget; coldest snapshots degrade per "
        "--cache-degrade when the budget is exceeded (results unchanged)",
    )
    prun.add_argument(
        "--cache-degrade", choices=("spill", "drop"), default="spill",
        help="over-budget policy: spill to disk and reload, or drop and "
        "recompute (default: spill)",
    )
    prun.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task deadline for parallel workers; a hung worker is "
        "killed and its task re-run elsewhere",
    )
    prun.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="parallel task retry budget before the parent runs the "
        "task inline (default: 2)",
    )
    prun.add_argument(
        "--auto", action="store_true",
        help="build a resource certificate first and run with its advised "
        "workers/depth/schedule weights, then cross-check the recorded "
        "run against the certificate (rules P020/P021; exit 1 on "
        "divergence)",
    )

    ptrace = sub.add_parser(
        "trace",
        help="recorded run: Chrome-trace file + profile summary",
        description=(
            "Run one benchmark with the trace recorder attached, write the "
            "events as a chrome://tracing (Perfetto) JSON file, and print a "
            "profile summary: hottest segments, the MSV high-water timeline, "
            "cache hit/evict ratios and the kernel-class histogram.  The "
            "trace is then cross-checked: counters replayed from the events "
            "must equal the run's RunMetrics, and the recorded cache events "
            "must match the static plan's slot schedule (lint rule P017).  "
            "Exit status 1 on any cross-check failure."
        ),
    )
    ptrace.add_argument("benchmark", choices=all_benchmark_names())
    ptrace.add_argument("--trials", type=int, default=1024)
    ptrace.add_argument(
        "--mode", choices=("optimized", "baseline"), default="optimized"
    )
    ptrace.add_argument(
        "--backend",
        choices=("statevector", "statevector-interpreted", "counting"),
        default="statevector",
    )
    ptrace.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="record a partitioned parallel run instead of a serial one; "
        "worker events merge into per-worker trace tracks and the "
        "cross-check validates each track against its sub-plans",
    )
    ptrace.add_argument(
        "--partition-depth", type=int, default=1,
        help="trie cut depth for the parallel partition (default 1)",
    )
    ptrace.add_argument(
        "--batch", type=int, default=0, metavar="W",
        help="record a trial-batched wavefront run (optimized mode, "
        "statevector backend; exclusive with --workers); the profile "
        "surfaces per-kind kernel.batched.* dispatch counters and the "
        "cross-check proves the batched spans against the serial plan "
        "(P020)",
    )
    ptrace.add_argument(
        "--out", default=None, metavar="PATH",
        help="trace file path (default: <benchmark>.trace.json)",
    )
    ptrace.add_argument(
        "--top", type=int, default=10,
        help="how many hottest segments to show",
    )

    pprofile = sub.add_parser(
        "profile",
        help="roofline profiler: attributed wall time vs certified costs",
        description=(
            "Run one benchmark with the trace recorder attached, fold the "
            "span stream into exclusive per-span wall time, and divide "
            "each advance segment's measured seconds into the flops and "
            "bytes its resource certificate certifies — achieved vs peak "
            "GFLOP/s and GB/s, arithmetic intensity, memory- or "
            "compute-bound verdict, and the cache-residency band the "
            "paper's working-set argument predicts.  Also emits a "
            "collapsed-stack flamegraph and an OpenMetrics snapshot, and "
            "proves both views against the trace: certificate parity "
            "(P020), metrics consistency (P025) and 95% attribution "
            "coverage are hard failures (exit 1)."
        ),
    )
    pprofile.add_argument("benchmark", choices=all_benchmark_names())
    pprofile.add_argument("--trials", type=int, default=256)
    pprofile.add_argument("--seed", type=int, default=2020)
    pprofile.add_argument(
        "--batch", type=int, default=0, metavar="W",
        help="profile the trial-batched wavefront executor at width W "
        "instead of the serial compiled path (0 = serial)",
    )
    pprofile.add_argument(
        "--top", type=int, default=12,
        help="how many hotspot rows to show",
    )
    pprofile.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full repro-profile/1 report as JSON",
    )
    pprofile.add_argument(
        "--flamegraph", default=None, metavar="PATH",
        help="collapsed-stack output path (default: <benchmark>.folded)",
    )
    pprofile.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="OpenMetrics snapshot path (default: <benchmark>.metrics.txt)",
    )
    pprofile.add_argument(
        "--calibration-repeats", type=int, default=3, metavar="N",
        help="best-of-N repeats for the peak GFLOP/s and GB/s "
        "microbenchmarks (default 3)",
    )

    pserve = sub.add_parser(
        "serve",
        help="long-lived job server with cross-job prefix sharing",
        description=(
            "Run the crash-safe simulation service: accepts circuit+noise+"
            "trials jobs over a line-delimited JSON socket (plus HTTP GET "
            "/metrics on the same port), admits them through a bounded "
            "two-class queue with 429-style backpressure, journals every "
            "accepted job before execution, and shares prefix states "
            "across jobs bit-identically.  A killed server resumes all "
            "in-flight jobs from their journals on restart."
        ),
    )
    pserve.add_argument("state_dir", help="service state directory")
    pserve.add_argument("--host", default="127.0.0.1")
    pserve.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 = ephemeral, published in endpoint.json)",
    )
    pserve.add_argument(
        "--max-pending", type=int, default=16,
        help="admission bound on queued+running jobs (excess gets 429s)",
    )
    pserve.add_argument(
        "--exec-threads", type=int, default=1,
        help="concurrent job executors (1 maximizes cross-job sharing)",
    )
    pserve.add_argument(
        "--shared-budget-mb", type=int, default=256, metavar="MB",
        help="byte budget for the cross-job prefix store (0 = unbounded)",
    )
    pserve.add_argument(
        "--shared-mode", choices=("spill", "drop"), default="spill",
        help="eviction policy when the shared store exceeds its budget",
    )

    psubmit = sub.add_parser(
        "submit", help="submit one benchmark job to a running server"
    )
    psubmit.add_argument("state_dir", help="server state directory")
    psubmit.add_argument("benchmark", choices=all_benchmark_names())
    psubmit.add_argument("--trials", type=int, default=1024)
    psubmit.add_argument("--workers", type=int, default=0)
    psubmit.add_argument(
        "--priority", choices=("interactive", "batch"), default="interactive"
    )
    psubmit.add_argument("--timeout", type=float, default=None)
    psubmit.add_argument("--label", default=None)
    psubmit.add_argument(
        "--stream", action="store_true",
        help="consume the per-trial result stream instead of polling",
    )
    psubmit.add_argument(
        "--top", type=int, default=8, help="result rows to print"
    )

    pjobs = sub.add_parser(
        "jobs", help="list the jobs a running server knows about"
    )
    pjobs.add_argument("state_dir", help="server state directory")

    args = parser.parse_args(argv)
    handlers = {
        "advise": _cmd_advise,
        "table1": _cmd_table1,
        "device": _cmd_device,
        "fig5": _cmd_fig5,
        "fig6": _cmd_fig6,
        "fig7": _cmd_fig7,
        "fig8": _cmd_fig8,
        "ablations": _cmd_ablations,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
        "predict": _cmd_predict,
        "draw": _cmd_draw,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
