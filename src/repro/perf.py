"""``repro bench``: the wall-clock performance harness.

Measures the statevector execution hot path — compiled kernels vs the
interpreted ``tensordot`` path — over the Table I benchmark suite, with
warmup runs, best-of-N repeats and machine-readable JSON output suitable
for committing as ``BENCH_<nnnn>.json`` so every PR records the perf
trajectory.

Methodology
-----------
For each benchmark the harness builds the Yorktown-compiled circuit,
samples a seeded trial set, builds the execution plan **once**, then times
:func:`~repro.core.executor.run_optimized` with each backend against that
same plan (plan construction and trial sampling are deliberately excluded
— the paper's reordering is shared by both paths; this harness isolates
the per-gate kernel cost).  Reported time is the best of ``repeats``
timed runs after ``warmup`` untimed ones; ops/sec divides the paper's
basic-operation counter by that best time.

With ``check=True`` (the default) the harness also proves exactness on
every benchmark: identical ``ops_applied``, identical ``peak_msv``, and
``allclose`` final states between the two paths, recorded per benchmark
in the JSON payload.

With ``trace=True`` (the ``repro bench --trace`` flag) one additional
*recorded* compiled run is made per benchmark — outside the timed loop,
so timings stay honest — and its :class:`~repro.obs.summary.TraceSummary`
is attached to the record as ``profile`` after being cross-checked
against the timed run's outcome.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .bench.suite import all_benchmark_names, benchmark_names, resolve_benchmark
from .circuits.layers import layerize
from .core.executor import run_optimized
from .core.hostinfo import machine_info, peak_rss_kb
from .core.parallel import run_parallel
from .core.schedule import build_plan
from .noise.sampling import sample_trials
from .sim.backend import StatevectorBackend
from .sim.compiled import CompiledCircuit, CompiledStatevectorBackend

__all__ = [
    "BENCH_SCHEMA",
    "bench_one",
    "bench_rows",
    "compare_bench",
    "dense_microbench",
    "hybrid_microbench",
    "peak_rss_kb",
    "run_bench",
    "write_bench_json",
]

BENCH_SCHEMA = "repro-bench/1"


def _time_run(layered, trials, plan, make_backend, warmup: int, repeats: int):
    """Best-of-``repeats`` wall time of one optimized run; returns outcome."""
    backend = make_backend()
    for _ in range(warmup):
        run_optimized(layered, trials, backend, plan=plan)
    best = float("inf")
    total = 0.0
    outcome = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        outcome = run_optimized(layered, trials, backend, plan=plan)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed
    return outcome, best, total / max(1, repeats)


def _collect_final_states(layered, trials, plan, backend):
    states: List[np.ndarray] = []
    indices: List[tuple] = []

    def on_finish(payload, trial_indices):
        indices.append(tuple(trial_indices))
        states.append(payload.vector.copy())

    outcome = run_optimized(layered, trials, backend, on_finish, plan=plan)
    return outcome, indices, states


# peak_rss_kb / machine_info moved to repro.core.hostinfo so the runner
# and profiler share them; re-exported here for compatibility.


def _bench_parallel(
    layered,
    trials,
    make_backend,
    serial_best: float,
    serial_states: List[np.ndarray],
    serial_ops: int,
    workers: int,
    partition_depth: int,
    repeats: int,
    task_weights: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Time ``run_parallel`` at one worker count and prove it exact.

    The exactness run is separate from the timed runs (collecting every
    final state would distort the timing): the parallel payload stream
    must be bit-identical (``array_equal``, not ``allclose``) to the
    serial compiled run's, with the identical total operation count.
    ``task_weights`` switches the scheduler to certificate-provided
    weights (``repro bench --auto``) — results must stay bit-identical.
    """
    best = float("inf")
    total = 0.0
    outcome = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        outcome = run_parallel(
            layered, trials, make_backend,
            workers=workers, depth=partition_depth,
            task_weights=task_weights,
        )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed

    par_states: List[np.ndarray] = []
    check_outcome = run_parallel(
        layered,
        trials,
        make_backend,
        lambda payload, _indices: par_states.append(payload.vector.copy()),
        workers=workers,
        depth=partition_depth,
        task_weights=task_weights,
    )
    bit_identical = len(par_states) == len(serial_states) and all(
        np.array_equal(a, b) for a, b in zip(serial_states, par_states)
    )
    return {
        "workers": workers,
        "partition_depth": partition_depth,
        "best_s": best,
        "mean_s": total / max(1, repeats),
        "speedup_vs_serial": serial_best / best,
        "num_tasks": outcome.num_tasks,
        "used_fork": outcome.used_fork,
        "shm_bytes": outcome.shm_bytes,
        "exact": {
            "ops_equal": check_outcome.ops_applied == serial_ops,
            "states_bit_identical": bool(bit_identical),
            "ok": bool(
                check_outcome.ops_applied == serial_ops and bit_identical
            ),
        },
        "peak_rss_kb": peak_rss_kb(),
    }


def _bench_batch(
    layered,
    trials,
    plan,
    make_backend,
    serial_best: float,
    serial_indices: List[tuple],
    serial_states: List[np.ndarray],
    serial_ops: int,
    batch: int,
    repeats: int,
) -> Dict[str, object]:
    """Time the trial-batched wavefront executor at one width.

    Exactness is the tentpole contract, proven at full strength: the
    batched payload stream must be **bit-identical** (``array_equal``,
    not ``allclose``) to the serial compiled run's, delivered for the
    same trial groups in the same serial order, with the identical
    operation count (batching is a pure regrouping of the plan).
    """
    from .core.wavefront import run_wavefront

    best = float("inf")
    total = 0.0
    for _ in range(max(1, repeats)):
        backend = make_backend()
        start = time.perf_counter()
        run_wavefront(
            layered, trials, backend, plan=plan, batch_size=batch
        )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed

    batch_indices: List[tuple] = []
    batch_states: List[np.ndarray] = []

    def on_finish(payload, trial_indices):
        batch_indices.append(tuple(trial_indices))
        batch_states.append(payload.vector.copy())

    check_outcome = run_wavefront(
        layered, trials, make_backend(), on_finish,
        plan=plan, batch_size=batch,
    )
    bit_identical = (
        batch_indices == serial_indices
        and len(batch_states) == len(serial_states)
        and all(
            np.array_equal(a, b)
            for a, b in zip(serial_states, batch_states)
        )
    )
    ops_equal = check_outcome.ops_applied == serial_ops
    return {
        "batch": batch,
        "best_s": best,
        "mean_s": total / max(1, repeats),
        "speedup_vs_serial": serial_best / best,
        "ops_applied": check_outcome.ops_applied,
        "exact": {
            "ops_equal": bool(ops_equal),
            "states_bit_identical": bool(bit_identical),
            "ok": bool(ops_equal and bit_identical),
        },
        "peak_rss_kb": peak_rss_kb(),
    }


def _bench_hybrid(
    layered,
    trials,
    plan,
    make_backend,
    serial_best: float,
    serial_indices: List[tuple],
    serial_states: List[np.ndarray],
    serial_ops: int,
    batch: int,
    repeats: int,
) -> Dict[str, object]:
    """Time the Clifford/Pauli-frame fast path at one fragment width.

    ``batch=0`` runs materialized fragments through the per-trial DFS
    executor; ``batch>=1`` hands them to the wavefront executor at that
    width.  Exactness is the tentpole contract at full strength: every
    trial's payload must be **bit-identical** (``array_equal``, not
    ``allclose``) to the serial compiled run's, with the identical
    nominal operation count (the hybrid mirrors the plan's accounting).
    """
    from .core.hybrid import run_hybrid

    best = float("inf")
    total = 0.0
    for _ in range(max(1, repeats)):
        backend = make_backend()
        start = time.perf_counter()
        run_hybrid(layered, trials, backend, plan=plan, batch_size=batch)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed

    by_trial: List[Optional[np.ndarray]] = [None] * len(trials)

    def on_finish(payload, trial_indices):
        vector = payload.vector.copy()
        for index in trial_indices:
            by_trial[index] = vector

    check_outcome = run_hybrid(
        layered, trials, make_backend(), on_finish,
        plan=plan, batch_size=batch,
    )
    serial_by_trial: List[Optional[np.ndarray]] = [None] * len(trials)
    for state, group in zip(serial_states, serial_indices):
        for index in group:
            serial_by_trial[index] = state
    bit_identical = all(
        a is not None
        and b is not None
        and np.array_equal(a, b)
        for a, b in zip(serial_by_trial, by_trial)
    )
    ops_equal = check_outcome.ops_applied == serial_ops
    return {
        "batch": batch,
        "best_s": best,
        "mean_s": total / max(1, repeats),
        "speedup_vs_serial": serial_best / best,
        "ops_applied": check_outcome.ops_applied,
        "active": check_outcome.active,
        "stats": dict(check_outcome.hybrid),
        "exact": {
            "ops_equal": bool(ops_equal),
            "states_bit_identical": bool(bit_identical),
            "ok": bool(ops_equal and bit_identical),
        },
        "peak_rss_kb": peak_rss_kb(),
    }


def dense_microbench(
    num_qubits: int = 12,
    width: int = 16,
    gates: int = 32,
    repeats: int = 3,
) -> Dict[str, object]:
    """Dense-kernel throughput: batched columns vs one-at-a-time.

    Applies ``gates`` alternating 1q/2q dense unitaries to a
    ``num_qubits``-qubit state, serially per column versus one batched
    ``(2,)*n + (width,)`` call, and reports amplitudes processed per
    second for each.  ``ratio`` (batched / serial per-column throughput)
    is the CI regression gate: vectorizing across trials must never make
    the dense kernel slower per column (gate at 0.9 to absorb machine
    noise).
    """
    from .sim.kernels import DenseKernel

    rng = np.random.default_rng(7)

    def unitary(k: int) -> np.ndarray:
        raw = rng.standard_normal((2**k, 2**k)) + 1j * rng.standard_normal(
            (2**k, 2**k)
        )
        q, _ = np.linalg.qr(raw)
        return q

    kernels = []
    for g in range(gates):
        if g % 2:
            qubits = (g % num_qubits, (g + 1) % num_qubits)
            kernels.append(DenseKernel(unitary(2), qubits, num_qubits))
        else:
            kernels.append(DenseKernel(unitary(1), (g % num_qubits,), num_qubits))

    shape = (2,) * num_qubits
    base = rng.standard_normal(shape + (width,)) + 1j * rng.standard_normal(
        shape + (width,)
    )
    base /= np.linalg.norm(base.reshape(-1, width), axis=0)

    serial_best = float("inf")
    for _ in range(max(1, repeats)):
        cols = [np.ascontiguousarray(base[..., w]) for w in range(width)]
        scratch = np.empty(shape, dtype=np.complex128)
        start = time.perf_counter()
        for w in range(width):
            work, spare = cols[w], scratch
            for kernel in kernels:
                work, spare = kernel.apply(work, spare)
            scratch = spare
        serial_best = min(serial_best, time.perf_counter() - start)

    batch_best = float("inf")
    for _ in range(max(1, repeats)):
        work = np.ascontiguousarray(base)
        spare = np.empty_like(work)
        start = time.perf_counter()
        for kernel in kernels:
            work, spare = kernel.apply_batch(work, spare)
        batch_best = min(batch_best, time.perf_counter() - start)

    amplitudes = float((2**num_qubits) * width * gates)
    serial_rate = amplitudes / serial_best
    batch_rate = amplitudes / batch_best
    return {
        "num_qubits": num_qubits,
        "width": width,
        "gates": gates,
        "serial_amps_per_s": serial_rate,
        "batched_amps_per_s": batch_rate,
        "ratio": batch_rate / serial_rate,
    }


def hybrid_microbench(
    num_qubits: int = 12,
    gates: int = 64,
    repeats: int = 3,
) -> Dict[str, object]:
    """Pauli-frame symbolic span cost vs the dense kernel equivalent.

    Conjugates a Pauli frame through ``gates`` Clifford unitaries (the
    hybrid's symbolic span) plus one final materialization
    (``apply_to_tensor``), versus applying the same unitaries densely to
    a ``num_qubits``-qubit state.  ``ratio`` (dense time / symbolic+
    materialize time) is the CI regression gate: the symbolic path must
    stay decisively cheaper than re-executing the span densely, or the
    hybrid's whole premise is void (gated well below the measured value
    to absorb machine noise).
    """
    from .sim.kernels import DenseKernel
    from .sim.stabilizer import PauliFrame
    from .sim.statevector import Statevector

    inv_sqrt2 = 1.0 / np.sqrt(2.0)
    h_matrix = np.array(
        [[inv_sqrt2, inv_sqrt2], [inv_sqrt2, -inv_sqrt2]],
        dtype=np.complex128,
    )
    s_matrix = np.array([[1.0, 0.0], [0.0, 1.0j]], dtype=np.complex128)
    cx_matrix = np.array(
        [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 1, 0],
        ],
        dtype=np.complex128,
    )
    program: List[tuple] = []
    for g in range(gates):
        kind = g % 3
        if kind == 0:
            program.append((h_matrix, (g % num_qubits,)))
        elif kind == 1:
            program.append((s_matrix, (g % num_qubits,)))
        else:
            program.append(
                (cx_matrix, (g % num_qubits, (g + 1) % num_qubits))
            )

    state = Statevector(num_qubits)
    dense_best = float("inf")
    kernels = [
        DenseKernel(matrix, qubits, num_qubits)
        for matrix, qubits in program
    ]
    for _ in range(max(1, repeats)):
        work = state.tensor.copy()
        spare = np.empty_like(work)
        start = time.perf_counter()
        for kernel in kernels:
            work, spare = kernel.apply(work, spare)
        dense_best = min(dense_best, time.perf_counter() - start)

    symbolic_best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        frame = PauliFrame(num_qubits)
        frame.inject("x", 0)
        for matrix, qubits in program:
            if not frame.try_conjugate_matrix(matrix, qubits):
                raise AssertionError(
                    "hybrid_microbench program must be Clifford"
                )
        frame.apply_to_tensor(state.tensor)
        symbolic_best = min(symbolic_best, time.perf_counter() - start)

    return {
        "num_qubits": num_qubits,
        "gates": gates,
        "dense_s": dense_best,
        "symbolic_s": symbolic_best,
        "ratio": dense_best / symbolic_best if symbolic_best else 0.0,
    }


def bench_one(
    name: str,
    num_trials: int = 1024,
    repeats: int = 3,
    warmup: int = 1,
    seed: int = 2020,
    check: bool = True,
    trace: bool = False,
    workers: Sequence[int] = (),
    partition_depth: int = 1,
    auto: bool = False,
    batches: Sequence[int] = (),
    hybrid: bool = False,
) -> Dict[str, object]:
    """Benchmark one suite circuit; returns one JSON-ready record.

    ``name`` may be a Table I benchmark (Yorktown-compiled, device model)
    or a large-suite benchmark (logical circuit, artificial model — see
    :data:`repro.bench.suite.LARGE_BENCHMARKS`).  Each entry in
    ``workers`` adds a timed :func:`~repro.core.parallel.run_parallel`
    section plus a bit-exactness proof against the serial compiled run.

    With ``auto=True`` a :func:`~repro.lint.costmodel.build_certificate`
    pass ranks (depth, workers) candidates statically; the winning
    advice is attached as ``advise`` and, when it picks a parallel
    schedule, one extra timed section runs with the certificate's
    ``task_flops`` as scheduler weights (``advised`` in the record).
    """
    circuit, model = resolve_benchmark(name)
    layered = layerize(circuit)
    trials = sample_trials(
        layered, model, num_trials, np.random.default_rng(seed)
    )
    plan = build_plan(layered, trials)
    compiled = CompiledCircuit(layered)

    interp_outcome, interp_best, interp_mean = _time_run(
        layered, trials, plan, lambda: StatevectorBackend(layered),
        warmup, repeats,
    )
    comp_outcome, comp_best, comp_mean = _time_run(
        layered, trials, plan,
        lambda: CompiledStatevectorBackend(layered, compiled=compiled),
        warmup, repeats,
    )

    record: Dict[str, object] = {
        "benchmark": name,
        "num_qubits": layered.num_qubits,
        "num_layers": layered.num_layers,
        "num_gates": layered.num_gates,
        "num_trials": num_trials,
        "ops_applied": comp_outcome.ops_applied,
        "peak_msv": comp_outcome.peak_msv,
        "interpreted": {
            "best_s": interp_best,
            "mean_s": interp_mean,
            "ops_per_s": interp_outcome.ops_applied / interp_best,
            "peak_rss_kb": peak_rss_kb(),
        },
        "compiled": {
            "best_s": comp_best,
            "mean_s": comp_mean,
            "ops_per_s": comp_outcome.ops_applied / comp_best,
            "peak_rss_kb": peak_rss_kb(),
        },
        "speedup": interp_best / comp_best,
        "kernel_stats": compiled.stats(),
    }

    advice: Optional[Dict[str, object]] = None
    if auto:
        from .lint.costmodel import build_certificate

        certificate = build_certificate(
            layered,
            trials,
            benchmark=name,
            seed=seed,
            workers=tuple(workers) if workers else (1, 2, 4),
            compiled=compiled,
        )
        advice = dict(certificate["advice"])
        record["advise"] = {
            "advice": advice,
            "candidates": certificate["candidates"][:5],
        }
        advised_weights = None
        if advice["workers"]:
            advised_weights = next(
                list(s["task_flops"])
                for s in certificate["schedules"]
                if s["depth"] == advice["depth"]
            )

    advised_workers = int(advice["workers"]) if advice else 0
    if workers or advised_workers or batches or hybrid:
        c_check, c_serial_indices, c_serial_states = _collect_final_states(
            layered, trials, plan,
            CompiledStatevectorBackend(layered, compiled=compiled),
        )
        if workers:
            record["parallel"] = [
                _bench_parallel(
                    layered,
                    trials,
                    lambda: CompiledStatevectorBackend(
                        layered, compiled=compiled
                    ),
                    comp_best,
                    c_serial_states,
                    c_check.ops_applied,
                    w,
                    partition_depth,
                    repeats,
                )
                for w in workers
            ]
        if advised_workers:
            record["advised"] = _bench_parallel(
                layered,
                trials,
                lambda: CompiledStatevectorBackend(layered, compiled=compiled),
                comp_best,
                c_serial_states,
                c_check.ops_applied,
                advised_workers,
                int(advice["depth"] or 1),
                repeats,
                task_weights=advised_weights,
            )
        if batches:
            record["batch"] = [
                _bench_batch(
                    layered,
                    trials,
                    plan,
                    lambda: CompiledStatevectorBackend(
                        layered, compiled=compiled
                    ),
                    comp_best,
                    c_serial_indices,
                    c_serial_states,
                    c_check.ops_applied,
                    b,
                    repeats,
                )
                for b in batches
            ]
            best_section = max(
                record["batch"], key=lambda s: s["speedup_vs_serial"]
            )
            record["batch_best"] = {
                "batch": best_section["batch"],
                "speedup_vs_serial": best_section["speedup_vs_serial"],
            }
        if hybrid:
            record["hybrid"] = [
                _bench_hybrid(
                    layered,
                    trials,
                    plan,
                    lambda: CompiledStatevectorBackend(
                        layered, compiled=compiled
                    ),
                    comp_best,
                    c_serial_indices,
                    c_serial_states,
                    c_check.ops_applied,
                    b,
                    repeats,
                )
                for b in (0, 64)
            ]
            best_section = max(
                record["hybrid"], key=lambda s: s["speedup_vs_serial"]
            )
            record["hybrid_best"] = {
                "batch": best_section["batch"],
                "speedup_vs_serial": best_section["speedup_vs_serial"],
            }

    if trace:
        from .obs import InMemoryRecorder, summarize, verify_trace

        recorder = InMemoryRecorder()
        traced_outcome = run_optimized(
            layered,
            trials,
            CompiledStatevectorBackend(layered, compiled=compiled),
            plan=plan,
            recorder=recorder,
        )
        profile = summarize(recorder).as_dict()
        profile["crosscheck_ok"] = not verify_trace(
            recorder, outcome=traced_outcome
        )
        record["profile"] = profile

    if check:
        i_out, i_idx, i_states = _collect_final_states(
            layered, trials, plan, StatevectorBackend(layered)
        )
        c_out, c_idx, c_states = _collect_final_states(
            layered, trials, plan,
            CompiledStatevectorBackend(layered, compiled=compiled),
        )
        states_close = i_idx == c_idx and all(
            np.allclose(a, b, atol=1e-8) for a, b in zip(i_states, c_states)
        )
        record["equivalence"] = {
            "ops_equal": i_out.ops_applied == c_out.ops_applied,
            "peak_msv_equal": i_out.peak_msv == c_out.peak_msv,
            "states_allclose": bool(states_close),
            "ok": bool(
                i_out.ops_applied == c_out.ops_applied
                and i_out.peak_msv == c_out.peak_msv
                and states_close
            ),
        }
    record["peak_rss_kb"] = peak_rss_kb()
    return record


def run_bench(
    benchmarks: Optional[Sequence[str]] = None,
    num_trials: int = 1024,
    repeats: int = 3,
    warmup: int = 1,
    seed: int = 2020,
    check: bool = True,
    trace: bool = False,
    workers: Sequence[int] = (),
    partition_depth: int = 1,
    auto: bool = False,
    batches: Sequence[int] = (),
    hybrid: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the harness over ``benchmarks`` (default: the full Table I suite).

    Each entry in ``batches`` adds a timed trial-batched wavefront
    section per benchmark (plus a bit-exactness proof against the serial
    compiled payload stream) and a dense-kernel microbench to the
    payload — the per-column throughput ratio CI gates on.
    """
    names = list(benchmarks) if benchmarks else benchmark_names()
    unknown = sorted(set(names) - set(all_benchmark_names()))
    if unknown:
        raise KeyError(
            f"unknown benchmark(s) {unknown}; known: {all_benchmark_names()}"
        )
    results = []
    for name in names:
        if progress is not None:
            progress(name)
        results.append(
            bench_one(
                name,
                num_trials=num_trials,
                repeats=repeats,
                warmup=warmup,
                seed=seed,
                check=check,
                trace=trace,
                workers=workers,
                partition_depth=partition_depth,
                auto=auto,
                batches=batches,
                hybrid=hybrid,
            )
        )
    speedups = [record["speedup"] for record in results]
    batch_speedups = [
        record["batch_best"]["speedup_vs_serial"]
        for record in results
        if "batch_best" in record
    ]
    hybrid_speedups = [
        record["hybrid_best"]["speedup_vs_serial"]
        for record in results
        if "hybrid_best" in record
    ]
    payload: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": machine_info(),
        "config": {
            "num_trials": num_trials,
            "repeats": repeats,
            "warmup": warmup,
            "seed": seed,
            "check": check,
            "trace": trace,
            "workers": list(workers),
            "partition_depth": partition_depth,
            "auto": auto,
            "batches": list(batches),
            "hybrid": hybrid,
        },
        "results": results,
        "summary": {
            "benchmarks": len(results),
            "min_speedup": min(speedups) if speedups else None,
            "max_speedup": max(speedups) if speedups else None,
            "geomean_speedup": (
                float(np.exp(np.mean(np.log(speedups)))) if speedups else None
            ),
            "all_equivalent": (
                all(
                    record.get("equivalence", {}).get("ok", True)
                    for record in results
                )
                if check
                else None
            ),
            "all_parallel_exact": (
                all(
                    section["exact"]["ok"]
                    for record in results
                    for section in record.get("parallel", ())
                )
                if workers
                else None
            ),
            "all_advised_exact": (
                all(
                    record["advised"]["exact"]["ok"]
                    for record in results
                    if "advised" in record
                )
                if auto
                else None
            ),
            "all_batch_exact": (
                all(
                    section["exact"]["ok"]
                    for record in results
                    for section in record.get("batch", ())
                )
                if batches
                else None
            ),
            "geomean_batch_speedup": (
                float(np.exp(np.mean(np.log(batch_speedups))))
                if batch_speedups
                else None
            ),
            "all_hybrid_exact": (
                all(
                    section["exact"]["ok"]
                    for record in results
                    for section in record.get("hybrid", ())
                )
                if hybrid
                else None
            ),
            "geomean_hybrid_speedup": (
                float(np.exp(np.mean(np.log(hybrid_speedups))))
                if hybrid_speedups
                else None
            ),
        },
    }
    if batches:
        payload["microbench"] = dense_microbench()
    if hybrid:
        payload["hybrid_microbench"] = hybrid_microbench()
    return payload


def write_bench_json(payload: Dict[str, object], path: str) -> None:
    """Write a harness payload as stable, reviewable JSON (atomically —
    an interrupted bench run never leaves a truncated artifact)."""
    from .core.atomicio import atomic_write_json

    atomic_write_json(path, payload, indent=2, sort_keys=True)


def bench_rows(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a payload into table rows for the CLI renderer."""
    rows = []
    for record in payload["results"]:
        row = {
            "benchmark": record["benchmark"],
            "gates": record["num_gates"],
            "ops": record["ops_applied"],
            "interp (ms)": record["interpreted"]["best_s"] * 1e3,
            "compiled (ms)": record["compiled"]["best_s"] * 1e3,
            "Mops/s": record["compiled"]["ops_per_s"] / 1e6,
            "speedup": record["speedup"],
        }
        for section in record.get("parallel", ()):
            w = section["workers"]
            row[f"par{w} (ms)"] = section["best_s"] * 1e3
            row[f"par{w} vs 1"] = section["speedup_vs_serial"]
        rss = record.get("peak_rss_kb") or {}
        if rss.get("self") is not None:
            children = rss.get("children") or 0
            row["rss (MB)"] = (rss["self"] + children) / 1024.0
        if "equivalence" in record:
            exact = record["equivalence"]["ok"] and all(
                section["exact"]["ok"]
                for section in record.get("parallel", ())
            )
            row["exact"] = "yes" if exact else "NO"
        rows.append(row)
    return rows


def _comparable_sections(
    record: Dict[str, object]
) -> Dict[str, Dict[str, float]]:
    """Named speedup sections of one benchmark record.

    Every section is normalized to ``{"speedup", "best_s"}`` — the
    speedup is what the gate compares (a dimensionless ratio, robust to
    the absolute machine speed differing between baseline and current
    runs) and ``best_s`` is the noise floor: sections faster than
    ``min_seconds`` are dominated by timer jitter and are skipped.
    """
    sections: Dict[str, Dict[str, float]] = {
        "compiled": {
            "speedup": float(record["speedup"]),  # type: ignore[arg-type]
            "best_s": float(record["compiled"]["best_s"]),  # type: ignore[index]
        }
    }
    for section in record.get("parallel", ()):  # type: ignore[attr-defined]
        sections[f"parallel[w{section['workers']}]"] = {
            "speedup": float(section["speedup_vs_serial"]),
            "best_s": float(section["best_s"]),
        }
    if "advised" in record:
        advised = record["advised"]  # type: ignore[index]
        sections["advised"] = {
            "speedup": float(advised["speedup_vs_serial"]),  # type: ignore[index]
            "best_s": float(advised["best_s"]),  # type: ignore[index]
        }
    for section in record.get("batch", ()):  # type: ignore[attr-defined]
        sections[f"batch[{section['batch']}]"] = {
            "speedup": float(section["speedup_vs_serial"]),
            "best_s": float(section["best_s"]),
        }
    for section in record.get("hybrid", ()):  # type: ignore[attr-defined]
        label = (
            f"hybrid+batch[{section['batch']}]"
            if section["batch"]
            else "hybrid"
        )
        sections[label] = {
            "speedup": float(section["speedup_vs_serial"]),
            "best_s": float(section["best_s"]),
        }
    return sections


def compare_bench(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.35,
    min_seconds: float = 0.005,
) -> Dict[str, object]:
    """Compare two harness payloads; the CI regression gate.

    For every benchmark present in *both* payloads, each named speedup
    section (``compiled``, ``parallel[wN]``, ``advised``, ``batch[W]``)
    is compared as ``current_speedup / baseline_speedup``.  A section
    regresses when that ratio falls below ``1 - tolerance`` **and** both
    measurements clear the ``min_seconds`` noise floor (best-of-N times
    below it carry more timer jitter than signal).  Benchmarks or
    sections present on only one side are reported informationally, never
    failed — a baseline from a wider run must not fail a narrower smoke.

    Config divergence (trials, repeats, seed) is reported in
    ``config_mismatches`` so a reader can judge how comparable the runs
    were; speedups are within-run ratios, so they stay meaningful across
    configs in a way absolute times would not.
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    current_by_name = {
        record["benchmark"]: record
        for record in current.get("results", ())  # type: ignore[attr-defined]
    }
    baseline_by_name = {
        record["benchmark"]: record
        for record in baseline.get("results", ())  # type: ignore[attr-defined]
    }
    rows: List[Dict[str, object]] = []
    regressions: List[str] = []
    skipped: List[str] = []
    for name in sorted(set(current_by_name) & set(baseline_by_name)):
        cur_sections = _comparable_sections(current_by_name[name])
        base_sections = _comparable_sections(baseline_by_name[name])
        for section in sorted(set(cur_sections) & set(base_sections)):
            cur = cur_sections[section]
            base = base_sections[section]
            ratio = (
                cur["speedup"] / base["speedup"] if base["speedup"] else 0.0
            )
            below_floor = (
                cur["best_s"] < min_seconds or base["best_s"] < min_seconds
            )
            regressed = bool(ratio < 1.0 - tolerance and not below_floor)
            label = f"{name}:{section}"
            if ratio < 1.0 - tolerance and below_floor:
                skipped.append(label)
            if regressed:
                regressions.append(label)
            rows.append(
                {
                    "benchmark": name,
                    "section": section,
                    "baseline_speedup": base["speedup"],
                    "current_speedup": cur["speedup"],
                    "ratio": ratio,
                    "baseline_best_s": base["best_s"],
                    "current_best_s": cur["best_s"],
                    "below_noise_floor": below_floor,
                    "regressed": regressed,
                }
            )
        only = sorted(set(base_sections) - set(cur_sections))
        if only:
            skipped.extend(f"{name}:{section} (not in current)" for section in only)
    config_mismatches = []
    for key in ("num_trials", "repeats", "warmup", "seed", "batches", "workers"):
        cur_value = current.get("config", {}).get(key)  # type: ignore[union-attr]
        base_value = baseline.get("config", {}).get(key)  # type: ignore[union-attr]
        if cur_value != base_value:
            config_mismatches.append(
                f"{key}: baseline {base_value!r} vs current {cur_value!r}"
            )
    return {
        "tolerance": tolerance,
        "min_seconds": min_seconds,
        "benchmarks_compared": sorted(
            set(current_by_name) & set(baseline_by_name)
        ),
        "benchmarks_skipped": sorted(
            set(current_by_name) ^ set(baseline_by_name)
        ),
        "rows": rows,
        "sections_skipped": skipped,
        "config_mismatches": config_mismatches,
        "regressions": regressions,
        "ok": not regressions,
    }
