"""Compiled gate kernels: classify once, apply in place forever.

The interpreted hot path (:func:`repro.sim.statevector.apply_gate_matrix`)
re-derives everything on every application: it rescans the matrix for
diagonality, rebuilds broadcast shapes, and allocates a fresh ``2**n``
tensor per gate.  A :class:`Kernel` hoists all of that to compile time.
Each gate of a circuit is classified **once** into the cheapest applicable
kernel class and every per-application quantity (broadcast diagonal,
permutation moves, einsum subscripts, control-slice indices) is
precomputed, so the steady state is a handful of numpy calls writing into
preallocated buffers — nothing is allocated per gate.

Kernel taxonomy (classification priority top to bottom):

``diagonal``
    The matrix is diagonal (rz, z, s, t, cz, cu1, rzz, ...).  Applied as a
    single in-place broadcast multiply: ``tensor *= diag``.
``controlled``
    Identity except a bottom-right block — a gate on the trailing target
    qubits fired only when all leading control qubits are 1 (cx, ccx, ch,
    cswap, ...).  Applied to the control slice only, touching ``2**(n-c)``
    amplitudes instead of ``2**n``; the inner block is itself compiled
    recursively (so a CX costs one slice-permutation of half the state).
``permutation``
    One nonzero of unit modulus per column (x, y, swap).  Applied as
    ``2**k`` strided copy/scale moves into the scratch buffer, then the
    buffers are swapped — no contraction at all.
``dense``
    Everything else (h, sx, u3, rxx, Haar-random su4, fused runs).  A
    single preplanned ``einsum`` contraction into the scratch buffer.

Apply contract
--------------
``kernel.apply(tensor, scratch)`` returns ``(tensor, scratch)`` *possibly
swapped*: kernels that write out of place return the scratch as the new
state tensor and the old tensor as the new scratch.  Both arrays must have
shape ``(2,) * num_qubits`` and be distinct.  Callers thread the pair
through a kernel sequence and adopt the final ``tensor``.

Batched apply contract
----------------------
``kernel.apply_batch(tensor, scratch)`` is the same ping-pong contract
over a **batch-last** array of shape ``(2,) * num_qubits + (B,)``: column
``[..., b]`` holds trial ``b``'s state and one call advances all ``B``
columns.  Batch-last is deliberate: every precomputed index tuple in this
module addresses the *leading* ``num_qubits`` axes, so permutation moves
and control slices work unchanged on the batched array, the diagonal
broadcast only needs a trailing length-1 axis, and the dense einsum only
needs the batch label appended as a free (uncontracted) index.  Because
the batch axis is never contracted, the per-column arithmetic — operand
order, summation order — is identical to the serial ``apply``, which is
what makes batched execution bit-exact against the serial path at every
batch width, including ``B == 1``.

The module-level :func:`kernel_for_gate` cache is keyed by
:attr:`Gate._key` (name, arity, params, rounded matrix bytes) plus the
qubit placement, so error-injection operators and circuit gates share one
compilation cache across all circuits of the same width.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..circuits.gates import Gate

__all__ = [
    "Kernel",
    "KernelCost",
    "DiagonalKernel",
    "PermutationKernel",
    "ControlledKernel",
    "DenseKernel",
    "compile_matrix",
    "kernel_for_gate",
    "kernel_cost",
    "kernel_cache_info",
    "controlled_split",
    "is_permutation_matrix",
    "clear_kernel_cache",
]

_ATOL = 1e-12

#: index tuple addressing a sub-array: ints on some axes, full slices elsewhere
_Index = Tuple[object, ...]


def _basis_index(bits: int, qubits: Sequence[int], num_qubits: int) -> _Index:
    """Index tuple selecting the sub-array where ``qubits`` read ``bits``.

    ``bits`` follows the matrix convention: ``qubits[0]`` is the most
    significant bit.  Fixed axes use length-1 slices (not ints) so the
    result is always an array view — even when every axis is fixed —
    which keeps it usable as an ``out=`` target.
    """
    index: List[object] = [slice(None)] * num_qubits
    k = len(qubits)
    for position, qubit in enumerate(qubits):
        bit = (bits >> (k - 1 - position)) & 1
        index[qubit] = slice(bit, bit + 1)
    return tuple(index)


class Kernel:
    """One compiled gate application.  Subclasses fill ``kind`` and apply."""

    __slots__ = ("qubits",)

    kind = "abstract"

    def __init__(self, qubits: Sequence[int]) -> None:
        self.qubits = tuple(qubits)

    def apply(
        self, tensor: np.ndarray, scratch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def apply_batch(
        self, tensor: np.ndarray, scratch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply to a batch-last ``(2,)*n + (B,)`` array; same ping-pong."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(qubits={self.qubits})"


def _collapse_axes(
    num_qubits: int, qubits: Sequence[int]
) -> Tuple[Tuple[int, ...], Tuple[int, ...], int]:
    """Coalesce the non-target axes of a ``(2,)*n`` tensor.

    Returns ``(shape, diag_shape, post)``: a reshape template where every
    run of consecutive non-target axes is merged into one axis (the
    trailing run's size is returned separately as ``post`` so a batch
    axis can be merged into it), and the matching broadcast shape with 1s
    on the merged axes and 2s on the targets.  Reshaping a C-contiguous
    tensor this way is free, and collapsing e.g. 14 axes to 3 makes
    numpy's broadcast iterator several times cheaper per call.
    """
    targets = set(qubits)
    shape: List[int] = []
    diag_shape: List[int] = []
    run = 1
    for axis in range(num_qubits):
        if axis in targets:
            if run > 1:
                shape.append(run)
                diag_shape.append(1)
                run = 1
            shape.append(2)
            diag_shape.append(2)
        else:
            run *= 2
    post = run
    return tuple(shape), tuple(diag_shape), post


class DiagonalKernel(Kernel):
    """Diagonal gate as one in-place broadcast multiply."""

    __slots__ = ("_diag", "_diag_batch", "_cshape", "_cdiag", "_cpost")

    kind = "diagonal"

    def __init__(
        self, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
    ) -> None:
        super().__init__(qubits)
        k = len(qubits)
        diagonal = np.ascontiguousarray(
            np.diagonal(matrix), dtype=np.complex128
        ).reshape((2,) * k)
        # The diagonal's axes follow the qubits argument order; transpose
        # them into ascending-qubit order so a plain reshape broadcasts.
        order = np.argsort(qubits)
        diagonal = np.ascontiguousarray(np.transpose(diagonal, order))
        shape = [1] * num_qubits
        for qubit in qubits:
            shape[qubit] = 2
        self._diag = diagonal.reshape(shape)
        # Same factors with a trailing length-1 axis: broadcasts along the
        # batch axis of a batch-last array (a view, not a copy).
        self._diag_batch = self._diag.reshape(shape + [1])
        # Collapsed-axis views for the batched path: merging non-target
        # axis runs (and the batch axis into the trailing run) does not
        # change a single element-wise product, but cuts the broadcast
        # iterator from ``n + 1`` axes to a handful.
        self._cshape, cdiag, self._cpost = _collapse_axes(num_qubits, qubits)
        self._cdiag = diagonal.reshape(cdiag + (1,))

    def apply(
        self, tensor: np.ndarray, scratch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        np.multiply(tensor, self._diag, out=tensor)
        return tensor, scratch

    def apply_batch(
        self, tensor: np.ndarray, scratch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        if tensor.flags.c_contiguous:
            width = tensor.shape[-1]
            view = tensor.reshape(self._cshape + (self._cpost * width,))
            np.multiply(view, self._cdiag, out=view)
            return tensor, scratch
        np.multiply(tensor, self._diag_batch, out=tensor)
        return tensor, scratch


class PermutationKernel(Kernel):
    """Phase-permutation gate as ``2**k`` strided moves into scratch."""

    __slots__ = ("_moves",)

    kind = "permutation"

    def __init__(
        self, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
    ) -> None:
        super().__init__(qubits)
        dim = matrix.shape[0]
        moves: List[Tuple[_Index, _Index, complex]] = []
        for column in range(dim):
            rows = np.nonzero(np.abs(matrix[:, column]) > _ATOL)[0]
            if len(rows) != 1:
                raise ValueError("matrix is not a phase permutation")
            row = int(rows[0])
            phase = complex(matrix[row, column])
            moves.append(
                (
                    _basis_index(row, qubits, num_qubits),
                    _basis_index(column, qubits, num_qubits),
                    phase,
                )
            )
        self._moves = tuple(moves)

    def apply(
        self, tensor: np.ndarray, scratch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        for dest, src, phase in self._moves:
            if phase == 1.0:
                scratch[dest] = tensor[src]
            else:
                np.multiply(tensor[src], phase, out=scratch[dest])
        return scratch, tensor

    # The move index tuples address the leading ``num_qubits`` axes only,
    # so the identical loop moves every batch column at once.
    apply_batch = apply


class ControlledKernel(Kernel):
    """Controlled gate applied only to the all-controls-1 slice.

    The inner block is compiled recursively against the sliced view, so
    e.g. CX becomes a permutation over half the state and CH a dense 2x2
    contraction over half the state.  The full tensor is never rewritten,
    so this kernel does not swap buffers.
    """

    __slots__ = ("_ctrl_index", "_inner")

    kind = "controlled"

    def __init__(
        self,
        inner_matrix: np.ndarray,
        controls: Sequence[int],
        targets: Sequence[int],
        num_qubits: int,
    ) -> None:
        super().__init__(tuple(controls) + tuple(targets))
        index: List[object] = [slice(None)] * num_qubits
        for qubit in controls:
            index[qubit] = 1
        self._ctrl_index = tuple(index)
        # Axis numbering inside the sliced view: control axes vanish.
        remaining = [a for a in range(num_qubits) if a not in set(controls)]
        view_targets = tuple(remaining.index(q) for q in targets)
        self._inner = compile_matrix(inner_matrix, view_targets, len(remaining))

    def apply(
        self, tensor: np.ndarray, scratch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        view = tensor[self._ctrl_index]
        result, _ = self._inner.apply(view, scratch[self._ctrl_index])
        if result is not view:
            # Inner kernel wrote out of place into the scratch slice.
            view[...] = result
        return tensor, scratch

    def apply_batch(
        self, tensor: np.ndarray, scratch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        # The control index drops the control axes and keeps the batch
        # axis, so the sliced view is itself batch-last for the inner
        # kernel (compiled against the view's qubit count).
        view = tensor[self._ctrl_index]
        result, _ = self._inner.apply_batch(view, scratch[self._ctrl_index])
        if result is not view:
            view[...] = result
        return tensor, scratch


class DenseKernel(Kernel):
    """General gate as one preplanned einsum contraction into scratch."""

    __slots__ = (
        "_gate_tensor", "_gate_sub", "_in_sub", "_out_sub",
        "_bin_sub", "_bout_sub",
        "_rshape", "_rpost", "_rgate_sub", "_rin_sub", "_rout_sub",
    )

    kind = "dense"

    def __init__(
        self, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
    ) -> None:
        super().__init__(qubits)
        k = len(qubits)
        self._gate_tensor = np.ascontiguousarray(
            matrix, dtype=np.complex128
        ).reshape((2,) * (2 * k))
        # Integer-subscript einsum: state axes are 0..n-1; the gate's k
        # output axes get fresh labels n..n+k-1 and its k input axes take
        # the target-qubit labels, which einsum then contracts away.
        self._gate_sub = [num_qubits + i for i in range(k)] + list(qubits)
        self._in_sub = list(range(num_qubits))
        out_sub = list(range(num_qubits))
        for i, qubit in enumerate(qubits):
            out_sub[qubit] = num_qubits + i
        self._out_sub = out_sub
        # Batched subscripts: the batch axis takes one more fresh label
        # appearing in both state operands, so it rides through as a free
        # index — einsum never contracts it and the per-column summation
        # order matches the serial contraction exactly.
        batch_label = num_qubits + k
        self._bin_sub = self._in_sub + [batch_label]
        self._bout_sub = out_sub + [batch_label]
        # Collapsed-axis subscripts for the contiguous batched path: a
        # C-contiguous batch-last array reshapes for free to
        # ``(pre, 2, post*B)`` (one target) or ``(pre, 2, mid, 2, post*B)``
        # (two targets), turning an (n+1)-axis einsum into a 3- or 5-axis
        # one.  The contraction per output element sums the same products
        # with the target labels iterated in the same nesting order, so
        # the result stays bit-identical to the full-rank labeling (the
        # test suite asserts this per kernel).  Non-contiguous inputs
        # (controlled-kernel inner slices) keep the full-rank labels.
        self._rshape: Optional[Tuple[int, ...]] = None
        self._rpost = 0
        self._rgate_sub: List[int] = []
        self._rin_sub: List[int] = []
        self._rout_sub: List[int] = []
        if k == 1:
            qubit = qubits[0]
            self._rshape = (1 << qubit, 2)
            self._rpost = 1 << (num_qubits - 1 - qubit)
            self._rgate_sub = [3, 1]
            self._rin_sub = [0, 1, 2]
            self._rout_sub = [0, 3, 2]
        elif k == 2:
            low, high = sorted(qubits)
            self._rshape = (1 << low, 2, 1 << (high - low - 1), 2)
            self._rpost = 1 << (num_qubits - 1 - high)
            self._rin_sub = [0, 1, 2, 3, 4]
            self._rout_sub = [0, 5, 2, 6, 4]
            # The gate tensor's axes follow the qubits argument order:
            # (out_q0, out_q1, in_q0, in_q1).  Map each onto the collapsed
            # state labels for its qubit's axis position.
            if qubits[0] == low:
                self._rgate_sub = [5, 6, 1, 3]
            else:
                self._rgate_sub = [6, 5, 3, 1]

    def apply(
        self, tensor: np.ndarray, scratch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        np.einsum(
            self._gate_tensor,
            self._gate_sub,
            tensor,
            self._in_sub,
            self._out_sub,
            out=scratch,
        )
        return scratch, tensor

    def apply_batch(
        self, tensor: np.ndarray, scratch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        if (
            self._rshape is not None
            and tensor.flags.c_contiguous
            and scratch.flags.c_contiguous
        ):
            width = tensor.shape[-1]
            shape = self._rshape + (self._rpost * width,)
            np.einsum(
                self._gate_tensor,
                self._rgate_sub,
                tensor.reshape(shape),
                self._rin_sub,
                self._rout_sub,
                out=scratch.reshape(shape),
            )
            return scratch, tensor
        np.einsum(
            self._gate_tensor,
            self._gate_sub,
            tensor,
            self._bin_sub,
            self._bout_sub,
            out=scratch,
        )
        return scratch, tensor


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


def _is_diagonal_matrix(matrix: np.ndarray) -> bool:
    return bool(
        np.count_nonzero(matrix - np.diag(np.diagonal(matrix))) == 0
    )


def is_permutation_matrix(matrix: np.ndarray, atol: float = _ATOL) -> bool:
    """One nonzero per row and column (unit modulus follows from unitarity)."""
    mask = np.abs(matrix) > atol
    return bool(
        np.all(mask.sum(axis=0) == 1) and np.all(mask.sum(axis=1) == 1)
    )


def controlled_split(
    matrix: np.ndarray, num_qubits: int, atol: float = _ATOL
) -> Optional[Tuple[int, np.ndarray]]:
    """Split a controlled gate into ``(num_controls, inner_block)``.

    Detects the standard leading-control structure: the matrix is the
    identity except for the bottom-right ``2**(k-c)`` block, which acts on
    the trailing target qubits when all ``c`` leading controls read 1.
    Returns the split with the **largest** viable control count (smallest
    active block), or ``None`` when the gate is not of this form.
    """
    dim = matrix.shape[0]
    for controls in range(num_qubits - 1, 0, -1):
        split = dim - 2 ** (num_qubits - controls)
        top_left = matrix[:split, :split]
        if (
            np.all(np.abs(top_left - np.eye(split)) <= atol)
            and np.all(np.abs(matrix[:split, split:]) <= atol)
            and np.all(np.abs(matrix[split:, :split]) <= atol)
        ):
            return controls, np.array(matrix[split:, split:])
    return None


def compile_matrix(
    matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> Kernel:
    """Classify ``matrix`` on ``qubits`` into its cheapest kernel."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    qubits = tuple(qubits)
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise ValueError(
            f"matrix shape {matrix.shape} does not act on {k} qubit(s)"
        )
    if _is_diagonal_matrix(matrix):
        return DiagonalKernel(matrix, qubits, num_qubits)
    if k >= 2:
        split = controlled_split(matrix, k)
        if split is not None:
            num_controls, inner = split
            return ControlledKernel(
                inner, qubits[:num_controls], qubits[num_controls:], num_qubits
            )
    if is_permutation_matrix(matrix):
        return PermutationKernel(matrix, qubits, num_qubits)
    return DenseKernel(matrix, qubits, num_qubits)


# ---------------------------------------------------------------------------
# The shared per-gate kernel cache
# ---------------------------------------------------------------------------

_GATE_KERNEL_CACHE: Dict[tuple, Kernel] = {}
_CACHE_HITS = 0
_CACHE_MISSES = 0


def kernel_for_gate(
    gate: Gate, qubits: Sequence[int], num_qubits: int
) -> Kernel:
    """Compile (or fetch) the kernel for ``gate`` at a qubit placement.

    Keyed by ``Gate._key`` — name, arity, params and rounded matrix bytes —
    so circuit gates and injected error operators with equal matrices share
    one compiled kernel per placement.
    """
    global _CACHE_HITS, _CACHE_MISSES
    key = (gate._key, tuple(qubits), num_qubits)
    kernel = _GATE_KERNEL_CACHE.get(key)
    if kernel is None:
        _CACHE_MISSES += 1
        kernel = compile_matrix(gate.matrix, qubits, num_qubits)
        _GATE_KERNEL_CACHE[key] = kernel
    else:
        _CACHE_HITS += 1
    return kernel


class KernelCost(NamedTuple):
    """Static per-application cost of one compiled kernel.

    ``flops`` counts real floating-point operations (a complex multiply is
    6 real ops, a complex multiply-add 8) and ``bytes_moved`` the memory
    traffic of one application against a ``2**num_qubits`` complex128
    state.  Both are *model* quantities — deterministic functions of the
    kernel's compiled structure, not measurements — which is exactly what
    makes them usable inside a :class:`~repro.lint.costmodel`
    ResourceCertificate: the same kernel always costs the same.
    """

    flops: int
    bytes_moved: int

    def __add__(self, other: "KernelCost") -> "KernelCost":  # type: ignore[override]
        return KernelCost(
            self.flops + other.flops, self.bytes_moved + other.bytes_moved
        )


#: bytes of one complex128 amplitude
_AMP_BYTES = 16


def kernel_cost(
    kernel: Kernel, num_qubits: int, batch: int = 1
) -> KernelCost:
    """Static flop/byte cost of applying ``kernel`` to a ``2**n`` state.

    With ``batch > 1`` the cost is that of one ``apply_batch`` call over a
    batch-last ``(2,)*n + (batch,)`` array: exactly ``batch`` times the
    serial cost, because the batch axis is a free index everywhere — this
    linearity is what the cost model certifies when it prices batched
    schedules (total flops are invariant under any batch grouping).

    The model mirrors each kernel's ``apply`` body:

    * ``diagonal`` — one in-place broadcast multiply: 6 flops per
      amplitude; every amplitude is read and written once.
    * ``permutation`` — ``2**k`` strided moves of ``2**(n-k)`` amplitudes
      each; a unit-phase move is a pure copy (0 flops), a scaled move is a
      complex scalar multiply (6 flops per amplitude); every amplitude is
      read and written once in total.
    * ``controlled`` — the inner kernel applied to the all-controls-1
      slice, i.e. recursion at ``n - num_controls`` qubits; the untouched
      rest of the state costs nothing.
    * ``dense`` — one einsum contraction: ``2**k`` complex multiply-adds
      (8 flops) per output amplitude; the state is streamed in and out.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    dim = 2**num_qubits * batch
    if isinstance(kernel, DiagonalKernel):
        return KernelCost(6 * dim, 2 * _AMP_BYTES * dim)
    if isinstance(kernel, PermutationKernel):
        per_move = 2 ** (num_qubits - len(kernel.qubits)) * batch
        flops = sum(
            0 if phase == 1.0 else 6 * per_move
            for _, _, phase in kernel._moves
        )
        return KernelCost(flops, 2 * _AMP_BYTES * dim)
    if isinstance(kernel, ControlledKernel):
        num_controls = len(kernel.qubits) - len(kernel._inner.qubits)
        return kernel_cost(kernel._inner, num_qubits - num_controls, batch)
    if isinstance(kernel, DenseKernel):
        k = len(kernel.qubits)
        return KernelCost(8 * dim * 2**k, 2 * _AMP_BYTES * dim)
    raise TypeError(f"no cost model for kernel kind {kernel.kind!r}")


def kernel_cache_info() -> Dict[str, int]:
    """Lifetime statistics of the shared per-gate kernel cache.

    ``hits``/``misses`` count :func:`kernel_for_gate` lookups since the
    last :func:`clear_kernel_cache`; ``size`` is the number of distinct
    compiled (gate, placement) entries currently held.
    """
    return {
        "size": len(_GATE_KERNEL_CACHE),
        "hits": _CACHE_HITS,
        "misses": _CACHE_MISSES,
    }


def clear_kernel_cache() -> None:
    """Drop every cached compiled kernel (tests / memory pressure)."""
    global _CACHE_HITS, _CACHE_MISSES
    _GATE_KERNEL_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0
