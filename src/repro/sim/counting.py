"""Operation-counting backend: the paper's metric without the amplitudes.

The evaluation (Sec. V) deliberately reports an implementation-independent
metric — "the number of basic operations (matrix-vector multiplication) in
the full-state QC simulation".  That number depends only on the schedule
(which layer segments run, which error operators are injected), never on
amplitude values, so it can be computed with a backend whose "state" is just
an opaque token.  This is what lets the scalability experiments (Figs. 7–8,
up to 40 qubits and 10^6 trials) run on a laptop: a 2**40-amplitude vector
is never materialized.

The counting backend is cross-checked against :class:`StatevectorBackend`
in the integration tests: both must report identical operation counts for
identical schedules.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.gates import Gate
from ..circuits.layers import LayeredCircuit
from .backend import SimulationBackend

__all__ = ["CountingBackend", "CountingState"]


class CountingState:
    """An opaque state token; only identity matters."""

    __slots__ = ()


class CountingBackend(SimulationBackend):
    """Counts basic operations in closed form; never touches amplitudes."""

    def __init__(self, layered: LayeredCircuit) -> None:
        super().__init__(layered)
        self.live_states = 0
        self.peak_live_states = 0
        self._token = CountingState()

    def _track_new_state(self) -> CountingState:
        self.live_states += 1
        self.peak_live_states = max(self.peak_live_states, self.live_states)
        return self._token

    def make_initial(self) -> CountingState:
        return self._track_new_state()

    def copy_state(self, state: CountingState) -> CountingState:
        return self._track_new_state()

    def release_state(self, state: CountingState) -> None:
        self.live_states -= 1

    def apply_layers(self, state: CountingState, start_layer: int, end_layer: int) -> None:
        self.ops_applied += self.layered.gates_between(start_layer, end_layer)

    def apply_operator(self, state: CountingState, gate: Gate, qubits: Sequence[int]) -> None:
        self.ops_applied += 1

    def finish(self, state: CountingState) -> None:
        return None
