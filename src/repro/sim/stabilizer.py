"""Stabilizer (CHP) simulation: the Clifford fast path.

The paper positions its inter-trial optimization as *orthogonal* to
single-trial accelerations such as stabilizer simulation (Sec. II,
refs. [17, 18]).  This module demonstrates the composition: an
Aaronson-Gottesman tableau simulator whose states plug into the same
trial-reordering executor through :class:`StabilizerBackend`.  Because
the injected error operators are Paulis (Clifford), *any* Clifford
circuit — GHZ chains, stabilizer codes, the ``rb``/``bv`` benchmarks —
can be noisily simulated with hundreds of qubits, with the trial
reordering still eliminating the redundant tableau updates.

Tableau layout (Aaronson & Gottesman, PRA 70, 052328): binary matrices
``x`` and ``z`` of shape ``(2n, n)`` plus a phase column ``r``; rows
``0..n-1`` are destabilizers, rows ``n..2n-1`` stabilizers.  All row
updates are numpy-vectorized.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import GateOp, Measurement, QuantumCircuit
from ..circuits.gates import Gate
from ..circuits.layers import LayeredCircuit
from .backend import SimulationBackend

__all__ = [
    "CLIFFORD_GATES",
    "StabilizerError",
    "StabilizerState",
    "StabilizerBackend",
    "is_clifford_circuit",
]

#: Gate names the tableau simulator implements directly or by composition.
CLIFFORD_GATES = frozenset(
    ["id", "x", "y", "z", "h", "s", "sdg", "sx", "cx", "cz", "cy", "swap"]
)


class StabilizerError(ValueError):
    """Raised for non-Clifford input."""


def is_clifford_circuit(circuit: QuantumCircuit) -> bool:
    """Whether every gate of ``circuit`` is in the supported Clifford set."""
    return all(
        op.gate.name in CLIFFORD_GATES for op in circuit.gate_ops()
    )


class StabilizerState:
    """An ``n``-qubit stabilizer state as a CHP tableau."""

    __slots__ = ("num_qubits", "x", "z", "r")

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError(f"need at least one qubit, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        n = self.num_qubits
        self.x = np.zeros((2 * n, n), dtype=bool)
        self.z = np.zeros((2 * n, n), dtype=bool)
        self.r = np.zeros(2 * n, dtype=bool)
        self.x[np.arange(n), np.arange(n)] = True          # destabilizers X_i
        self.z[n + np.arange(n), np.arange(n)] = True      # stabilizers   Z_i

    def copy(self) -> "StabilizerState":
        dup = StabilizerState.__new__(StabilizerState)
        dup.num_qubits = self.num_qubits
        dup.x = self.x.copy()
        dup.z = self.z.copy()
        dup.r = self.r.copy()
        return dup

    # -- elementary gates ----------------------------------------------------

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(
                f"qubit {qubit} out of range for {self.num_qubits} qubits"
            )

    def h(self, qubit: int) -> None:
        self._check_qubit(qubit)
        xa, za = self.x[:, qubit].copy(), self.z[:, qubit].copy()
        self.r ^= xa & za
        self.x[:, qubit], self.z[:, qubit] = za, xa

    def s(self, qubit: int) -> None:
        self._check_qubit(qubit)
        xa, za = self.x[:, qubit], self.z[:, qubit]
        self.r ^= xa & za
        self.z[:, qubit] = za ^ xa

    def sdg(self, qubit: int) -> None:
        # S^dagger = Z S
        self.z_gate(qubit)
        self.s(qubit)

    def x_gate(self, qubit: int) -> None:
        self._check_qubit(qubit)
        self.r ^= self.z[:, qubit]

    def z_gate(self, qubit: int) -> None:
        self._check_qubit(qubit)
        self.r ^= self.x[:, qubit]

    def y_gate(self, qubit: int) -> None:
        self._check_qubit(qubit)
        self.r ^= self.x[:, qubit] ^ self.z[:, qubit]

    def cx(self, control: int, target: int) -> None:
        self._check_qubit(control)
        self._check_qubit(target)
        if control == target:
            raise ValueError("control equals target")
        xc, zc = self.x[:, control], self.z[:, control]
        xt, zt = self.x[:, target], self.z[:, target]
        self.r ^= xc & zt & (xt ^ zc ^ True)
        self.x[:, target] = xt ^ xc
        self.z[:, control] = zc ^ zt

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cx(a, b)
        self.h(b)

    def cy(self, control: int, target: int) -> None:
        self.sdg(target)
        self.cx(control, target)
        self.s(target)

    def swap(self, a: int, b: int) -> None:
        self.cx(a, b)
        self.cx(b, a)
        self.cx(a, b)

    def sx(self, qubit: int) -> None:
        # sqrt(X) = H S H up to global phase (irrelevant for stabilizers).
        self.h(qubit)
        self.s(qubit)
        self.h(qubit)

    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> "StabilizerState":
        name = gate.name
        if name not in CLIFFORD_GATES:
            raise StabilizerError(f"gate {name!r} is not Clifford")
        if name == "id":
            pass
        elif name == "x":
            self.x_gate(*qubits)
        elif name == "y":
            self.y_gate(*qubits)
        elif name == "z":
            self.z_gate(*qubits)
        elif name == "h":
            self.h(*qubits)
        elif name == "s":
            self.s(*qubits)
        elif name == "sdg":
            self.sdg(*qubits)
        elif name == "sx":
            self.sx(*qubits)
        elif name == "cx":
            self.cx(*qubits)
        elif name == "cz":
            self.cz(*qubits)
        elif name == "cy":
            self.cy(*qubits)
        elif name == "swap":
            self.swap(*qubits)
        return self

    def apply_op(self, op: GateOp) -> "StabilizerState":
        return self.apply_gate(op.gate, op.qubits)

    # -- measurement ------------------------------------------------------------

    def _rowsum_into(self, target_row: int, source_row: int) -> None:
        """Row ``target`` *= row ``source`` with correct phase tracking."""
        self.r[target_row] = self._product_phase(
            self.x[target_row],
            self.z[target_row],
            self.r[target_row],
            self.x[source_row],
            self.z[source_row],
            self.r[source_row],
        )
        self.x[target_row] ^= self.x[source_row]
        self.z[target_row] ^= self.z[source_row]

    @staticmethod
    def _product_phase(xh, zh, rh, xi, zi, ri) -> bool:
        """Phase bit of the Pauli product row_i * row_h (CHP's rowsum)."""
        # g(x1,z1,x2,z2) per Aaronson-Gottesman, vectorized over columns.
        x1, z1 = xi.astype(np.int8), zi.astype(np.int8)
        x2, z2 = xh.astype(np.int8), zh.astype(np.int8)
        g = np.zeros_like(x1)
        y_mask = (x1 == 1) & (z1 == 1)
        x_mask = (x1 == 1) & (z1 == 0)
        z_mask = (x1 == 0) & (z1 == 1)
        g[y_mask] = (z2 - x2)[y_mask]
        g[x_mask] = (z2 * (2 * x2 - 1))[x_mask]
        g[z_mask] = (x2 * (1 - 2 * z2))[z_mask]
        total = 2 * int(rh) + 2 * int(ri) + int(g.sum())
        remainder = total % 4
        # For stabilizer-row products the phase is always real (0 or 2).
        # Destabilizer rows can pick up imaginary phases (1 or 3) when
        # rowsummed with their anticommuting stabilizer partner; their
        # phase bit is never read by the algorithm, so any consistent
        # convention works — we round the phase's real sign.
        return remainder >= 2

    def measure(
        self,
        qubit: int,
        rng: np.random.Generator,
        forced_outcome: Optional[int] = None,
    ) -> int:
        """Measure ``qubit`` in the Z basis, collapsing the tableau.

        ``forced_outcome`` substitutes the coin flip for a random result
        (used by tests); it must not be supplied for deterministic
        outcomes.
        """
        self._check_qubit(qubit)
        n = self.num_qubits
        stabilizer_rows = np.nonzero(self.x[n:, qubit])[0]
        if stabilizer_rows.size:
            # Random outcome: some stabilizer anticommutes with Z_qubit.
            pivot = int(stabilizer_rows[0]) + n
            for row in range(2 * n):
                if row != pivot and self.x[row, qubit]:
                    self._rowsum_into(row, pivot)
            # Destabilizer takes the old stabilizer; new stabilizer = Z_q.
            self.x[pivot - n] = self.x[pivot]
            self.z[pivot - n] = self.z[pivot]
            self.r[pivot - n] = self.r[pivot]
            outcome = (
                int(forced_outcome)
                if forced_outcome is not None
                else int(rng.integers(2))
            )
            self.x[pivot] = False
            self.z[pivot] = False
            self.z[pivot, qubit] = True
            self.r[pivot] = bool(outcome)
            return outcome
        # Deterministic outcome: accumulate into a scratch row.
        scratch_x = np.zeros(n, dtype=bool)
        scratch_z = np.zeros(n, dtype=bool)
        scratch_r = False
        for destab_row in range(n):
            if self.x[destab_row, qubit]:
                stab_row = destab_row + n
                scratch_r = self._product_phase(
                    scratch_x,
                    scratch_z,
                    scratch_r,
                    self.x[stab_row],
                    self.z[stab_row],
                    self.r[stab_row],
                )
                scratch_x ^= self.x[stab_row]
                scratch_z ^= self.z[stab_row]
        return int(scratch_r)

    def measure_all(self, rng: np.random.Generator) -> str:
        """Measure every qubit in index order; returns the bitstring."""
        return "".join(
            str(self.measure(qubit, rng)) for qubit in range(self.num_qubits)
        )

    def sample_counts(
        self, shots: int, rng: np.random.Generator
    ) -> Dict[str, int]:
        """Sample ``shots`` full measurements (each on a fresh copy)."""
        counts: Dict[str, int] = {}
        for _ in range(shots):
            bits = self.copy().measure_all(rng)
            counts[bits] = counts.get(bits, 0) + 1
        return counts

    # -- inspection ---------------------------------------------------------------

    def stabilizer_strings(self) -> List[str]:
        """The n stabilizer generators as signed Pauli strings."""
        n = self.num_qubits
        strings = []
        for row in range(n, 2 * n):
            chars = []
            for qubit in range(n):
                xb, zb = self.x[row, qubit], self.z[row, qubit]
                chars.append(
                    "Y" if xb and zb else "X" if xb else "Z" if zb else "I"
                )
            sign = "-" if self.r[row] else "+"
            strings.append(sign + "".join(chars))
        return strings

    def __repr__(self) -> str:
        return f"StabilizerState(qubits={self.num_qubits})"


class StabilizerBackend(SimulationBackend):
    """Tableau execution behind the trial-reordering scheduler.

    Restricted to Clifford circuits (checked at construction); error
    operators are Paulis, so every noise model in this package is
    compatible.  Operation counting matches the other backends: one unit
    per gate application and per injected error.
    """

    def __init__(self, layered: LayeredCircuit) -> None:
        super().__init__(layered)
        not_clifford = sorted(
            {
                op.gate.name
                for layer in layered.layers
                for op in layer
                if op.gate.name not in CLIFFORD_GATES
            }
        )
        if not_clifford:
            raise StabilizerError(
                f"circuit contains non-Clifford gates: {not_clifford}"
            )
        self.live_states = 0
        self.peak_live_states = 0

    def _track_new_state(self) -> None:
        self.live_states += 1
        self.peak_live_states = max(self.peak_live_states, self.live_states)

    def make_initial(self) -> StabilizerState:
        self._track_new_state()
        return StabilizerState(self.layered.num_qubits)

    def copy_state(self, state: StabilizerState) -> StabilizerState:
        self._track_new_state()
        return state.copy()

    def release_state(self, state: StabilizerState) -> None:
        self.live_states -= 1

    def apply_layers(
        self, state: StabilizerState, start_layer: int, end_layer: int
    ) -> None:
        for layer_index in range(start_layer, end_layer):
            for op in self.layered.layers[layer_index]:
                state.apply_op(op)
        self.ops_applied += self.layered.gates_between(start_layer, end_layer)

    def apply_operator(
        self, state: StabilizerState, gate: Gate, qubits: Sequence[int]
    ) -> None:
        state.apply_gate(gate, qubits)
        self.ops_applied += 1

    def finish(self, state: StabilizerState) -> StabilizerState:
        return state.copy()

    def sample_clbits(
        self,
        payload: StabilizerState,
        measurements: Sequence[Measurement],
        rng: np.random.Generator,
    ) -> Dict[int, int]:
        """One joint measurement outcome from a final stabilizer state."""
        scratch = payload.copy()
        return {
            meas.clbit: scratch.measure(meas.qubit, rng)
            for meas in measurements
        }
