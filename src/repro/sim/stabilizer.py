"""Stabilizer (CHP) simulation: the Clifford fast path.

The paper positions its inter-trial optimization as *orthogonal* to
single-trial accelerations such as stabilizer simulation (Sec. II,
refs. [17, 18]).  This module demonstrates the composition: an
Aaronson-Gottesman tableau simulator whose states plug into the same
trial-reordering executor through :class:`StabilizerBackend`.  Because
the injected error operators are Paulis (Clifford), *any* Clifford
circuit — GHZ chains, stabilizer codes, the ``rb``/``bv`` benchmarks —
can be noisily simulated with hundreds of qubits, with the trial
reordering still eliminating the redundant tableau updates.

Tableau layout (Aaronson & Gottesman, PRA 70, 052328): binary matrices
``x`` and ``z`` of shape ``(2n, n)`` plus a phase column ``r``; rows
``0..n-1`` are destabilizers, rows ``n..2n-1`` stabilizers.  All row
updates are numpy-vectorized.
"""

from __future__ import annotations

from itertools import product as _iter_product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import GateOp, Measurement, QuantumCircuit
from ..circuits.gates import Gate
from ..circuits.layers import LayeredCircuit
from .backend import SimulationBackend
from .kernels import is_permutation_matrix

__all__ = [
    "CLIFFORD_GATES",
    "PauliFrame",
    "StabilizerError",
    "StabilizerState",
    "StabilizerBackend",
    "frame_safe_gate",
    "frame_safe_matrix",
    "is_clifford_circuit",
]

#: Gate names the tableau simulator implements directly or by composition.
CLIFFORD_GATES = frozenset(
    ["id", "x", "y", "z", "h", "s", "sdg", "sx", "cx", "cz", "cy", "swap"]
)


class StabilizerError(ValueError):
    """Raised for non-Clifford input."""


def is_clifford_circuit(circuit: QuantumCircuit) -> bool:
    """Whether every gate of ``circuit`` is in the supported Clifford set."""
    return all(
        op.gate.name in CLIFFORD_GATES for op in circuit.gate_ops()
    )


# ---------------------------------------------------------------------------
# Pauli frames: deferred error deltas for the hybrid Clifford fast path
# ---------------------------------------------------------------------------

#: The four exact quarter-turn units ``i**k`` as complex128 scalars.  Every
#: frame phase is one of these; multiplying an amplitude by them is exact
#: in IEEE arithmetic (component swap / sign flip, no rounding).
_UNITS = (
    np.complex128(1.0),
    np.complex128(1.0j),
    np.complex128(-1.0),
    np.complex128(-1.0j),
)

#: Placeholder generator for forced replays; every branch that could draw
#: from it is handed an explicit ``forced_outcome``, so it is never consulted.
_REPLAY_RNG = np.random.default_rng(0)

_PAULI_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_PAULI_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
_IDENTITY2 = np.eye(2, dtype=np.complex128)


def _local_pauli_matrix(x_bits: Tuple[int, ...], z_bits: Tuple[int, ...]) -> np.ndarray:
    """The exact matrix of ``prod_j X_j^{x_j} Z_j^{z_j}`` on ``len(x_bits)`` qubits.

    Entries are drawn from ``{0, +-1, +-i}`` with no rounding: products of
    the exact generator matrices stay exact.
    """
    result = None
    for x_bit, z_bit in zip(x_bits, z_bits):
        factor = _IDENTITY2
        if x_bit:
            factor = _PAULI_X
        if z_bit:
            factor = factor @ _PAULI_Z if x_bit else _PAULI_Z
        result = factor if result is None else np.kron(result, factor)
    return result


def _search_images(matrix: np.ndarray, num_qubits: int) -> Dict:
    """Conjugation images ``M P M^dagger = i^k P'`` for each Pauli generator.

    For every generator ``P`` in ``{X_j, Z_j}`` on the matrix's qubit
    positions, searches the canonical Pauli candidates for ``(x', z', k)``
    such that ``M @ P == _UNITS[k] * (P' @ M)`` holds **bitwise**
    (``np.array_equal``).  Both sides are exact rearrangements of the
    float entries of ``M`` (``P``/``P'`` have one exact-unit entry per
    column/row), so the check itself introduces no rounding: a hit proves
    the commutation identity holds for the stored float matrix exactly.
    Returns a possibly **partial** dict — generators without an image are
    simply absent (e.g. ``t`` maps ``Z`` to ``Z`` but has no ``X`` image),
    which lets frames whose support only touches the safe generators
    still cross the matrix.
    """
    if num_qubits > 2:
        return {}
    bit_space = list(_iter_product((0, 1), repeat=num_qubits))
    images: Dict = {}
    for position in range(num_qubits):
        for kind in ("x", "z"):
            bits = tuple(1 if j == position else 0 for j in range(num_qubits))
            zeros = (0,) * num_qubits
            x_bits, z_bits = (bits, zeros) if kind == "x" else (zeros, bits)
            pauli = _local_pauli_matrix(x_bits, z_bits)
            lhs = matrix @ pauli
            found = None
            for cand_x in bit_space:
                for cand_z in bit_space:
                    rhs = _local_pauli_matrix(cand_x, cand_z) @ matrix
                    for k in range(4):
                        if np.array_equal(lhs, _UNITS[k] * rhs):
                            found = (cand_x, cand_z, k)
                            break
                    if found:
                        break
                if found:
                    break
            if found is not None:
                images[(position, kind)] = found
    return images


def _exact_entries(matrix: np.ndarray) -> bool:
    """True when every entry of ``matrix`` is exactly in ``{0, +-1, +-i}``."""
    flat = np.asarray(matrix, dtype=np.complex128).reshape(-1)
    allowed = np.zeros(flat.shape, dtype=bool)
    for value in (0.0,) + tuple(_UNITS):
        allowed |= flat == value
    return bool(allowed.all())


_PHASE_TRANSPARENT_CACHE: Dict[bytes, bool] = {}


def _phase_transparent(matrix: np.ndarray) -> bool:
    """True when a global ``i^{+-1}`` factor commutes bitwise through it.

    An odd frame phase swaps the real and imaginary component of *every*
    amplitude.  NumPy's vectorized complex multiply fuses one of the two
    cross products per component (FMA), and the swap exchanges which
    product lands in the fused slot — so ``c * (i*v)`` and ``i * (c*v)``
    can differ by one ulp whenever ``c`` has both a nonzero real and a
    nonzero imaginary part.  Purely real and purely imaginary entries
    keep each fused product on the same operand pair under the swap, so
    a matrix whose entries all satisfy ``re == 0 or im == 0`` is
    transparent to odd phases; anything else (e.g. the ``e^{-i pi/4}``
    diagonal of a device-basis QFT) is not, even on disjoint qubits.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.complex128)
    key = matrix.tobytes()
    cached = _PHASE_TRANSPARENT_CACHE.get(key)
    if cached is None:
        flat = matrix.reshape(-1)
        cached = bool(((flat.real == 0.0) | (flat.imag == 0.0)).all())
        _PHASE_TRANSPARENT_CACHE[key] = cached
    return cached


#: matrix bytes -> (arith_safe, partial images dict); the safety verdict of
#: one float matrix is a pure function of its bytes, so fused kernel
#: products and gate matrices share one cache.
_MATRIX_SAFETY_CACHE: Dict[bytes, Tuple[bool, Dict]] = {}
_GENERATOR_CACHE: Dict = {}
_CONJUGATION_CACHE: Dict = {}


def _matrix_safety(matrix: np.ndarray) -> Tuple[bool, Dict]:
    """(arithmetic-transfer ok, partial generator images) for a matrix.

    ``arith_safe`` answers: does a bitwise matrix-level commutation
    identity transfer to the kernel-application level?  True when

    * the matrix acts on one qubit — every 1q kernel computes each output
      amplitude from at most a two-term sum, and two-term IEEE sums
      commute with the operand reorder a Pauli induces, or
    * every entry is an exact unit (``{0, +-1, +-i}``) — an exact-entry
      unitary is monomial, so its kernels only copy and unit-scale, or
    * the matrix is a phase permutation (diagonals included) — each
      output amplitude is a single product, and pulling an exact unit
      through a single complex multiply is rounding-free.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.complex128)
    key = matrix.tobytes()
    cached = _MATRIX_SAFETY_CACHE.get(key)
    if cached is not None:
        return cached
    num_qubits = int(matrix.shape[0]).bit_length() - 1
    arith_safe = (
        num_qubits == 1
        or _exact_entries(matrix)
        or is_permutation_matrix(matrix)
    )
    images = _search_images(matrix, num_qubits) if arith_safe else {}
    result = (arith_safe, images)
    _MATRIX_SAFETY_CACHE[key] = result
    return result


def _gate_generator_images(gate: Gate) -> Dict:
    key = gate._key
    if key not in _GENERATOR_CACHE:
        matrix = np.asarray(gate.matrix, dtype=np.complex128)
        _GENERATOR_CACHE[key] = _search_images(matrix, gate.num_qubits)
    return _GENERATOR_CACHE[key]


def frame_safe_gate(gate: Gate) -> bool:
    """Whether *any* Pauli frame may cross ``gate`` bit-exactly.

    Three conditions, all decided from the gate's float matrix:

    * every Pauli generator on the gate's qubits has an exact conjugation
      image (``_search_images``),
    * the commutation identity transfers from the matrix level to the
      kernel-application level (``_matrix_safety``), and
    * an odd global frame phase commutes through the kernel
      (:func:`_phase_transparent`) — "any frame" includes ``i^{+-1}``
      frames, which re/im-swap every amplitude.

    Frames whose support only touches a gate's *safe* generators may
    still cross a gate that fails this full check — e.g. a ``Z`` frame
    commutes exactly with the non-Clifford ``t`` — which
    :meth:`PauliFrame.try_conjugate_matrix` decides per frame.
    """
    matrix = np.asarray(gate.matrix)
    arith_safe, images = _matrix_safety(matrix)
    return (
        arith_safe
        and len(images) == 2 * gate.num_qubits
        and _phase_transparent(matrix)
    )


def _compose_images(
    images: Dict,
    num_qubits: int,
    x_bits: Tuple[int, ...],
    z_bits: Tuple[int, ...],
) -> Optional[Tuple[int, Tuple[int, ...], Tuple[int, ...]]]:
    """Image ``(k, x', z')`` of a local Pauli under ``M . M^dagger``.

    Composes the generator images in the canonical factor order
    ``X_0^{x_0} Z_0^{z_0} X_1^{x_1} Z_1^{z_1}``; the Pauli-product phase
    bookkeeping is exact integer arithmetic mod 4.  Returns ``None`` when
    a needed generator has no image.
    """
    acc_phase = 0
    acc_x = [0] * num_qubits
    acc_z = [0] * num_qubits
    for position in range(num_qubits):
        for kind, present in (("x", x_bits[position]), ("z", z_bits[position])):
            if not present:
                continue
            image = images.get((position, kind))
            if image is None:
                return None
            img_x, img_z, img_k = image
            # acc := acc * image  (i^a X^ax Z^az)(i^b X^bx Z^bz)
            acc_phase += img_k + 2 * sum(
                acc_z[j] & img_x[j] for j in range(num_qubits)
            )
            for j in range(num_qubits):
                acc_x[j] ^= img_x[j]
                acc_z[j] ^= img_z[j]
    return (acc_phase % 4, tuple(acc_x), tuple(acc_z))


def _conjugate_bits(
    gate: Gate, x_bits: Tuple[int, ...], z_bits: Tuple[int, ...]
) -> Optional[Tuple[int, Tuple[int, ...], Tuple[int, ...]]]:
    """Memoized per-gate wrapper around :func:`_compose_images`."""
    key = (gate._key, x_bits, z_bits)
    cached = _CONJUGATION_CACHE.get(key)
    if cached is not None or key in _CONJUGATION_CACHE:
        return cached
    arith_safe, images = _matrix_safety(np.asarray(gate.matrix))
    if not arith_safe:
        result = None
    else:
        result = _compose_images(images, gate.num_qubits, x_bits, z_bits)
    _CONJUGATION_CACHE[key] = result
    return result


def frame_safe_matrix(matrix: np.ndarray) -> bool:
    """:func:`frame_safe_gate` for a raw unitary matrix (fused kernels)."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    num_qubits = int(matrix.shape[0]).bit_length() - 1
    arith_safe, images = _matrix_safety(matrix)
    return (
        arith_safe
        and len(images) == 2 * num_qubits
        and _phase_transparent(matrix)
    )


class PauliFrame:
    """A deferred Pauli error: ``i^phase * prod_q X_q^{x_q} Z_q^{z_q}``.

    The hybrid executor carries one frame per trie node instead of a full
    materialized statevector: injected Pauli errors left-multiply the
    frame, Clifford layer advances conjugate it, and materialization
    applies it to the shared anchor state with exact arithmetic only
    (axis flips, sign flips, quarter-turn units) — so the materialized
    amplitudes are bit-identical to the serial dense execution.
    """

    __slots__ = ("num_qubits", "x", "z", "phase")

    def __init__(self, num_qubits: int) -> None:
        self.num_qubits = int(num_qubits)
        self.x = np.zeros(self.num_qubits, dtype=bool)
        self.z = np.zeros(self.num_qubits, dtype=bool)
        self.phase = 0  # exponent of i, mod 4

    def copy(self) -> "PauliFrame":
        dup = PauliFrame.__new__(PauliFrame)
        dup.num_qubits = self.num_qubits
        dup.x = self.x.copy()
        dup.z = self.z.copy()
        dup.phase = self.phase
        return dup

    @property
    def is_identity(self) -> bool:
        return self.phase == 0 and not self.x.any() and not self.z.any()

    def key(self) -> Tuple:
        """Hashable identity (for materialization memo keys)."""
        return (self.phase, self.x.tobytes(), self.z.tobytes())

    # -- composition ---------------------------------------------------------

    def inject(self, pauli: str, qubit: int) -> None:
        """Left-multiply by an injected Pauli error operator on ``qubit``."""
        if pauli == "x":
            self.x[qubit] ^= True
        elif pauli == "z":
            self.phase = (self.phase + 2 * int(self.x[qubit])) % 4
            self.z[qubit] ^= True
        elif pauli == "y":
            # Y = i X Z: right factor first, then X, then the i.
            self.phase = (self.phase + 2 * int(self.x[qubit]) + 1) % 4
            self.z[qubit] ^= True
            self.x[qubit] ^= True
        else:
            raise StabilizerError(f"not a Pauli error: {pauli!r}")

    def conjugate(self, gate: Gate, qubits: Sequence[int]) -> None:
        """Push the frame through ``gate``: ``F <- G F G^dagger``.

        Only the bits on the gate's qubits change; gates on qubits where
        the frame is the identity are free.  Raises for gates without an
        exact conjugation image (the hybrid classifier excludes them).
        """
        x_bits = tuple(int(self.x[q]) for q in qubits)
        z_bits = tuple(int(self.z[q]) for q in qubits)
        if not any(x_bits) and not any(z_bits):
            return
        image = _conjugate_bits(gate, x_bits, z_bits)
        if image is None:
            raise StabilizerError(
                f"gate {gate.name!r} has no exact Pauli conjugation image"
            )
        delta, new_x, new_z = image
        self.phase = (self.phase + delta) % 4
        for position, qubit in enumerate(qubits):
            self.x[qubit] = bool(new_x[position])
            self.z[qubit] = bool(new_z[position])

    def conjugate_layers(
        self, layered: LayeredCircuit, start_layer: int, end_layer: int
    ) -> None:
        """Conjugate through all gates of layers ``start .. end - 1``."""
        for layer_index in range(start_layer, end_layer):
            for op in layered.layers[layer_index]:
                self.conjugate(op.gate, op.qubits)

    def try_conjugate_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> bool:
        """Push the frame through a raw kernel matrix, if bit-exactly safe.

        This is the fused-kernel analogue of :meth:`conjugate`: the hybrid
        executor crosses frames through the *same* matrices the compiled
        segment programs apply (single-qubit fusion included), so the
        commutation identity it relies on is checked against exactly the
        floats the serial path multiplies with.  Returns ``True`` and
        mutates the frame on success; returns ``False`` with the frame
        unchanged when the matrix is arithmetically unsafe or a generator
        in the frame's support has no exact image.

        A frame with an odd global phase (``i^{+-1}``) additionally
        requires the matrix to be :func:`_phase_transparent` — even on
        disjoint qubits — because the serial reference bakes the ``i``
        into every amplitude *before* the kernel multiplies, and NumPy's
        fused complex multiply rounds re/im-swapped operands differently
        for entries with both components nonzero.
        """
        if self.phase & 1 and not _phase_transparent(matrix):
            return False
        x_bits = tuple(int(self.x[q]) for q in qubits)
        z_bits = tuple(int(self.z[q]) for q in qubits)
        if not any(x_bits) and not any(z_bits):
            return True
        arith_safe, images = _matrix_safety(np.asarray(matrix))
        if not arith_safe:
            return False
        image = _compose_images(images, len(qubits), x_bits, z_bits)
        if image is None:
            return False
        delta, new_x, new_z = image
        self.phase = (self.phase + delta) % 4
        for position, qubit in enumerate(qubits):
            self.x[qubit] = bool(new_x[position])
            self.z[qubit] = bool(new_z[position])
        return True

    # -- application ---------------------------------------------------------

    def apply_to_tensor(self, tensor: np.ndarray) -> np.ndarray:
        """Apply the frame to a ``(2,)*n`` amplitude tensor, exactly.

        Returns a fresh C-contiguous array; ``tensor`` is not modified.
        Z factors flip signs on the ``1`` slices, X factors reverse axes,
        and the global ``i^phase`` is an exact quarter-turn — every step
        is rounding-free, so the result is bitwise equal to applying the
        same Paulis through the kernel path.
        """
        out = tensor.copy()
        for qubit in np.nonzero(self.z)[0]:
            index = [slice(None)] * out.ndim
            index[qubit] = 1
            out[tuple(index)] *= -1.0
        x_axes = tuple(int(q) for q in np.nonzero(self.x)[0])
        view = np.flip(out, axis=x_axes) if x_axes else out
        if self.phase:
            return np.ascontiguousarray(view * _UNITS[self.phase])
        return np.ascontiguousarray(view)

    def __repr__(self) -> str:
        paulis = []
        for qubit in range(self.num_qubits):
            xb, zb = bool(self.x[qubit]), bool(self.z[qubit])
            if xb or zb:
                label = "Y" if xb and zb else "X" if xb else "Z"
                paulis.append(f"{label}{qubit}")
        body = ".".join(paulis) if paulis else "I"
        return f"PauliFrame(i^{self.phase} * {body})"


class StabilizerState:
    """An ``n``-qubit stabilizer state as a CHP tableau."""

    __slots__ = ("num_qubits", "x", "z", "r")

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError(f"need at least one qubit, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        n = self.num_qubits
        self.x = np.zeros((2 * n, n), dtype=bool)
        self.z = np.zeros((2 * n, n), dtype=bool)
        self.r = np.zeros(2 * n, dtype=bool)
        self.x[np.arange(n), np.arange(n)] = True          # destabilizers X_i
        self.z[n + np.arange(n), np.arange(n)] = True      # stabilizers   Z_i

    def copy(self) -> "StabilizerState":
        dup = StabilizerState.__new__(StabilizerState)
        dup.num_qubits = self.num_qubits
        dup.x = self.x.copy()
        dup.z = self.z.copy()
        dup.r = self.r.copy()
        return dup

    # -- elementary gates ----------------------------------------------------

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(
                f"qubit {qubit} out of range for {self.num_qubits} qubits"
            )

    def h(self, qubit: int) -> None:
        self._check_qubit(qubit)
        xa, za = self.x[:, qubit].copy(), self.z[:, qubit].copy()
        self.r ^= xa & za
        self.x[:, qubit], self.z[:, qubit] = za, xa

    def s(self, qubit: int) -> None:
        self._check_qubit(qubit)
        xa, za = self.x[:, qubit], self.z[:, qubit]
        self.r ^= xa & za
        self.z[:, qubit] = za ^ xa

    def sdg(self, qubit: int) -> None:
        # S^dagger = Z S
        self.z_gate(qubit)
        self.s(qubit)

    def x_gate(self, qubit: int) -> None:
        self._check_qubit(qubit)
        self.r ^= self.z[:, qubit]

    def z_gate(self, qubit: int) -> None:
        self._check_qubit(qubit)
        self.r ^= self.x[:, qubit]

    def y_gate(self, qubit: int) -> None:
        self._check_qubit(qubit)
        self.r ^= self.x[:, qubit] ^ self.z[:, qubit]

    def cx(self, control: int, target: int) -> None:
        self._check_qubit(control)
        self._check_qubit(target)
        if control == target:
            raise ValueError("control equals target")
        xc, zc = self.x[:, control], self.z[:, control]
        xt, zt = self.x[:, target], self.z[:, target]
        self.r ^= xc & zt & (xt ^ zc ^ True)
        self.x[:, target] = xt ^ xc
        self.z[:, control] = zc ^ zt

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cx(a, b)
        self.h(b)

    def cy(self, control: int, target: int) -> None:
        self.sdg(target)
        self.cx(control, target)
        self.s(target)

    def swap(self, a: int, b: int) -> None:
        self.cx(a, b)
        self.cx(b, a)
        self.cx(a, b)

    def sx(self, qubit: int) -> None:
        # sqrt(X) = H S H up to global phase (irrelevant for stabilizers).
        self.h(qubit)
        self.s(qubit)
        self.h(qubit)

    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> "StabilizerState":
        name = gate.name
        if name not in CLIFFORD_GATES:
            raise StabilizerError(f"gate {name!r} is not Clifford")
        if name == "id":
            pass
        elif name == "x":
            self.x_gate(*qubits)
        elif name == "y":
            self.y_gate(*qubits)
        elif name == "z":
            self.z_gate(*qubits)
        elif name == "h":
            self.h(*qubits)
        elif name == "s":
            self.s(*qubits)
        elif name == "sdg":
            self.sdg(*qubits)
        elif name == "sx":
            self.sx(*qubits)
        elif name == "cx":
            self.cx(*qubits)
        elif name == "cz":
            self.cz(*qubits)
        elif name == "cy":
            self.cy(*qubits)
        elif name == "swap":
            self.swap(*qubits)
        return self

    def apply_op(self, op: GateOp) -> "StabilizerState":
        return self.apply_gate(op.gate, op.qubits)

    # -- measurement ------------------------------------------------------------

    def _rowsum_into(self, target_row: int, source_row: int) -> None:
        """Row ``target`` *= row ``source`` with correct phase tracking."""
        self.r[target_row] = self._product_phase(
            self.x[target_row],
            self.z[target_row],
            self.r[target_row],
            self.x[source_row],
            self.z[source_row],
            self.r[source_row],
        )
        self.x[target_row] ^= self.x[source_row]
        self.z[target_row] ^= self.z[source_row]

    @staticmethod
    def _product_phase(xh, zh, rh, xi, zi, ri) -> bool:
        """Phase bit of the Pauli product row_i * row_h (CHP's rowsum)."""
        # g(x1,z1,x2,z2) per Aaronson-Gottesman, vectorized over columns.
        x1, z1 = xi.astype(np.int8), zi.astype(np.int8)
        x2, z2 = xh.astype(np.int8), zh.astype(np.int8)
        g = np.zeros_like(x1)
        y_mask = (x1 == 1) & (z1 == 1)
        x_mask = (x1 == 1) & (z1 == 0)
        z_mask = (x1 == 0) & (z1 == 1)
        g[y_mask] = (z2 - x2)[y_mask]
        g[x_mask] = (z2 * (2 * x2 - 1))[x_mask]
        g[z_mask] = (x2 * (1 - 2 * z2))[z_mask]
        total = 2 * int(rh) + 2 * int(ri) + int(g.sum())
        remainder = total % 4
        # For stabilizer-row products the phase is always real (0 or 2).
        # Destabilizer rows can pick up imaginary phases (1 or 3) when
        # rowsummed with their anticommuting stabilizer partner; their
        # phase bit is never read by the algorithm, so any consistent
        # convention works — we round the phase's real sign.
        return remainder >= 2

    def measure(
        self,
        qubit: int,
        rng: np.random.Generator,
        forced_outcome: Optional[int] = None,
    ) -> int:
        """Measure ``qubit`` in the Z basis, collapsing the tableau.

        ``forced_outcome`` substitutes the coin flip for a random result
        (used by tests); it must not be supplied for deterministic
        outcomes.
        """
        self._check_qubit(qubit)
        n = self.num_qubits
        stabilizer_rows = np.nonzero(self.x[n:, qubit])[0]
        if stabilizer_rows.size:
            # Random outcome: some stabilizer anticommutes with Z_qubit.
            pivot = int(stabilizer_rows[0]) + n
            for row in range(2 * n):
                if row != pivot and self.x[row, qubit]:
                    self._rowsum_into(row, pivot)
            # Destabilizer takes the old stabilizer; new stabilizer = Z_q.
            self.x[pivot - n] = self.x[pivot]
            self.z[pivot - n] = self.z[pivot]
            self.r[pivot - n] = self.r[pivot]
            outcome = (
                int(forced_outcome)
                if forced_outcome is not None
                else int(rng.integers(2))
            )
            self.x[pivot] = False
            self.z[pivot] = False
            self.z[pivot, qubit] = True
            self.r[pivot] = bool(outcome)
            return outcome
        # Deterministic outcome: accumulate into a scratch row.
        scratch_x = np.zeros(n, dtype=bool)
        scratch_z = np.zeros(n, dtype=bool)
        scratch_r = False
        for destab_row in range(n):
            if self.x[destab_row, qubit]:
                stab_row = destab_row + n
                scratch_r = self._product_phase(
                    scratch_x,
                    scratch_z,
                    scratch_r,
                    self.x[stab_row],
                    self.z[stab_row],
                    self.r[stab_row],
                )
                scratch_x ^= self.x[stab_row]
                scratch_z ^= self.z[stab_row]
        return int(scratch_r)

    def measure_all(self, rng: np.random.Generator) -> str:
        """Measure every qubit in index order; returns the bitstring."""
        return "".join(
            str(self.measure(qubit, rng)) for qubit in range(self.num_qubits)
        )

    def _forced_replay(
        self, coins: Sequence[int]
    ) -> Tuple[np.ndarray, int]:
        """Replay ``measure_all`` on a copy with explicit coin bits.

        Each random branch consumes the next entry of ``coins`` as its
        forced outcome; deterministic branches consume nothing.  Returns
        the outcome bits (qubit order) and the number of coins consumed.
        """
        scratch = self.copy()
        n = self.num_qubits
        outcomes = np.zeros(n, dtype=np.uint8)
        consumed = 0
        for qubit in range(n):
            forced: Optional[int] = 0
            if scratch.x[n:, qubit].any():
                forced = int(coins[consumed]) if consumed < len(coins) else 0
                consumed += 1
            outcomes[qubit] = scratch.measure(
                qubit, _REPLAY_RNG, forced_outcome=forced
            )
        return outcomes, consumed

    def sample_counts(
        self, shots: int, rng: np.random.Generator
    ) -> Dict[str, int]:
        """Sample ``shots`` full measurements, vectorized over shots.

        Sequential measurement outcomes are affine over GF(2) in the
        random coin bits: which branches are random (and the pivot
        structure) depends only on the coin-independent x/z evolution,
        and phase rows update by XOR.  So ``shots`` independent replays
        collapse to ``k + 1`` forced replays (baseline plus one per
        coin) and one boolean matrix product, tallied via ``np.unique``
        — the same idiom ``Statevector.sample_counts`` uses.
        """
        if shots <= 0:
            return {}
        n = self.num_qubits
        zeros = np.zeros(n, dtype=np.uint8)
        base, num_coins = self._forced_replay(zeros)
        if num_coins == 0:
            bits = "".join(str(int(b)) for b in base)
            return {bits: int(shots)}
        columns = np.zeros((num_coins, n), dtype=np.uint8)
        for coin in range(num_coins):
            unit = zeros.copy()
            unit[coin] = 1
            outcome, _ = self._forced_replay(unit)
            columns[coin] = outcome ^ base
        draws = rng.integers(0, 2, size=(shots, num_coins), dtype=np.uint8)
        parity = (draws.astype(np.int64) @ columns.astype(np.int64)) & 1
        outcomes = base ^ parity.astype(np.uint8)
        unique_rows, tallies = np.unique(outcomes, axis=0, return_counts=True)
        return {
            "".join(str(int(b)) for b in row): int(count)
            for row, count in zip(unique_rows, tallies)
        }

    def to_statevector(self) -> np.ndarray:
        """Dense amplitudes of the stabilized state, shape ``(2**n,)``.

        Projects a deterministic basis state onto the stabilizer group:
        ``v = prod_i (I + S_i) |b>`` where ``b`` comes from a forced
        all-zero-coin replay, then normalizes.  The global phase is fixed
        by the ``b`` amplitude being real positive.  This is the
        check-mode oracle (compare up to global phase) — the hybrid
        executor's bit-exact materialization path never uses it.
        """
        n = self.num_qubits
        base, _ = self._forced_replay(np.zeros(n, dtype=np.uint8))
        tensor = np.zeros((2,) * n, dtype=np.complex128)
        tensor[tuple(int(b) for b in base)] = 1.0
        for row in range(n, 2 * n):
            image = tensor.copy()
            for qubit in np.nonzero(self.z[row])[0]:
                index = [slice(None)] * n
                index[qubit] = 1
                image[tuple(index)] *= -1.0
            x_axes = tuple(int(q) for q in np.nonzero(self.x[row])[0])
            if x_axes:
                image = np.flip(image, axis=x_axes)
            unit = (
                2 * int(self.r[row])
                + int(np.count_nonzero(self.x[row] & self.z[row]))
            ) % 4
            if unit:
                image = image * _UNITS[unit]
            tensor = tensor + image
        vector = tensor.reshape(-1)
        return vector / np.linalg.norm(vector)

    # -- inspection ---------------------------------------------------------------

    def stabilizer_strings(self) -> List[str]:
        """The n stabilizer generators as signed Pauli strings."""
        n = self.num_qubits
        strings = []
        for row in range(n, 2 * n):
            chars = []
            for qubit in range(n):
                xb, zb = self.x[row, qubit], self.z[row, qubit]
                chars.append(
                    "Y" if xb and zb else "X" if xb else "Z" if zb else "I"
                )
            sign = "-" if self.r[row] else "+"
            strings.append(sign + "".join(chars))
        return strings

    def __repr__(self) -> str:
        return f"StabilizerState(qubits={self.num_qubits})"


class StabilizerBackend(SimulationBackend):
    """Tableau execution behind the trial-reordering scheduler.

    Restricted to Clifford circuits (checked at construction); error
    operators are Paulis, so every noise model in this package is
    compatible.  Operation counting matches the other backends: one unit
    per gate application and per injected error.
    """

    def __init__(self, layered: LayeredCircuit) -> None:
        super().__init__(layered)
        not_clifford = sorted(
            {
                op.gate.name
                for layer in layered.layers
                for op in layer
                if op.gate.name not in CLIFFORD_GATES
            }
        )
        if not_clifford:
            raise StabilizerError(
                f"circuit contains non-Clifford gates: {not_clifford}"
            )
        self.live_states = 0
        self.peak_live_states = 0

    def _track_new_state(self) -> None:
        self.live_states += 1
        self.peak_live_states = max(self.peak_live_states, self.live_states)
        if self.recorder:
            self.recorder.gauge("tableau.live", self.live_states)

    def make_initial(self) -> StabilizerState:
        self._track_new_state()
        return StabilizerState(self.layered.num_qubits)

    def copy_state(self, state: StabilizerState) -> StabilizerState:
        self._track_new_state()
        return state.copy()

    def release_state(self, state: StabilizerState) -> None:
        self.live_states -= 1
        if self.recorder:
            self.recorder.gauge("tableau.live", self.live_states)

    def apply_layers(
        self, state: StabilizerState, start_layer: int, end_layer: int
    ) -> None:
        for layer_index in range(start_layer, end_layer):
            for op in self.layered.layers[layer_index]:
                state.apply_op(op)
        self.ops_applied += self.layered.gates_between(start_layer, end_layer)

    def apply_operator(
        self, state: StabilizerState, gate: Gate, qubits: Sequence[int]
    ) -> None:
        state.apply_gate(gate, qubits)
        self.ops_applied += 1

    def finish(self, state: StabilizerState) -> StabilizerState:
        return state.copy()

    def finish_view(self, state: StabilizerState) -> StabilizerState:
        """Payload without copying; caller must release ``state`` after."""
        return state

    def sample_clbits(
        self,
        payload: StabilizerState,
        measurements: Sequence[Measurement],
        rng: np.random.Generator,
    ) -> Dict[int, int]:
        """One joint measurement outcome from a final stabilizer state."""
        scratch = payload.copy()
        return {
            meas.clbit: scratch.measure(meas.qubit, rng)
            for meas in measurements
        }
