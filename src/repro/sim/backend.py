"""The execution-backend protocol shared by real and counting simulation.

The trial-reordering scheduler (:mod:`repro.core.schedule`) is written once
against this small protocol and runs unchanged on two backends:

* :class:`~repro.sim.statevector_backend.StatevectorBackend` — real numpy
  amplitudes; ``finish`` returns the per-trial final state, so results can be
  compared bit-for-bit against baseline re-execution.
* :class:`~repro.sim.counting.CountingBackend` — no amplitudes at all;
  segment costs are added in closed form from per-layer gate counts, which is
  what makes the paper's 40-qubit scalability study (Figs. 7–8) runnable.

Every backend keeps an operation counter with the paper's metric: one unit
per matrix-vector multiplication, i.e. per gate application and per injected
error operator.  Measurements and classical bit flips are free.
"""

from __future__ import annotations

import abc
from typing import Any, Optional, Sequence

import numpy as np

from ..circuits.gates import Gate
from ..circuits.layers import LayeredCircuit
from .statevector import Statevector, require_state_layout

__all__ = ["SimulationBackend", "StatevectorBackend"]


class SimulationBackend(abc.ABC):
    """Abstract state factory + evolver with basic-operation accounting."""

    def __init__(self, layered: LayeredCircuit) -> None:
        self.layered = layered
        self.ops_applied = 0
        #: Optional :class:`~repro.obs.recorder.TraceRecorder`; attached by
        #: the executor at run start.  Backends that instrument their hot
        #: path must guard every touch with a single ``if self.recorder:``.
        self.recorder = None

    def reset_counter(self) -> None:
        self.ops_applied = 0

    def set_recorder(self, recorder) -> None:
        """Attach (or detach, with ``None``) a trace recorder."""
        self.recorder = recorder

    # -- state lifecycle ------------------------------------------------------

    @abc.abstractmethod
    def make_initial(self) -> Any:
        """A fresh state at layer 0 (|0...0>)."""

    @abc.abstractmethod
    def copy_state(self, state: Any) -> Any:
        """An independent snapshot of ``state`` (for the prefix cache)."""

    def adopt_state(self, state: Any) -> Any:
        """Take ownership of an externally created state (live-state hook).

        The parallel executor hands each worker its sub-plan's entry state
        (deserialized from shared memory); backends that track live states
        count it here exactly as they would a ``make_initial`` state.
        """
        return state

    def release_state(self, state: Any) -> None:
        """Hook for backends that track live states; default is a no-op."""

    # -- evolution ---------------------------------------------------------------

    @abc.abstractmethod
    def apply_layers(self, state: Any, start_layer: int, end_layer: int) -> None:
        """Apply all gates in layers ``start_layer .. end_layer - 1``."""

    @abc.abstractmethod
    def apply_operator(self, state: Any, gate: Gate, qubits: Sequence[int]) -> None:
        """Apply one injected error operator (one basic operation)."""

    @abc.abstractmethod
    def finish(self, state: Any) -> Any:
        """Produce the per-trial payload from a state at the final layer."""

    def finish_view(self, state: Any) -> Any:
        """Like :meth:`finish`, but the payload may *borrow* ``state``.

        The executor calls this instead of :meth:`finish` when the working
        state is dropped immediately after the ``Finish`` instruction (the
        next instruction is a ``Restore``, or the plan ends) — the state
        will never be mutated again, so a defensive copy buys nothing.
        The payload is only guaranteed stable for backends that never
        recycle a released state's buffer; both statevector backends
        satisfy that (release is accounting-only).  Default: fall back to
        the copying :meth:`finish`.
        """
        return self.finish(state)

    def sample_clbits(
        self, payload: Any, measurements: Sequence[Any], rng: np.random.Generator
    ) -> Optional[dict]:
        """Sample one joint measurement outcome from a finish payload.

        Returns ``clbit -> bit`` or ``None`` for backends without readout
        (the counting backend).  Default: no readout.
        """
        return None


class StatevectorBackend(SimulationBackend):
    """Real dense statevector execution."""

    def __init__(self, layered: LayeredCircuit) -> None:
        super().__init__(layered)
        self.live_states = 0
        self.peak_live_states = 0

    def _track_new_state(self) -> None:
        self.live_states += 1
        self.peak_live_states = max(self.peak_live_states, self.live_states)

    def make_initial(self) -> Statevector:
        self._track_new_state()
        return Statevector(self.layered.num_qubits)

    def copy_state(self, state: Statevector) -> Statevector:
        self._track_new_state()
        return state.copy()

    def adopt_state(self, state: Statevector) -> Statevector:
        # Externally built states (shared-memory entry snapshots, spill
        # reloads) are the one place a badly laid-out buffer could reach
        # the kernels; fail loudly instead of degrading to copy semantics.
        require_state_layout(state._tensor, "adopt_state")
        self._track_new_state()
        return state

    def release_state(self, state: Statevector) -> None:
        self.live_states -= 1

    def apply_layers(self, state: Statevector, start_layer: int, end_layer: int) -> None:
        for layer_index in range(start_layer, end_layer):
            for op in self.layered.layers[layer_index]:
                state.apply_op(op)
        self.ops_applied += self.layered.gates_between(start_layer, end_layer)

    def apply_operator(self, state: Statevector, gate: Gate, qubits: Sequence[int]) -> None:
        state.apply_gate(gate, qubits)
        self.ops_applied += 1

    def finish(self, state: Statevector) -> Statevector:
        """Return the trial's final statevector (caller owns the copy)."""
        return state.copy()

    def finish_view(self, state: Statevector) -> Statevector:
        """The final state itself, uncopied.

        Sound because ``release_state`` is accounting-only and the
        compiled backend's scratch buffer is never a live state's tensor:
        once the executor stops touching this state object, its amplitudes
        are immutable.  Callbacks that retain the payload past the
        ``on_finish`` call must copy it (the runner and the perf harness
        both do).
        """
        return state

    def sample_clbits(
        self, payload: Statevector, measurements: Sequence[Any], rng: np.random.Generator
    ) -> dict:
        from .measurement import sample_measurements

        return sample_measurements(payload, measurements, rng)
