"""Density-matrix simulation (exact noise channels).

The paper's Sec. II discusses density-matrix simulation as the exact
alternative to Monte-Carlo trial sampling: a single pass evolves the full
``2**n x 2**n`` density operator through unitary conjugation and Kraus
channels.  We use it as the *ground truth* the Monte-Carlo ensemble must
converge to — the cross-validation suite checks that averaging trial
statevectors reproduces the channel result.

The tensor layout mirrors :mod:`repro.sim.statevector`: the density matrix
is stored as a ``(2,) * 2n`` tensor whose first ``n`` axes are row (ket)
indices and last ``n`` axes are column (bra) indices, qubit 0 most
significant.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..circuits.circuit import GateOp, QuantumCircuit
from ..circuits.gates import Gate
from .statevector import Statevector

__all__ = ["DensityMatrix", "run_circuit_density", "run_layered_density"]


class DensityMatrix:
    """Mutable ``n``-qubit mixed state."""

    __slots__ = ("num_qubits", "_tensor")

    def __init__(self, num_qubits: int, matrix: Optional[np.ndarray] = None) -> None:
        if num_qubits < 1:
            raise ValueError(f"need at least one qubit, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        dim = 2**self.num_qubits
        if matrix is None:
            matrix = np.zeros((dim, dim), dtype=np.complex128)
            matrix[0, 0] = 1.0
        else:
            matrix = np.asarray(matrix, dtype=np.complex128)
            if matrix.shape != (dim, dim):
                raise ValueError(
                    f"density matrix must be {dim}x{dim}, got {matrix.shape}"
                )
            matrix = matrix.copy()
        self._tensor = matrix.reshape((2,) * (2 * self.num_qubits))

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        vec = state.vector
        return cls(state.num_qubits, np.outer(vec, vec.conj()))

    @property
    def matrix(self) -> np.ndarray:
        dim = 2**self.num_qubits
        return self._tensor.reshape(dim, dim)

    def copy(self) -> "DensityMatrix":
        return DensityMatrix(self.num_qubits, self.matrix)

    def trace(self) -> float:
        return float(np.real(np.trace(self.matrix)))

    def purity(self) -> float:
        mat = self.matrix
        return float(np.real(np.trace(mat @ mat)))

    # -- evolution ---------------------------------------------------------------

    def _apply_one_side(
        self, matrix: np.ndarray, qubits: Sequence[int], side: str
    ) -> None:
        """Contract ``matrix`` into the ket (row) or bra (column) indices."""
        k = len(qubits)
        if side == "ket":
            axes = tuple(qubits)
            gate_tensor = matrix.reshape((2,) * (2 * k))
        else:
            axes = tuple(q + self.num_qubits for q in qubits)
            gate_tensor = matrix.conj().reshape((2,) * (2 * k))
        contracted = np.tensordot(
            gate_tensor, self._tensor, axes=(tuple(range(k, 2 * k)), axes)
        )
        self._tensor = np.moveaxis(contracted, tuple(range(k)), axes)

    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> "DensityMatrix":
        """In-place conjugation ``rho -> U rho U^dagger``."""
        matrix = np.asarray(matrix, dtype=np.complex128)
        self._apply_one_side(matrix, qubits, "ket")
        self._apply_one_side(matrix, qubits, "bra")
        return self

    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> "DensityMatrix":
        return self.apply_unitary(gate.matrix, qubits)

    def apply_kraus(
        self, operators: Iterable[np.ndarray], qubits: Sequence[int]
    ) -> "DensityMatrix":
        """In-place channel ``rho -> sum_k K_k rho K_k^dagger``."""
        qubits = tuple(qubits)
        accumulated = None
        original = self._tensor
        for kraus in operators:
            self._tensor = original
            self.apply_unitary_unchecked(np.asarray(kraus, dtype=np.complex128), qubits)
            accumulated = (
                self._tensor if accumulated is None else accumulated + self._tensor
            )
        if accumulated is None:
            raise ValueError("empty Kraus operator list")
        self._tensor = accumulated
        return self

    def apply_unitary_unchecked(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> None:
        """Conjugate by a (possibly non-unitary) Kraus operator."""
        self._apply_one_side(matrix, qubits, "ket")
        self._apply_one_side(matrix, qubits, "bra")

    # -- readout -------------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Diagonal of the density matrix (basis-outcome probabilities)."""
        return np.real(np.diagonal(self.matrix)).copy()

    def marginal_probability(self, qubit: int, outcome: int) -> float:
        probs = self.probabilities()
        shift = self.num_qubits - 1 - qubit
        indices = np.arange(probs.size)
        mask = ((indices >> shift) & 1) == outcome
        return float(probs[mask].sum())

    def expectation(self, observable: np.ndarray) -> float:
        return float(np.real(np.trace(self.matrix @ np.asarray(observable))))

    def fidelity_with_pure(self, state: Statevector) -> float:
        vec = state.vector
        return float(np.real(vec.conj() @ self.matrix @ vec))

    def allclose(self, other: "DensityMatrix", atol: float = 1e-8) -> bool:
        return bool(np.allclose(self.matrix, other.matrix, atol=atol))

    def __repr__(self) -> str:
        return f"DensityMatrix(qubits={self.num_qubits})"


def run_circuit_density(
    circuit: QuantumCircuit,
    kraus_after_gate=None,
    initial: Optional[DensityMatrix] = None,
) -> DensityMatrix:
    """Evolve a density matrix through ``circuit``.

    Parameters
    ----------
    kraus_after_gate:
        Optional callable ``(GateOp) -> list of (kraus_ops, qubits)`` giving
        the noise channel(s) to apply after each gate; ``None`` simulates
        noise-free.  Measurements are ignored here — readout is taken from
        the final diagonal.
    """
    rho = initial.copy() if initial is not None else DensityMatrix(circuit.num_qubits)
    for instr in circuit:
        if isinstance(instr, GateOp):
            rho.apply_gate(instr.gate, instr.qubits)
            if kraus_after_gate is not None:
                for kraus_ops, qubits in kraus_after_gate(instr):
                    rho.apply_kraus(kraus_ops, qubits)
    return rho


def run_layered_density(layered, model, initial: Optional[DensityMatrix] = None) -> DensityMatrix:
    """Exact channel evolution of a layered circuit under a noise model.

    Applies each layer's gates, then every channel the model fires at that
    layer boundary — gate channels *and* idle-qubit channels — matching the
    Monte-Carlo trial semantics exactly (errors inject at layer ends).
    This is the ground truth the trial executor's ensemble must converge
    to, including when ``model.idle_error > 0``.
    """
    rho = initial.copy() if initial is not None else DensityMatrix(layered.num_qubits)
    for layer_index, layer in enumerate(layered.layers):
        for op in layer:
            rho.apply_gate(op.gate, op.qubits)
        for kraus_ops, qubits in model.kraus_for_layer(layered, layer_index):
            rho.apply_kraus(kraus_ops, qubits)
    return rho
