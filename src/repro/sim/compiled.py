"""Compiled-circuit execution: segment kernels, fusion, in-place backend.

:class:`CompiledCircuit` turns a :class:`~repro.circuits.layers.LayeredCircuit`
into kernel programs exactly once.  The trial-reordering executor replays
the same layer ranges thousands of times per experiment (every ``Advance``
of every trial segment), so each requested range is compiled on first use
and memoized:

* the gates of the range are flattened in layer order;
* maximal runs of single-qubit gates on the same qubit (with no
  intervening multi-qubit gate on that qubit) are **fused** into one 2x2
  product, which is then classified like any other matrix — a run of
  phase gates fuses into a single diagonal multiply;
* every remaining gate is classified through the shared
  :func:`~repro.sim.kernels.kernel_for_gate` cache (keyed by
  ``Gate._key``), which error-injection operators also go through.

Fusion never changes the paper's accounting: ``ops_applied`` is charged
from :meth:`LayeredCircuit.gates_between` (the gate count of the range),
not from the number of kernel applications, and snapshots are untouched,
so ``peak_msv`` is identical to the interpreted path.

:class:`CompiledStatevectorBackend` drives the kernels against the working
state's tensor and one preallocated scratch buffer, threading the
``(tensor, scratch)`` pair through each kernel's ping-pong contract — the
steady state allocates nothing per gate.  It subclasses
:class:`~repro.sim.backend.StatevectorBackend`, so live-state tracking,
``finish`` snapshots and measurement sampling are inherited unchanged.

The backend also exposes the **batched** execution surface used by the
wavefront executor (:mod:`repro.core.wavefront`): the same compiled kernel
programs applied through :meth:`Kernel.apply_batch` to a batch-last
``(2,)*n + (B,)`` array holding ``B`` trial states as columns.  Batched
calls charge ``ops_applied`` per column (``gates * B`` for a segment, one
per column for an operator), so the paper's operation metric is invariant
under any batch grouping; ``kernel.batched.*`` counters record how many
batched applications each kernel kind received.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.gates import Gate
from ..circuits.layers import LayeredCircuit
from .backend import StatevectorBackend
from .kernels import Kernel, compile_matrix, kernel_cost, kernel_for_gate
from .statevector import Statevector

__all__ = ["CompiledCircuit", "CompiledStatevectorBackend"]


def _compile_ops(
    ops: Sequence, num_qubits: int
) -> Tuple[Tuple[Kernel, ...], int, int]:
    """Compile a flattened gate-op sequence with single-qubit fusion.

    ``pending[q]`` accumulates the matrix product of a run of single-qubit
    gates on qubit ``q``.  A multi-qubit gate flushes the runs of exactly
    the qubits it touches *before* it is emitted (preserving order on
    those qubits); runs on untouched qubits stay pending, which is sound
    because gates on disjoint qubits commute.

    Returns ``(kernels, fused_runs, fused_gates)``: how many multi-gate
    runs were fused and how many gates they absorbed in total.
    """
    kernels: List[Kernel] = []
    pending: Dict[int, List] = {}  # qubit -> [GateOp, ...] of the run
    fused_runs = 0
    fused_gates = 0

    def flush(qubit: int) -> None:
        nonlocal fused_runs, fused_gates
        run = pending.pop(qubit, None)
        if run is None:
            return
        if len(run) == 1:
            kernels.append(
                kernel_for_gate(run[0].gate, run[0].qubits, num_qubits)
            )
            return
        fused = run[0].gate.matrix
        for op in run[1:]:
            fused = op.gate.matrix @ fused
        fused_runs += 1
        fused_gates += len(run)
        kernels.append(compile_matrix(fused, (qubit,), num_qubits))

    for op in ops:
        if op.gate.num_qubits == 1:
            pending.setdefault(op.qubits[0], []).append(op)
        else:
            for qubit in op.qubits:
                flush(qubit)
            kernels.append(kernel_for_gate(op.gate, op.qubits, num_qubits))
    for qubit in sorted(pending):
        flush(qubit)
    return tuple(kernels), fused_runs, fused_gates


class CompiledCircuit:
    """Lazy, memoized kernel programs for every layer range of a circuit.

    With a :class:`~repro.obs.recorder.TraceRecorder` attached (the
    compiled backend forwards the executor's recorder here), every
    first-use compilation becomes a ``compile[s,e)`` span carrying the
    kernel-kind histogram and fusion counts of that segment, and every
    memoized reuse bumps the ``segment.hit`` counter.
    """

    def __init__(self, layered: LayeredCircuit) -> None:
        self.layered = layered
        self.num_qubits = layered.num_qubits
        self._segments: Dict[Tuple[int, int], Tuple[Kernel, ...]] = {}
        # key -> (fused_runs, fused_gates), parallel to _segments.
        self._segment_fusion: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._segment_costs: Dict[Tuple[int, int], Dict[str, object]] = {}
        self._segment_kind_costs: Dict[
            Tuple[int, int], Dict[str, Dict[str, int]]
        ] = {}
        self.recorder = None

    def segment(self, start_layer: int, end_layer: int) -> Tuple[Kernel, ...]:
        """The compiled kernel program for layers ``start .. end - 1``."""
        key = (start_layer, end_layer)
        program = self._segments.get(key)
        if program is None:
            if not 0 <= start_layer <= end_layer <= self.layered.num_layers:
                raise ValueError(
                    f"bad layer range [{start_layer}, {end_layer}) for "
                    f"{self.layered.num_layers} layer(s)"
                )
            recorder = self.recorder
            if recorder:
                recorder.begin(
                    f"compile[{start_layer},{end_layer})", cat="compile"
                )
            ops = [
                op
                for layer in self.layered.layers[start_layer:end_layer]
                for op in layer
            ]
            program, fused_runs, fused_gates = _compile_ops(ops, self.num_qubits)
            self._segments[key] = program
            self._segment_fusion[key] = (fused_runs, fused_gates)
            if recorder:
                recorder.end(
                    f"compile[{start_layer},{end_layer})",
                    cat="compile",
                    kernels=len(program),
                    gates=len(ops),
                    fused_runs=fused_runs,
                    fused_gates=fused_gates,
                )
                recorder.counter("segment.compile", 1)
                if fused_runs:
                    recorder.counter("fusion.runs", fused_runs)
                    recorder.counter("fusion.gates", fused_gates)
                for kernel in program:
                    recorder.counter(f"kernel.{kernel.kind}", 1)
        else:
            recorder = self.recorder
            if recorder:
                recorder.counter("segment.hit", 1)
        return program

    def segment_cost(self, start_layer: int, end_layer: int) -> Dict[str, object]:
        """Static cost summary of one layer range — analysis only.

        Compiles the segment through the same memoized :meth:`segment`
        path (with the recorder detached, so static analysis never leaves
        ``compile``/``segment.hit`` events in a trace) and folds each
        kernel through :func:`~repro.sim.kernels.kernel_cost`.  The result
        is memoized and safe to share with execution: runtime replays of
        the same range reuse the compiled program.
        """
        key = (start_layer, end_layer)
        cost = self._segment_costs.get(key)
        if cost is None:
            recorder = self.recorder
            self.recorder = None
            try:
                program = self.segment(start_layer, end_layer)
            finally:
                self.recorder = recorder
            fused_runs, fused_gates = self._segment_fusion[key]
            flops = 0
            bytes_moved = 0
            kinds: Dict[str, int] = {}
            for kernel in program:
                each = kernel_cost(kernel, self.num_qubits)
                flops += each.flops
                bytes_moved += each.bytes_moved
                kinds[kernel.kind] = kinds.get(kernel.kind, 0) + 1
            cost = {
                "gates": self.layered.gates_between(start_layer, end_layer),
                "kernels": len(program),
                "fused_runs": fused_runs,
                "fused_gates": fused_gates,
                "flops": flops,
                "bytes_moved": bytes_moved,
                "kinds": kinds,
            }
            self._segment_costs[key] = cost
        return cost

    def segment_kind_costs(
        self, start_layer: int, end_layer: int
    ) -> Dict[str, Dict[str, int]]:
        """Per-kernel-kind cost split of one layer range — analysis only.

        Maps each kernel kind in the segment's compiled program to its
        ``{"count", "flops", "bytes_moved"}`` share, priced by the same
        :func:`~repro.sim.kernels.kernel_cost` model as
        :meth:`segment_cost` (the kind totals sum exactly to the
        segment's ``flops`` / ``bytes_moved``).  The profiler uses this
        split to attribute a segment's measured wall time across kernel
        classes by flop share.  Memoized, recorder-detached.
        """
        key = (start_layer, end_layer)
        split = self._segment_kind_costs.get(key)
        if split is None:
            recorder = self.recorder
            self.recorder = None
            try:
                program = self.segment(start_layer, end_layer)
            finally:
                self.recorder = recorder
            split = {}
            for kernel in program:
                each = kernel_cost(kernel, self.num_qubits)
                entry = split.setdefault(
                    kernel.kind, {"count": 0, "flops": 0, "bytes_moved": 0}
                )
                entry["count"] += 1
                entry["flops"] += int(each.flops)
                entry["bytes_moved"] += int(each.bytes_moved)
            self._segment_kind_costs[key] = split
        return split

    def operator_kernel(self, gate: Gate, qubits: Sequence[int]) -> Kernel:
        """Kernel for an injected error operator (same ``Gate._key`` cache)."""
        return kernel_for_gate(gate, qubits, self.num_qubits)

    def stats(self) -> Dict[str, int]:
        """Kernel-kind histogram over all segments compiled so far."""
        histogram: Dict[str, int] = {
            "segments": len(self._segments),
            "kernels": 0,
            "gates": 0,
            "fused_runs": 0,
            "fused_gates": 0,
        }
        for (start, end), program in self._segments.items():
            histogram["kernels"] += len(program)
            histogram["gates"] += self.layered.gates_between(start, end)
            fused_runs, fused_gates = self._segment_fusion.get((start, end), (0, 0))
            histogram["fused_runs"] += fused_runs
            histogram["fused_gates"] += fused_gates
            for kernel in program:
                histogram[kernel.kind] = histogram.get(kernel.kind, 0) + 1
        return histogram

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit({self.layered.circuit.name!r}, "
            f"segments={len(self._segments)})"
        )


class CompiledStatevectorBackend(StatevectorBackend):
    """Statevector backend executing compiled kernels in place.

    Drop-in replacement for :class:`StatevectorBackend`: identical
    ``ops_applied`` / ``peak_msv`` accounting and final states ``allclose``
    to the interpreted path (bit-identical except where fusion reorders
    float rounding).  A single scratch buffer of ``2**n`` amplitudes is
    owned by the backend and shared by all kernels — it is only ever used
    transiently inside one gate application.
    """

    def __init__(
        self,
        layered: LayeredCircuit,
        compiled: Optional[CompiledCircuit] = None,
    ) -> None:
        super().__init__(layered)
        if compiled is not None and compiled.layered is not layered:
            raise ValueError("compiled circuit belongs to a different layering")
        self.compiled = compiled if compiled is not None else CompiledCircuit(layered)
        self._scratch = np.empty(
            (2,) * layered.num_qubits, dtype=np.complex128
        )
        # Lazy second single-state temporary for per-column injection
        # (apply_operator_columns); most runs never allocate it.
        self._col_temp: Optional[np.ndarray] = None

    def set_recorder(self, recorder) -> None:
        """Attach the recorder to the backend *and* its compiled circuit."""
        self.recorder = recorder
        self.compiled.recorder = recorder

    def _run_kernels(
        self, state: Statevector, kernels: Sequence[Kernel]
    ) -> None:
        tensor = state._tensor
        scratch = self._scratch
        recorder = self.recorder
        if recorder:
            swaps = 0
            for kernel in kernels:
                new_tensor, scratch = kernel.apply(tensor, scratch)
                if new_tensor is not tensor:
                    swaps += 1
                tensor = new_tensor
            if swaps:
                recorder.counter("scratch.swaps", swaps)
        else:
            for kernel in kernels:
                tensor, scratch = kernel.apply(tensor, scratch)
        # Adopt whichever buffer holds the result; the other becomes the
        # backend's scratch for the next application.
        state._tensor = tensor
        self._scratch = scratch

    def apply_layers(
        self, state: Statevector, start_layer: int, end_layer: int
    ) -> None:
        kernels = self.compiled.segment(start_layer, end_layer)
        recorder = self.recorder
        if recorder:
            span = f"kernels[{start_layer},{end_layer})"
            recorder.begin(span, cat="kernel", kernels=len(kernels))
            self._run_kernels(state, kernels)
            recorder.end(span, cat="kernel")
        else:
            self._run_kernels(state, kernels)
        self.ops_applied += self.layered.gates_between(start_layer, end_layer)

    def apply_operator(
        self, state: Statevector, gate: Gate, qubits: Sequence[int]
    ) -> None:
        self._run_kernels(
            state, (self.compiled.operator_kernel(gate, tuple(qubits)),)
        )
        self.ops_applied += 1

    # -- batched execution (wavefront) ------------------------------------

    def run_kernels_batch(
        self,
        tensor: np.ndarray,
        scratch: np.ndarray,
        kernels: Sequence[Kernel],
    ) -> np.ndarray:
        """Thread a batch-last ``(2,)*n + (B,)`` pair through ``kernels``.

        Returns the buffer holding the result; the other buffer is dead
        scratch the caller may discard or reuse.  Accounting-free — the
        ``apply_*_batch`` wrappers below charge ``ops_applied``.
        """
        recorder = self.recorder
        if recorder:
            swaps = 0
            for kernel in kernels:
                recorder.counter(f"kernel.batched.{kernel.kind}", 1)
                new_tensor, scratch = kernel.apply_batch(tensor, scratch)
                if new_tensor is not tensor:
                    swaps += 1
                tensor = new_tensor
            if swaps:
                recorder.counter("scratch.batched.swaps", swaps)
        else:
            for kernel in kernels:
                tensor, scratch = kernel.apply_batch(tensor, scratch)
        return tensor

    def apply_layers_batch(
        self,
        tensor: np.ndarray,
        scratch: np.ndarray,
        start_layer: int,
        end_layer: int,
    ) -> np.ndarray:
        """Advance every column of a batch through one layer segment.

        The kernel program is the *same* memoized ``segment()`` object the
        serial path compiles — identical fusion boundaries, hence
        bit-identical per-column arithmetic.  Charges ``gates * B`` basic
        operations (one per gate per trial).
        """
        kernels = self.compiled.segment(start_layer, end_layer)
        width = tensor.shape[-1]
        recorder = self.recorder
        if recorder:
            span = f"kernels[{start_layer},{end_layer})"
            recorder.begin(span, cat="kernel", kernels=len(kernels), batch=width)
            tensor = self.run_kernels_batch(tensor, scratch, kernels)
            recorder.end(span, cat="kernel")
        else:
            tensor = self.run_kernels_batch(tensor, scratch, kernels)
        self.ops_applied += (
            self.layered.gates_between(start_layer, end_layer) * width
        )
        return tensor

    def apply_operator_columns(
        self,
        tensor: np.ndarray,
        scratch: np.ndarray,
        gate: Gate,
        qubits: Sequence[int],
        start_col: int,
        end_col: int,
    ) -> None:
        """Inject one error operator into columns ``[start_col, end_col)``.

        Sibling columns with a different (or no) pending event are
        untouched.  The column range is gathered into a contiguous
        temporary, the kernel runs at contiguous speed, and the result is
        scattered back — far cheaper than running the kernel on a strided
        column-range view, and arithmetically identical since the batched
        kernels are bit-exact per column on contiguous input.  Charges
        one basic operation per column.
        """
        kernel = self.compiled.operator_kernel(gate, tuple(qubits))
        recorder = self.recorder
        if recorder:
            recorder.counter(f"kernel.batched.{kernel.kind}", 1)
        width = tensor.shape[-1]
        count = end_col - start_col
        if not tensor.flags.c_contiguous:
            # A reshape below would silently copy; keep the strided path.
            view = tensor[..., start_col:end_col]
            result, _ = kernel.apply_batch(
                view, scratch[..., start_col:end_col]
            )
            if result is not view:
                view[...] = result
            self.ops_applied += count
            return
        flat = tensor.reshape(-1, width)
        num_qubits = self.layered.num_qubits
        if count == 1:
            # Single column: reuse the pooled one-state temporary and the
            # serial apply (identical arithmetic, zero allocation).
            if self._col_temp is None:
                self._col_temp = np.empty(
                    (2,) * num_qubits, dtype=np.complex128
                )
            work, spare = self._col_temp, self._scratch
            work.reshape(-1)[...] = flat[:, start_col]
            result, other = kernel.apply(work, spare)
            flat[:, start_col] = result.reshape(-1)
            self._col_temp, self._scratch = result, other
            self.ops_applied += 1
            return
        # Multi-column range: one strided pass gathers all columns at
        # once, the kernel advances them in a single batched call, and one
        # strided pass scatters back — instead of re-crossing the buffer
        # once per column.
        shape = (2,) * num_qubits + (count,)
        work = np.empty(shape, dtype=np.complex128)
        spare = np.empty(shape, dtype=np.complex128)
        work.reshape(-1, count)[...] = flat[:, start_col:end_col]
        result, _ = kernel.apply_batch(work, spare)
        flat[:, start_col:end_col] = result.reshape(-1, count)
        self.ops_applied += count
