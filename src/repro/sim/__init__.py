"""Simulation engines: statevector, density matrix and operation counting."""

from .backend import SimulationBackend, StatevectorBackend
from .counting import CountingBackend, CountingState
from .density import DensityMatrix, run_circuit_density, run_layered_density
from .observables import Observable, PauliObservable
from .measurement import (
    apply_readout_flips,
    counts_from_samples,
    merge_counts,
    sample_measurements,
)
from .stabilizer import (
    CLIFFORD_GATES,
    StabilizerBackend,
    StabilizerError,
    StabilizerState,
    is_clifford_circuit,
)
from .statevector import Statevector, apply_gate_matrix, run_circuit

__all__ = [
    "CountingBackend",
    "CountingState",
    "DensityMatrix",
    "Observable",
    "PauliObservable",
    "SimulationBackend",
    "CLIFFORD_GATES",
    "StabilizerBackend",
    "StabilizerError",
    "StabilizerState",
    "is_clifford_circuit",
    "Statevector",
    "StatevectorBackend",
    "apply_gate_matrix",
    "apply_readout_flips",
    "counts_from_samples",
    "merge_counts",
    "run_circuit",
    "run_circuit_density",
    "run_layered_density",
    "sample_measurements",
]
