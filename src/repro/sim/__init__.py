"""Simulation engines: statevector, density matrix and operation counting."""

from .backend import SimulationBackend, StatevectorBackend
from .compiled import CompiledCircuit, CompiledStatevectorBackend
from .counting import CountingBackend, CountingState
from .kernels import (
    ControlledKernel,
    DenseKernel,
    DiagonalKernel,
    Kernel,
    PermutationKernel,
    compile_matrix,
    kernel_for_gate,
)
from .density import DensityMatrix, run_circuit_density, run_layered_density
from .observables import Observable, PauliObservable
from .measurement import (
    apply_readout_flips,
    counts_from_samples,
    merge_counts,
    sample_measurements,
)
from .stabilizer import (
    CLIFFORD_GATES,
    StabilizerBackend,
    StabilizerError,
    StabilizerState,
    is_clifford_circuit,
)
from .statevector import (
    StateLayoutError,
    Statevector,
    apply_gate_matrix,
    require_state_layout,
    run_circuit,
)

__all__ = [
    "CompiledCircuit",
    "CompiledStatevectorBackend",
    "ControlledKernel",
    "CountingBackend",
    "CountingState",
    "DenseKernel",
    "DensityMatrix",
    "DiagonalKernel",
    "Kernel",
    "PermutationKernel",
    "compile_matrix",
    "kernel_for_gate",
    "Observable",
    "PauliObservable",
    "SimulationBackend",
    "CLIFFORD_GATES",
    "StabilizerBackend",
    "StabilizerError",
    "StabilizerState",
    "is_clifford_circuit",
    "StateLayoutError",
    "Statevector",
    "StatevectorBackend",
    "apply_gate_matrix",
    "require_state_layout",
    "apply_readout_flips",
    "counts_from_samples",
    "merge_counts",
    "run_circuit",
    "run_circuit_density",
    "run_layered_density",
    "sample_measurements",
]
