"""Measurement sampling and classical readout errors.

Measurement errors in the paper's model (Sec. III-B-1) are classical: after
a qubit is measured, the resulting bit is flipped with a device-specific
probability.  Flips therefore never touch the statevector and never affect
prefix reuse — they are applied here, to sampled bitstrings, after the
quantum part of a trial finished.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..circuits.circuit import Measurement
from .statevector import Statevector

__all__ = [
    "sample_measurements",
    "apply_readout_flips",
    "counts_from_samples",
    "merge_counts",
]


def sample_measurements(
    state: Statevector,
    measurements: Sequence[Measurement],
    rng: np.random.Generator,
) -> Dict[int, int]:
    """Sample one joint outcome of ``measurements`` from ``state``.

    Returns a ``clbit -> bit`` map.  The joint outcome is drawn in a single
    multinomial draw from the full distribution (all listed measurements are
    terminal, so no collapse ordering matters).
    """
    probs = state.probabilities()
    probs = np.clip(probs, 0.0, None)
    probs /= probs.sum()
    outcome = int(rng.choice(probs.size, p=probs))
    clbits: Dict[int, int] = {}
    for meas in measurements:
        shift = state.num_qubits - 1 - meas.qubit
        clbits[meas.clbit] = (outcome >> shift) & 1
    return clbits


def apply_readout_flips(
    clbits: Dict[int, int], flipped_clbits: Sequence[int]
) -> Dict[int, int]:
    """Return a copy of ``clbits`` with the listed classical bits flipped."""
    result = dict(clbits)
    for clbit in flipped_clbits:
        if clbit in result:
            result[clbit] ^= 1
    return result


def counts_from_samples(
    samples: Sequence[Dict[int, int]], num_clbits: int
) -> Dict[str, int]:
    """Aggregate per-trial clbit maps into bitstring counts.

    Bit 0 of the string is clbit 0 (leftmost), matching the statevector
    bitstring convention.  Unmeasured clbits read as 0.
    """
    counts: Dict[str, int] = {}
    for sample in samples:
        bits = "".join(str(sample.get(c, 0)) for c in range(num_clbits))
        counts[bits] = counts.get(bits, 0) + 1
    return counts


def merge_counts(*count_maps: Dict[str, int]) -> Dict[str, int]:
    """Sum several bitstring-count histograms."""
    merged: Dict[str, int] = {}
    for counts in count_maps:
        for bits, count in counts.items():
            merged[bits] = merged.get(bits, 0) + count
    return merged
