"""Pauli observables and noisy expectation-value estimation.

The paper's motivating applications (variational molecule simulation,
QAOA-style optimization) consume *expectation values* of Pauli-string
observables rather than raw bitstring counts.  This module provides:

* :class:`PauliObservable` — a weighted Pauli string like ``1.5 * ZZI``,
* :class:`Observable` — a real linear combination of Pauli strings
  (e.g. a molecular Hamiltonian),
* expectation evaluation against pure states and density matrices.

:meth:`repro.core.runner.NoisySimulator.expectation` combines these with
the trial-reordering executor: the ensemble average over Monte-Carlo
trials converges to the exact noisy (density-matrix) expectation, and the
deduplicated executor evaluates each *distinct* final state only once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Union

import numpy as np

from ..circuits.gates import standard_gate
from .statevector import Statevector

__all__ = ["PauliObservable", "Observable"]

_VALID = set("IXYZ")


class PauliObservable:
    """A weighted Pauli string, e.g. ``PauliObservable("ZZI", 0.5)``.

    Character ``i`` of the label acts on qubit ``i`` (the big-endian
    convention used everywhere in this package).
    """

    __slots__ = ("label", "coefficient")

    def __init__(self, label: str, coefficient: float = 1.0) -> None:
        label = label.upper()
        if not label or set(label) - _VALID:
            raise ValueError(f"bad Pauli label {label!r} (use I/X/Y/Z)")
        self.label = label
        self.coefficient = float(coefficient)

    @property
    def num_qubits(self) -> int:
        return len(self.label)

    @property
    def is_identity(self) -> bool:
        return set(self.label) == {"I"}

    def matrix(self) -> np.ndarray:
        """Dense matrix (exponential in qubit count — validation only)."""
        from ..noise.channels import pauli_label_matrix

        if self.is_identity:
            return self.coefficient * np.eye(2**self.num_qubits)
        return self.coefficient * pauli_label_matrix(self.label.lower())

    def _apply_string(self, state: Statevector) -> Statevector:
        transformed = state.copy()
        for qubit, char in enumerate(self.label):
            if char != "I":
                transformed.apply_gate(standard_gate(char.lower()), (qubit,))
        return transformed

    def expectation(self, state: Statevector) -> float:
        """``coefficient * <state| P |state>`` (real by Hermiticity)."""
        if state.num_qubits != self.num_qubits:
            raise ValueError(
                f"observable on {self.num_qubits} qubits vs state on "
                f"{state.num_qubits}"
            )
        if self.is_identity:
            return self.coefficient
        transformed = self._apply_string(state)
        return self.coefficient * float(
            np.real(np.vdot(state.vector, transformed.vector))
        )

    def expectation_density(self, rho) -> float:
        """``coefficient * Tr(P rho)``."""
        if rho.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        return float(np.real(np.trace(self.matrix() @ rho.matrix)))

    def __mul__(self, scalar: float) -> "PauliObservable":
        return PauliObservable(self.label, self.coefficient * float(scalar))

    __rmul__ = __mul__

    def __repr__(self) -> str:
        return f"PauliObservable({self.coefficient:+g} * {self.label})"


class Observable:
    """A real linear combination of Pauli strings (a Hamiltonian)."""

    def __init__(
        self,
        terms: Union[
            Iterable[PauliObservable], Dict[str, float], None
        ] = None,
    ) -> None:
        self.terms: List[PauliObservable] = []
        if isinstance(terms, dict):
            for label, coefficient in terms.items():
                self.terms.append(PauliObservable(label, coefficient))
        elif terms is not None:
            for term in terms:
                if not isinstance(term, PauliObservable):
                    raise TypeError(f"not a PauliObservable: {term!r}")
                self.terms.append(term)
        if not self.terms:
            raise ValueError("observable needs at least one term")
        widths = {term.num_qubits for term in self.terms}
        if len(widths) != 1:
            raise ValueError(f"mixed term widths: {sorted(widths)}")

    @property
    def num_qubits(self) -> int:
        return self.terms[0].num_qubits

    def matrix(self) -> np.ndarray:
        return sum(term.matrix() for term in self.terms)

    def expectation(self, state: Statevector) -> float:
        return sum(term.expectation(state) for term in self.terms)

    def expectation_density(self, rho) -> float:
        return sum(term.expectation_density(rho) for term in self.terms)

    def __repr__(self) -> str:
        body = " ".join(
            f"{term.coefficient:+g}*{term.label}" for term in self.terms[:4]
        )
        if len(self.terms) > 4:
            body += f" ... ({len(self.terms)} terms)"
        return f"Observable({body})"
