"""Full statevector simulation engine.

A :class:`Statevector` holds the ``2**n`` complex amplitudes of an
``n``-qubit register as an ``(2,) * n`` numpy tensor and applies gates with
``tensordot`` contractions — the standard dense full-state technique used by
QX, qHiPSTER and friends, and the "basic operation" (matrix-vector
multiplication) whose count is the paper's computation metric.

Conventions
-----------
Qubit 0 is the **most significant** bit of the computational-basis index
(big-endian): the amplitude of ``|q0 q1 ... q_{n-1}>`` lives at flat index
``q0 * 2**(n-1) + ... + q_{n-1}``.  Bitstrings returned by measurement
follow the same order, so ``"10"`` on two qubits means qubit 0 measured 1.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import GateOp, Measurement, QuantumCircuit
from ..circuits.gates import Gate

__all__ = [
    "StateLayoutError",
    "Statevector",
    "apply_gate_matrix",
    "require_state_layout",
    "run_circuit",
]

_ATOL = 1e-9


class StateLayoutError(TypeError):
    """An amplitude buffer violates the kernel memory-layout contract.

    Every compiled kernel (and the no-copy ``from_buffer`` /
    shared-memory paths) requires **C-contiguous complex128** storage.  A
    Fortran-ordered, strided or narrower-dtype array would not fail — it
    would silently degrade: ``reshape`` falls back to a copy, severing
    write-through to the underlying buffer, and kernels would run against
    an implicit converted temporary.  This error names the offending
    dtype and strides instead.
    """


def require_state_layout(array: np.ndarray, context: str) -> None:
    """Raise :class:`StateLayoutError` unless ``array`` is C-contiguous complex128."""
    if array.dtype != np.complex128:
        raise StateLayoutError(
            f"{context}: amplitude buffer must be complex128, got dtype "
            f"{array.dtype} (shape {array.shape}, strides {array.strides})"
        )
    if not array.flags.c_contiguous:
        raise StateLayoutError(
            f"{context}: amplitude buffer must be C-contiguous, got strides "
            f"{array.strides} for shape {array.shape} (itemsize "
            f"{array.itemsize}); a reshape of this buffer would silently "
            f"copy instead of aliasing it"
        )


def _is_diagonal(matrix: np.ndarray) -> bool:
    return bool(np.count_nonzero(matrix - np.diag(np.diagonal(matrix))) == 0)


def apply_gate_matrix(
    tensor: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    diagonal: Optional[bool] = None,
) -> np.ndarray:
    """Apply a ``2**k x 2**k`` unitary to ``qubits`` of a state tensor.

    ``tensor`` has shape ``(2,) * n``; returns a new tensor (the input is
    not modified).  This is one "basic operation" in the paper's metric.

    Diagonal gates (rz, u1, cz, cu1, z, s, t, ...) take a fast path: the
    diagonal is broadcast-multiplied into the amplitudes, avoiding the
    axis-permuting ``tensordot`` contraction.  The result is numerically
    identical (element-wise product vs the same product inside a matmul).

    ``diagonal`` lets callers that already know the matrix structure (a
    :class:`Gate` caches it at construction) skip the per-application scan;
    ``None`` keeps the old behaviour of detecting it from the raw matrix.
    """
    k = len(qubits)
    if diagonal is None:
        diagonal = _is_diagonal(matrix)
    if diagonal:
        num_axes = tensor.ndim
        shape = [1] * num_axes
        for qubit in qubits:
            shape[qubit] = 2
        diagonal = np.diagonal(matrix).reshape((2,) * k)
        # Arrange the diagonal's axes to line up with the target qubits.
        expanded = np.ones(shape, dtype=np.complex128)
        index_order = np.argsort(qubits)
        ordered_axes = [qubits[i] for i in index_order]
        diagonal = np.transpose(diagonal, index_order)
        expanded = diagonal.reshape(
            [2 if axis in ordered_axes else 1 for axis in range(num_axes)]
        )
        return tensor * expanded
    gate_tensor = matrix.reshape((2,) * (2 * k))
    moved = np.tensordot(gate_tensor, tensor, axes=(tuple(range(k, 2 * k)), qubits))
    # tensordot puts the new qubit axes first; restore original axis order.
    return np.moveaxis(moved, tuple(range(k)), qubits)


class Statevector:
    """Mutable ``n``-qubit pure state with gate application and sampling."""

    __slots__ = ("num_qubits", "_tensor")

    def __init__(self, num_qubits: int, tensor: Optional[np.ndarray] = None) -> None:
        if num_qubits < 1:
            raise ValueError(f"need at least one qubit, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        if tensor is None:
            tensor = np.zeros((2,) * self.num_qubits, dtype=np.complex128)
            tensor[(0,) * self.num_qubits] = 1.0
        else:
            tensor = np.asarray(tensor, dtype=np.complex128)
            if tensor.size != 2**self.num_qubits:
                raise ValueError(
                    f"tensor has {tensor.size} amplitudes, expected "
                    f"{2 ** self.num_qubits}"
                )
            tensor = tensor.reshape((2,) * self.num_qubits).copy()
        self._tensor = tensor

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Build a computational-basis state from a bitstring like ``"010"``."""
        if not label or set(label) - {"0", "1"}:
            raise ValueError(f"bad basis label {label!r}")
        state = cls(len(label))
        state._tensor[(0,) * len(label)] = 0.0
        state._tensor[tuple(int(b) for b in label)] = 1.0
        return state

    @classmethod
    def from_amplitudes(cls, amplitudes: Sequence[complex]) -> "Statevector":
        amplitudes = np.asarray(amplitudes, dtype=np.complex128)
        num_qubits = int(round(math.log2(amplitudes.size)))
        if 2**num_qubits != amplitudes.size:
            raise ValueError(f"{amplitudes.size} amplitudes is not a power of two")
        norm = np.linalg.norm(amplitudes)
        if abs(norm - 1.0) > 1e-6:
            raise ValueError(f"state not normalized (norm {norm})")
        return cls(num_qubits, amplitudes)

    # -- views ------------------------------------------------------------------

    @property
    def tensor(self) -> np.ndarray:
        """The ``(2,) * n`` amplitude tensor (live view)."""
        return self._tensor

    @property
    def vector(self) -> np.ndarray:
        """The flat ``2**n`` amplitude vector (copy-free reshape)."""
        return self._tensor.reshape(-1)

    @classmethod
    def from_buffer(cls, buffer: np.ndarray, num_qubits: int) -> "Statevector":
        """Wrap an existing complex128 buffer *without copying*.

        ``buffer`` must hold exactly ``2**num_qubits`` amplitudes; it is
        reshaped (a view) into the ``(2,) * n`` tensor and becomes the
        state's storage.  Used by the parallel executor to read entry
        snapshots and finish payloads straight out of
        ``multiprocessing.shared_memory`` blocks — mutations write through
        to the underlying buffer, and the state is only valid while the
        buffer is.

        Raises :class:`StateLayoutError` for non-complex128 or
        non-C-contiguous buffers — the reshape below would silently copy
        such a buffer, breaking the write-through contract.
        """
        require_state_layout(buffer, "Statevector.from_buffer")
        if buffer.size != 2**num_qubits:
            raise ValueError(
                f"buffer has {buffer.size} amplitudes, expected {2 ** num_qubits}"
            )
        state = cls.__new__(cls)
        state.num_qubits = int(num_qubits)
        state._tensor = buffer.reshape((2,) * num_qubits)
        return state

    def copy(self) -> "Statevector":
        dup = Statevector.__new__(Statevector)
        dup.num_qubits = self.num_qubits
        dup._tensor = self._tensor.copy()
        return dup

    def norm(self) -> float:
        return float(np.linalg.norm(self._tensor))

    # -- evolution ---------------------------------------------------------------

    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> "Statevector":
        """Apply ``gate`` in place; returns self for chaining."""
        self._check_qubits(qubits, gate.num_qubits)
        self._tensor = apply_gate_matrix(
            self._tensor, gate.matrix, qubits, diagonal=gate.is_diagonal
        )
        return self

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "Statevector":
        self._tensor = apply_gate_matrix(self._tensor, np.asarray(matrix), qubits)
        return self

    def apply_op(self, op: GateOp) -> "Statevector":
        return self.apply_gate(op.gate, op.qubits)

    def _check_qubits(self, qubits: Sequence[int], arity: int) -> None:
        if len(qubits) != arity:
            raise ValueError(f"gate arity {arity} but got qubits {tuple(qubits)}")
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"qubit {qubit} out of range for {self.num_qubits} qubits"
                )

    # -- readout -------------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Probability of each computational-basis outcome (length ``2**n``)."""
        return np.abs(self.vector) ** 2

    def probability_of(self, label: str) -> float:
        if len(label) != self.num_qubits or set(label) - {"0", "1"}:
            raise ValueError(f"bad basis label {label!r}")
        return float(abs(self._tensor[tuple(int(b) for b in label)]) ** 2)

    def marginal_probability(self, qubit: int, outcome: int) -> float:
        """Probability that measuring ``qubit`` yields ``outcome``."""
        axes = tuple(i for i in range(self.num_qubits) if i != qubit)
        per_outcome = np.sum(np.abs(self._tensor) ** 2, axis=axes)
        return float(per_outcome[outcome])

    def sample_counts(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Sequence[int]] = None,
    ) -> Dict[str, int]:
        """Sample ``shots`` measurement outcomes; returns bitstring counts.

        ``qubits`` restricts (and orders) the measured subset; by default all
        qubits are measured in index order.
        """
        probs = self.probabilities()
        # Guard against tiny negative / drifted values from float error.
        probs = np.clip(probs, 0.0, None)
        probs /= probs.sum()
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        measured = tuple(range(self.num_qubits)) if qubits is None else tuple(qubits)
        # Vectorized tally: collapse the shots to their distinct basis
        # indices first, then extract the measured bits for those few
        # distinct values only — the Python-level loop is over unique
        # outcomes (<= 2**n), not over shots.
        values, frequencies = np.unique(np.asarray(outcomes), return_counts=True)
        shifts = np.array(
            [self.num_qubits - 1 - q for q in measured], dtype=np.int64
        )
        bit_rows = (values.astype(np.int64)[:, None] >> shifts[None, :]) & 1
        counts: Dict[str, int] = {}
        for row, frequency in zip(bit_rows, frequencies):
            bits = "".join("1" if b else "0" for b in row)
            # Distinct outcomes can collapse to one bitstring when only a
            # subset of qubits is measured.
            counts[bits] = counts.get(bits, 0) + int(frequency)
        return counts

    def measure(
        self, qubit: int, rng: np.random.Generator, collapse: bool = True
    ) -> int:
        """Projectively measure one qubit, collapsing the state in place."""
        p_one = self.marginal_probability(qubit, 1)
        outcome = int(rng.random() < p_one)
        if collapse:
            index = [slice(None)] * self.num_qubits
            index[qubit] = 1 - outcome
            self._tensor[tuple(index)] = 0.0
            norm = np.linalg.norm(self._tensor)
            if norm < _ATOL:
                raise RuntimeError("measurement collapsed to zero-norm state")
            self._tensor /= norm
        return outcome

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|**2``."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        return float(abs(np.vdot(self.vector, other.vector)) ** 2)

    def allclose(self, other: "Statevector", atol: float = 1e-8) -> bool:
        return bool(np.allclose(self.vector, other.vector, atol=atol))

    def equiv_up_to_global_phase(self, other: "Statevector", atol: float = 1e-8) -> bool:
        return self.fidelity(other) > 1.0 - atol

    def __repr__(self) -> str:
        return f"Statevector(qubits={self.num_qubits})"


def run_circuit(
    circuit: QuantumCircuit,
    initial: Optional[Statevector] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Statevector, Dict[int, int]]:
    """Run a (noise-free) circuit; returns the final state and clbit values.

    Mid-circuit measurement is supported here (the plain simulator has no
    reuse constraint); measured clbit values are returned as a dict.
    """
    state = initial.copy() if initial is not None else Statevector(circuit.num_qubits)
    clbits: Dict[int, int] = {}
    for instr in circuit:
        if isinstance(instr, GateOp):
            state.apply_op(instr)
        elif isinstance(instr, Measurement):
            if rng is None:
                rng = np.random.default_rng()
            clbits[instr.clbit] = state.measure(instr.qubit, rng)
    return state, clbits
