"""High-level lint entry points used by the CLI and the test suite.

These functions compose the low-level passes into whole-artifact checks:
a QASM file (parse + circuit rules), a plan (sanitizer + optional runtime
cross-check) and a full benchmark (compiled circuit + sampled trials +
noise model + plan, optionally verified against a counting-backend run).
Heavyweight imports (benchmarks, backends) are deferred into the function
bodies so ``import repro.lint`` stays cheap.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence

from ..circuits.layers import LayeredCircuit
from ..circuits.qasm import QasmError, parse_qasm
from ..core.events import Trial
from ..core.schedule import ExecutionPlan
from .circuit_rules import lint_circuit
from .diagnostics import LintConfig, LintResult, Severity
from .plan_sanitizer import sanitize_plan
from .registry import make_diagnostic, register
from .trial_rules import lint_noise_model, lint_trials

__all__ = [
    "lint_qasm_text",
    "lint_qasm_file",
    "lint_plan",
    "lint_benchmark",
    "lint_suite",
    "sort_diagnostics",
]

register(
    "Q001",
    "qasm-parse-error",
    Severity.ERROR,
    "qasm",
    "The OpenQASM source could not be parsed.",
    explanation="A QASM file that fails to parse yields no circuit to "
    "lint; reporting the parse failure as a diagnostic (rather than an "
    "exception) lets a multi-file lint run report every broken file in one "
    "pass instead of aborting at the first.",
)


def sort_diagnostics(result: LintResult) -> LintResult:
    """Sort a result's diagnostics by (code, location, message), in place.

    Checker iteration order and dict/set traversal inside individual rules
    are not guaranteed stable across runs or Python versions; every public
    entry point sorts before returning so ``repro lint`` text and JSON
    renderings are byte-identical for identical inputs.  Numeric suffixes
    in locations sort numerically (``plan[2]`` before ``plan[10]``).
    """

    def location_key(location: Optional[str]):
        text = location or ""
        return [
            (0, int(piece)) if piece.isdigit() else (1, piece)
            for piece in re.split(r"(\d+)", text)
        ]

    result.diagnostics.sort(
        key=lambda d: (d.code, location_key(d.location), d.message)
    )
    return result


def lint_qasm_text(
    text: str, name: str = "qasm", config: Optional[LintConfig] = None
) -> LintResult:
    """Parse an OpenQASM 2.0 program and lint the resulting circuit.

    A parse failure is reported as a ``Q001`` diagnostic instead of an
    exception, so one broken file does not abort a multi-file lint run.
    """
    try:
        circuit = parse_qasm(text, name=name)
    except QasmError as exc:
        result = LintResult(info={"circuit": name})
        diagnostic = make_diagnostic(
            "Q001", str(exc), location=name, config=config
        )
        if diagnostic is not None:
            result.add(diagnostic)
        return result
    return sort_diagnostics(lint_circuit(circuit, config=config))


def lint_qasm_file(path: str, config: Optional[LintConfig] = None) -> LintResult:
    """Lint one OpenQASM file from disk.

    An unreadable file is reported as ``Q001`` (like a parse failure), so
    one missing path does not abort a multi-file lint run.
    """
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        result = LintResult(info={"circuit": path})
        diagnostic = make_diagnostic(
            "Q001", f"cannot read file: {exc}", location=path, config=config
        )
        if diagnostic is not None:
            result.add(diagnostic)
        return result
    return lint_qasm_text(text, name=path, config=config)


def lint_plan(
    plan: ExecutionPlan,
    trials: Optional[Sequence[Trial]] = None,
    layered: Optional[LayeredCircuit] = None,
    config: Optional[LintConfig] = None,
    runtime_crosscheck: bool = False,
) -> LintResult:
    """Sanitize a plan; optionally verify the static peak-MSV bound.

    With ``runtime_crosscheck=True`` (requires ``layered`` and ``trials``,
    and a structurally clean plan) the plan is executed on the counting
    backend — no amplitudes — and the runtime ``CacheStats.peak_msv`` is
    compared against the sanitizer's static bound (``P013`` on mismatch).
    """
    audit = sanitize_plan(plan, trials=trials, layered=layered, config=config)
    result = LintResult(audit.diagnostics, info=dict(audit.info))
    if (
        runtime_crosscheck
        and audit.ok
        and layered is not None
        and trials is not None
    ):
        from ..core.executor import run_optimized
        from ..sim.counting import CountingBackend

        outcome = run_optimized(
            layered, trials, CountingBackend(layered), plan=plan
        )
        result.info["runtime_peak_msv"] = outcome.peak_msv
        if outcome.peak_msv != audit.peak_msv:
            diagnostic = make_diagnostic(
                "P013",
                f"static peak MSV {audit.peak_msv} != runtime peak MSV "
                f"{outcome.peak_msv}",
                location="plan",
                hint="the sanitizer's cache mirror has diverged from "
                "StateCache; file a bug",
                config=config,
            )
            if diagnostic is not None:
                result.add(diagnostic)
    return sort_diagnostics(result)


def lint_benchmark(
    name: str,
    num_trials: int = 256,
    seed: int = 2020,
    config: Optional[LintConfig] = None,
    runtime_crosscheck: bool = True,
) -> LintResult:
    """Full static audit of one Table I benchmark.

    Lints the Yorktown-compiled circuit, the device noise model, a seeded
    sampled trial set, and the execution plan built from those trials —
    the same pipeline ``NoisySimulator.run`` would execute.
    """
    import numpy as np

    from ..bench.suite import build_compiled_benchmark
    from ..circuits.layers import layerize
    from ..core.schedule import build_plan
    from ..noise.devices import ibm_yorktown
    from ..noise.sampling import sample_trials

    circuit = build_compiled_benchmark(name)
    layered = layerize(circuit)
    model = ibm_yorktown()
    trials = sample_trials(
        layered, model, num_trials, np.random.default_rng(seed)
    )
    plan = build_plan(layered, trials)

    result = lint_circuit(circuit, config=config)
    result.extend(lint_noise_model(model, layered, config=config))
    result.extend(lint_trials(trials, layered, config=config))
    result.extend(
        lint_plan(
            plan,
            trials=trials,
            layered=layered,
            config=config,
            runtime_crosscheck=runtime_crosscheck,
        )
    )
    result.info["benchmark"] = name
    result.info["num_trials"] = num_trials
    return sort_diagnostics(result)


def lint_suite(
    benchmarks: Optional[Sequence[str]] = None,
    num_trials: int = 256,
    seed: int = 2020,
    config: Optional[LintConfig] = None,
    runtime_crosscheck: bool = True,
) -> Dict[str, LintResult]:
    """Audit several benchmarks (all of Table I by default)."""
    from ..bench.suite import benchmark_names

    names: List[str] = list(benchmarks) if benchmarks else benchmark_names()
    return {
        name: lint_benchmark(
            name,
            num_trials=num_trials,
            seed=seed,
            config=config,
            runtime_crosscheck=runtime_crosscheck,
        )
        for name in names
    }
