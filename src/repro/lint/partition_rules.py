"""Partition lint: the parallel cut must be a disjoint exact cover.

:func:`repro.core.parallel.partition_plan` splits the serial execution plan
into a prefix program plus independent sub-plan tasks.  Everything the
parallel executor guarantees — bit-identical results to the serial run —
rests on structural invariants of that partition, and ``P018`` proves them
statically:

* **exact cover** — every trial index appears in exactly one task
  (none lost, none duplicated);
* **entry consistency** — replaying the prefix program symbolically (the
  same interpreter discipline as :func:`repro.lint.sanitize_plan`), each
  ``EmitTask`` fires with the working state at exactly the task's declared
  ``entry_layer`` with exactly its ``entry_events`` injected, each task is
  emitted exactly once, in task-id order (the serial finish order), and
  the working state is consumed afterwards (next instruction is a
  ``Restore`` or the prefix ends);
* **sub-plan soundness** — each task's local plan passes the full plan
  sanitizer resumed from its entry context (slot discipline, layer
  alignment, per-trial exactness when the trial list is supplied);
* **ops conservation** — with the circuit and trials available, the
  partition's closed-form operation count and its finish order both equal
  the serial plan's (the determinism pin).

:func:`lint_partition_trace` is the runtime-evidence companion: it splits
a merged multi-worker trace back into per-worker event streams and runs
the ``P017`` plan-vs-trace cross-check on every one of them, plus the
parent's prefix track.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.schedule import ExecutionPlan, Restore, Snapshot
from .diagnostics import Diagnostic, LintConfig, LintResult, Severity
from .plan_sanitizer import sanitize_plan
from .registry import make_diagnostic, register
from .trace_rules import lint_trace

__all__ = ["lint_partition", "lint_partition_trace"]


register(
    "P018",
    "partition-cover",
    Severity.ERROR,
    "plan",
    "Plan partition is not a disjoint exact cover of the trial set with "
    "consistent entry states.",
    explanation="The parallel executor's bit-exactness rests on the "
    "partition's structure: every trial in exactly one task, every task "
    "emitted once at exactly its declared entry layer and event history, "
    "every sub-plan sound when resumed from that entry, and the total "
    "operation count and finish order conserved against the serial plan.  "
    "P018 proves all of it symbolically before a worker is forked.",
)


class _EventsView:
    """Minimal recorder shim: a filtered ``events`` list for trace rules."""

    def __init__(self, events) -> None:
        self.events = events


def lint_partition(
    partition,
    trials=None,
    layered=None,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Statically audit a :class:`~repro.core.parallel.PlanPartition`."""
    from ..core.parallel import EmitTask
    from ..core.schedule import Advance, Inject

    diagnostics: List[Diagnostic] = []

    def emit(message: str, location: str = "partition", hint: str = "") -> None:
        diagnostic = make_diagnostic(
            "P018", message, location=location, hint=hint or None, config=config
        )
        if diagnostic is not None:
            diagnostics.append(diagnostic)

    # -- exact cover of the trial index space --------------------------------
    seen = {}
    for task in partition.tasks:
        for global_index in task.trial_indices:
            if not 0 <= global_index < partition.num_trials:
                emit(
                    f"task {task.task_id} covers trial {global_index}, "
                    f"outside the partition's {partition.num_trials} "
                    "trial(s)",
                    location=f"task[{task.task_id}]",
                )
            elif global_index in seen:
                emit(
                    f"trial {global_index} covered by both task "
                    f"{seen[global_index]} and task {task.task_id}",
                    location=f"task[{task.task_id}]",
                    hint="subtree tasks must partition the trial set",
                )
            else:
                seen[global_index] = task.task_id
    missing = [t for t in range(partition.num_trials) if t not in seen]
    if missing:
        shown = ", ".join(str(t) for t in missing[:8])
        if len(missing) > 8:
            shown += f", ... ({len(missing)} total)"
        emit(f"trial(s) covered by no task: {shown}")

    # -- symbolic prefix replay ----------------------------------------------
    cursor = 0
    history = ()
    open_slots = {}
    emitted: List[int] = []
    consumed = True  # becomes False while a working state is live
    instructions = partition.prefix
    for index, instr in enumerate(instructions):
        consumed = False
        if isinstance(instr, Advance):
            cursor = instr.end_layer
        elif isinstance(instr, Snapshot):
            open_slots[instr.slot] = (cursor, history)
        elif isinstance(instr, Inject):
            history = history + (instr.event,)
        elif isinstance(instr, Restore):
            entry = open_slots.pop(instr.slot, None)
            if entry is None:
                emit(
                    f"prefix restores slot {instr.slot}, which is empty",
                    location=f"prefix[{index}]",
                )
            else:
                cursor, history = entry
        elif isinstance(instr, EmitTask):
            if not 0 <= instr.task_id < partition.num_tasks:
                emit(
                    f"prefix emits unknown task {instr.task_id}",
                    location=f"prefix[{index}]",
                )
                continue
            task = partition.tasks[instr.task_id]
            if instr.task_id in emitted:
                emit(
                    f"task {instr.task_id} emitted more than once",
                    location=f"prefix[{index}]",
                )
            emitted.append(instr.task_id)
            if cursor != task.entry_layer:
                emit(
                    f"task {task.task_id} declares entry layer "
                    f"{task.entry_layer} but is emitted at layer {cursor}",
                    location=f"prefix[{index}]",
                )
            if history != tuple(task.entry_events):
                emit(
                    f"task {task.task_id} declares entry events "
                    f"({', '.join(map(str, task.entry_events))}) but is "
                    f"emitted with ({', '.join(map(str, history))})",
                    location=f"prefix[{index}]",
                )
            next_instr = (
                instructions[index + 1]
                if index + 1 < len(instructions)
                else None
            )
            if next_instr is not None and not isinstance(next_instr, Restore):
                emit(
                    f"task {task.task_id} emission is followed by "
                    f"{type(next_instr).__name__}; the consumed working "
                    "state demands a Restore or the end of the prefix",
                    location=f"prefix[{index}]",
                )
            consumed = True
        else:
            emit(
                f"unknown prefix instruction {instr!r}",
                location=f"prefix[{index}]",
            )
    if instructions and not consumed:
        emit(
            "prefix program leaves the working state alive (it must end "
            "with an EmitTask)",
            location=f"prefix[{len(instructions) - 1}]",
        )
    for slot in sorted(open_slots):
        emit(f"prefix slot {slot} is never restored")
    never_emitted = [
        task.task_id for task in partition.tasks if task.task_id not in emitted
    ]
    if never_emitted:
        emit(
            "task(s) never emitted by the prefix: "
            + ", ".join(map(str, never_emitted))
        )
    if emitted != sorted(emitted):
        emit(
            f"tasks emitted out of id order ({emitted}); task ids encode "
            "the serial finish order the parent replays",
            hint="renumber tasks in prefix-emission order",
        )

    # -- per-task sub-plan soundness ----------------------------------------
    for task in partition.tasks:
        local_trials = None
        if trials is not None:
            local_trials = [trials[g] for g in task.trial_indices]
        sub_audit = sanitize_plan(
            task.plan,
            trials=local_trials,
            layered=layered,
            config=config,
            entry_layer=task.entry_layer,
            entry_events=task.entry_events,
        )
        for sub in sub_audit.errors:
            emit(
                f"task {task.task_id} sub-plan: [{sub.code}] {sub.message}",
                location=f"task[{task.task_id}].{sub.location}",
            )

    # -- conservation against the serial plan --------------------------------
    planned_ops = None
    if layered is not None:
        planned_ops = partition.planned_operations(layered)
        if trials is not None and not missing and len(seen) == len(trials):
            from ..core.schedule import build_plan

            serial = build_plan(layered, trials)
            serial_ops = serial.planned_operations(layered)
            if planned_ops != serial_ops:
                emit(
                    f"partition plans {planned_ops} basic operation(s) but "
                    f"the serial plan performs {serial_ops}",
                    hint="prefix ops plus sub-plan ops must conserve the "
                    "serial instruction multiset",
                )
            partition_order = [
                g for task in partition.tasks for g in task.trial_indices
            ]
            if partition_order != serial.finished_trial_indices():
                emit(
                    "partition finish order differs from the serial plan's "
                    "(the parent's merged on_finish replay would diverge)",
                    hint="tasks must be emitted in the serial DFS order",
                )

    return LintResult(
        diagnostics,
        info={
            "num_tasks": partition.num_tasks,
            "depth": partition.depth,
            "covered_trials": len(seen),
            "planned_operations": planned_ops,
        },
    )


def lint_partition_trace(
    partition,
    assignment: Sequence[Sequence[int]],
    recorder,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Cross-check a merged multi-worker trace, track by track (``P017``).

    The parent track (events without a ``worker`` tag) must follow the
    prefix program's Snapshot/Restore schedule; each worker's track must
    follow the concatenation of its assigned sub-plans' schedules in
    task-id order (the order :func:`~repro.core.parallel.run_parallel`
    executes them).
    """
    diagnostics: List[Diagnostic] = []
    info = {}

    parent_events = [
        event
        for event in recorder.events
        if not (event.args and "worker" in event.args)
    ]
    prefix_plan = ExecutionPlan(
        list(partition.prefix),
        num_trials=partition.num_trials,
        num_layers=partition.num_layers,
    )
    parent_result = lint_trace(
        prefix_plan, _EventsView(parent_events), config=config
    )
    diagnostics.extend(parent_result.diagnostics)
    info["parent"] = parent_result.info

    for worker_id, task_ids in enumerate(assignment):
        if not task_ids:
            continue
        worker_events = [
            event
            for event in recorder.events
            if event.args and event.args.get("worker") == worker_id
        ]
        combined = []
        for task_id in sorted(task_ids):
            combined.extend(partition.tasks[task_id].plan.instructions)
        worker_plan = ExecutionPlan(
            combined,
            num_trials=partition.num_trials,
            num_layers=partition.num_layers,
        )
        worker_result = lint_trace(
            worker_plan, _EventsView(worker_events), config=config
        )
        diagnostics.extend(worker_result.diagnostics)
        info[f"worker{worker_id}"] = worker_result.info

    return LintResult(diagnostics, info=info)
