"""Wavefront-soundness rules: batched schedules must replay the serial plan.

:mod:`repro.core.wavefront` re-schedules a serial :class:`ExecutionPlan`
into breadth-wise batched steps; the executor's bit-exactness contract
("batched results are ``np.array_equal`` to serial DFS at every width")
rests entirely on the *schedule* being a pure regrouping of the serial
instruction stream.  P024 proves that property symbolically, with no
backend attached — the same static-proof idiom as the plan sanitizer
(P001-P012) applied to the :class:`WavefrontPlan`:

* every batch step groups only lanes whose *pending segment* is exactly
  the step's ``[start, end)`` window (mixed segments would advance some
  columns through the wrong gates);
* a symbolic replay of every lane's station cursor proves each lane
  visits its stations in order, exactly once, materializing from a row
  produced by a strictly earlier step (carry from itself, fork/steal
  from its parent) — so copy-on-diverge never reads a column that does
  not yet exist or was already retired;
* the replayed finish sequence, ordered by serial rank, equals the
  serial plan's ``Finish`` instruction stream — same trials, same order;
* operation counts are conserved: batched gate applications plus
  injections equal the serial plan's closed-form operation count.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from .diagnostics import Diagnostic, LintConfig, LintResult, Severity
from .registry import make_diagnostic, register

__all__ = ["lint_wavefront"]


register(
    "P024",
    "wavefront-soundness",
    Severity.ERROR,
    "plan",
    "Wavefront batch steps group mismatched segments or replay a "
    "different schedule than the serial plan.",
    explanation="Trial-batched execution is only a performance "
    "transformation if the wavefront schedule is a pure regrouping of "
    "the serial plan: every batched column must advance through exactly "
    "the gates its trial would see serially, in the same order, from a "
    "state that serial execution would also have reached.  P024 proves "
    "this symbolically — each batch step may group only lanes whose "
    "pending segment equals the step's [start, end) window and may not "
    "exceed the planned batch size; a replay of every lane's station "
    "cursor shows each lane visits its stations in order, exactly once, "
    "sourcing its column from a row a strictly earlier step produced "
    "(its own carry, or its parent at the recorded divergence point); "
    "the finish sequence ordered by serial rank must equal the serial "
    "plan's Finish instructions trial-for-trial; and summed batched "
    "gate work plus injections must equal the serial plan's operation "
    "count.  Any violation means the batched executor computes "
    "something other than the serial semantics and its bit-exactness "
    "guarantee is void.",
)


def _emit(
    diagnostics: List[Diagnostic],
    message: str,
    location: str,
    hint: str = "",
    config: Optional[LintConfig] = None,
) -> None:
    diagnostic = make_diagnostic(
        "P024", message, location=location, hint=hint or None, config=config
    )
    if diagnostic is not None:
        diagnostics.append(diagnostic)


def lint_wavefront(
    wavefront,
    plan,
    layered=None,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """``P024``: prove a :class:`WavefrontPlan` replays the serial plan.

    ``wavefront`` is the batched schedule, ``plan`` the serial
    :class:`~repro.core.schedule.ExecutionPlan` it was derived from.
    With ``layered`` the rule also proves operation-count conservation
    (batched gate work + injections == serial closed form).  Runs in
    O(steps + lanes) with no backend; ``run_wavefront(check=True)``
    calls it before touching a statevector.
    """
    from ..core.schedule import Finish, Inject, Snapshot

    diagnostics: List[Diagnostic] = []
    lanes = wavefront.lanes
    num_lanes = len(lanes)

    # --- segment uniformity, width, and symbolic cursor replay --------
    cursor = [0] * num_lanes  # next station each lane must materialize
    produced: Set[Tuple[int, int]] = set()  # rows parked by earlier steps
    for index, step in enumerate(wavefront.steps):
        width = len(step.rows)
        where = f"step {index}"
        if width == 0:
            _emit(diagnostics, "empty batch step", where, config=config)
            continue
        if width > wavefront.batch_size:
            _emit(
                diagnostics,
                f"batch width {width} exceeds batch size "
                f"{wavefront.batch_size}",
                where,
                config=config,
            )
        seen_in_step: Set[int] = set()
        for col, row in enumerate(step.rows):
            spot = f"{where}[{col}]"
            if not 0 <= row.lane < num_lanes:
                _emit(
                    diagnostics,
                    f"row references unknown lane {row.lane}",
                    spot,
                    config=config,
                )
                continue
            lane = lanes[row.lane]
            if row.lane in seen_in_step:
                _emit(
                    diagnostics,
                    f"lane {row.lane} appears twice in one batch step",
                    spot,
                    hint="a lane is one trie trajectory — two columns of "
                    "the same lane in one step double-apply its gates",
                    config=config,
                )
            seen_in_step.add(row.lane)
            if row.station >= len(lane.stations):
                _emit(
                    diagnostics,
                    f"lane {row.lane} has no station {row.station}",
                    spot,
                    config=config,
                )
                continue
            segment = lane.stations[row.station]
            if segment != (step.start, step.end):
                _emit(
                    diagnostics,
                    f"lane {row.lane} station {row.station} pends segment "
                    f"[{segment[0]}, {segment[1]}) but was grouped into a "
                    f"[{step.start}, {step.end}) step",
                    spot,
                    hint="batches may only group identical pending "
                    "segments; mixed segments advance columns through "
                    "the wrong gates",
                    config=config,
                )
            if row.station != cursor[row.lane]:
                _emit(
                    diagnostics,
                    f"lane {row.lane} materializes station {row.station} "
                    f"but its replay cursor is at {cursor[row.lane]}",
                    spot,
                    hint="stations must be visited in order, exactly once",
                    config=config,
                )
            else:
                cursor[row.lane] += 1
            # Materialization source discipline.
            if row.kind == "root":
                if row.lane != 0 or row.station != 0 or row.src is not None:
                    _emit(
                        diagnostics,
                        f"invalid root row (lane {row.lane}, station "
                        f"{row.station}, src {row.src})",
                        spot,
                        config=config,
                    )
            elif row.kind == "carry":
                expected = (row.lane, row.station - 1)
                if row.src != expected:
                    _emit(
                        diagnostics,
                        f"carry row sources {row.src}, expected "
                        f"{expected}",
                        spot,
                        config=config,
                    )
            elif row.kind in ("fork", "steal"):
                if row.station != 0:
                    _emit(
                        diagnostics,
                        f"{row.kind} row at station {row.station} (births "
                        "happen at station 0)",
                        spot,
                        config=config,
                    )
                if row.src != lane.src:
                    _emit(
                        diagnostics,
                        f"{row.kind} row sources {row.src} but lane "
                        f"{row.lane} diverges from {lane.src}",
                        spot,
                        config=config,
                    )
                want_steal = not lane.snapshot
                if (row.kind == "steal") != want_steal:
                    _emit(
                        diagnostics,
                        f"lane {row.lane} snapshot={lane.snapshot} "
                        f"materialized as {row.kind!r}",
                        spot,
                        hint="snapshot forks copy the surviving parent "
                        "row; bare injects steal it",
                        config=config,
                    )
            else:
                _emit(
                    diagnostics,
                    f"unknown row kind {row.kind!r}",
                    spot,
                    config=config,
                )
            if row.src is not None and row.src not in produced:
                _emit(
                    diagnostics,
                    f"row sources {row.src} before any step produced it",
                    spot,
                    hint="copy-on-diverge may only read rows parked by a "
                    "strictly earlier step",
                    config=config,
                )
        # Arrivals park this step's rows for later consumers.
        for row in step.rows:
            produced.add((row.lane, row.station))

    # --- completeness: every lane visited every station ---------------
    for lane in lanes:
        if cursor[lane.lane_id] != len(lane.stations):
            _emit(
                diagnostics,
                f"lane {lane.lane_id} visited {cursor[lane.lane_id]} of "
                f"{len(lane.stations)} station(s)",
                f"lane {lane.lane_id}",
                hint="an unvisited station loses its trial(s); the "
                "schedule is incomplete",
                config=config,
            )

    # --- finish sequence: serial rank order == Finish instructions ----
    serial_finishes = [
        tuple(instr.trial_indices)
        for instr in plan.instructions
        if isinstance(instr, Finish)
    ]
    if len(wavefront.finishes) != len(serial_finishes):
        _emit(
            diagnostics,
            f"wavefront fires {len(wavefront.finishes)} finish(es) but "
            f"the serial plan has {len(serial_finishes)}",
            "finishes",
            config=config,
        )
    for position, (rank, lane_id, trials) in enumerate(wavefront.finishes):
        if rank != position:
            _emit(
                diagnostics,
                f"finish ranks are not a permutation of the serial order "
                f"(rank {rank} at position {position})",
                "finishes",
                config=config,
            )
            break
        if position < len(serial_finishes) and trials != serial_finishes[position]:
            _emit(
                diagnostics,
                f"finish {position} (lane {lane_id}) delivers trials "
                f"{trials} but the serial plan finishes "
                f"{serial_finishes[position]}",
                "finishes",
                hint="batched finishes are buffered and must drain in "
                "serial rank order, trial-for-trial",
                config=config,
            )
        lane = lanes[lane_id] if 0 <= lane_id < num_lanes else None
        if lane is not None and lane.finish != (rank, trials):
            _emit(
                diagnostics,
                f"finish table entry {position} disagrees with lane "
                f"{lane_id}'s recorded finish {lane.finish}",
                "finishes",
                config=config,
            )

    # --- structural counts vs the serial instruction stream -----------
    serial_injects = plan.count(Inject)
    if wavefront.num_injects != serial_injects:
        _emit(
            diagnostics,
            f"wavefront injects {wavefront.num_injects} event(s) but the "
            f"serial plan injects {serial_injects}",
            "injects",
            config=config,
        )
    serial_snapshots = plan.count(Snapshot)
    if wavefront.num_snapshots != serial_snapshots:
        _emit(
            diagnostics,
            f"wavefront marks {wavefront.num_snapshots} snapshot fork(s) "
            f"but the serial plan snapshots {serial_snapshots} time(s)",
            "snapshots",
            config=config,
        )

    # --- operation conservation (needs the layer axis for gate counts)
    batched_ops: Optional[int] = None
    serial_ops: Optional[int] = None
    if layered is not None:
        batched_ops = wavefront.num_injects
        for step in wavefront.steps:
            if step.end > step.start:
                batched_ops += layered.gates_between(step.start, step.end) * len(
                    step.rows
                )
        serial_ops = plan.planned_operations(layered)
        if batched_ops != serial_ops:
            _emit(
                diagnostics,
                f"batched schedule applies {batched_ops} operation(s) but "
                f"the serial plan applies {serial_ops}",
                "ops",
                hint="batching must be a pure regrouping — per-trial gate "
                "work is invariant",
                config=config,
            )

    info: Dict[str, Any] = {
        "num_lanes": num_lanes,
        "num_steps": len(wavefront.steps),
        "max_width": max(
            (len(step.rows) for step in wavefront.steps), default=0
        ),
        "finishes": len(wavefront.finishes),
        "batched_ops": batched_ops,
        "serial_ops": serial_ops,
    }
    return LintResult(diagnostics, info=info)
