"""Metrics-vs-trace consistency: the served view must equal the record.

The metric registry (:mod:`repro.obs.metrics`) is the *current totals*
view a long-running process exposes; the trace recorder is the event-level
record.  Both are derived from the same instrumentation calls, so every
bridged family must be reproducible from the raw events — if a scraped
total and a trace replay disagree, one of the two derivations is lying
and neither can be trusted as performance evidence.

* **P025** — every ``repro_counter`` total equals the independent replay
  of the trace's counter deltas, every ``repro_gauge`` equals the
  replayed maximum, every ``repro_span_seconds`` histogram matches the
  matched-pair replay (count and sum), and the event/dropped totals
  equal the recorder's own bookkeeping.

Under ring-buffer truncation the event replay only describes the
retained window, so P025 degrades honestly: counter and gauge families
are checked against the recorder's out-of-band aggregates (exact under
truncation by construction) and the span histograms are checked against
a replay of the retained events only.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..obs.metrics import (
    COUNTER_FAMILY,
    DROPPED_FAMILY,
    EVENTS_FAMILY,
    GAUGE_FAMILY,
    SPAN_FAMILY,
    MetricRegistry,
    _span_duration_samples,
)
from .diagnostics import Diagnostic, LintConfig, LintResult, Severity
from .registry import make_diagnostic, register

__all__ = ["lint_metrics_trace"]


register(
    "P025",
    "metrics-trace-mismatch",
    Severity.ERROR,
    "plan",
    "A scraped metric total diverges from an independent replay of the "
    "recorded trace.",
    explanation="The OpenMetrics snapshot is the observatory's served "
    "interface — dashboards and the CI bench gate read it instead of the "
    "raw trace, so it must be provably the same data.  P025 re-derives "
    "every bridged family from first principles (counter totals from "
    "per-event deltas, gauge values from the replayed maximum, span "
    "histograms from matched begin/end pairs) and compares exactly.  A "
    "mismatch means the registry bridge and the trace recorder have "
    "diverged and every number the exporter publishes is suspect.  Under "
    "ring-buffer truncation the replay covers only the retained window, "
    "so counters and gauges are checked against the recorder's exact "
    "out-of-band aggregates instead — the check degrades, it never "
    "silently passes.",
)


def _emit(
    diagnostics: List[Diagnostic],
    message: str,
    location: str,
    hint: str = "",
    config: Optional[LintConfig] = None,
) -> None:
    diagnostic = make_diagnostic(
        "P025", message, location=location, hint=hint or None, config=config
    )
    if diagnostic is not None:
        diagnostics.append(diagnostic)


def _series_by_label(
    snapshot: Dict[str, Any], family: str, label: str
) -> Dict[str, Dict[str, Any]]:
    entry = snapshot.get(family)
    if not entry:
        return {}
    return {
        series["labels"][label]: series for series in entry.get("series", [])
    }


def _scalar_series(snapshot: Dict[str, Any], family: str) -> Optional[float]:
    entry = snapshot.get(family)
    if not entry or not entry.get("series"):
        return None
    return float(entry["series"][0]["value"])


def lint_metrics_trace(
    snapshot: Any,
    recorder,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """``P025``: prove a metrics snapshot against its source trace.

    ``snapshot`` is a :class:`~repro.obs.metrics.MetricRegistry` (it is
    snapshotted here) or the mapping :meth:`MetricRegistry.snapshot`
    returned; ``recorder`` is the :class:`InMemoryRecorder` the registry
    was bridged from.  Counter totals are replayed from per-event
    ``delta`` args and gauge values from the replayed maximum when the
    recorder is untruncated; under truncation both fall back to the
    recorder's exact aggregates.  Span histograms always compare against
    a matched-pair replay of the retained window.
    """
    if isinstance(snapshot, MetricRegistry):
        snapshot = snapshot.snapshot()
    diagnostics: List[Diagnostic] = []
    truncated = bool(getattr(recorder, "dropped_events", 0))

    # --- independent replay of the retained event window -------------------
    replayed_counters: Dict[str, float] = {}
    replayed_gauges: Dict[str, float] = {}
    for event in recorder.events:
        if event.ph != "C" or not event.args:
            continue
        if "delta" in event.args:
            replayed_counters[event.name] = replayed_counters.get(
                event.name, 0.0
            ) + float(event.args["delta"])  # type: ignore[arg-type]
        else:
            value = float(event.args["value"])  # type: ignore[arg-type]
            previous = replayed_gauges.get(event.name)
            if previous is None or value > previous:
                replayed_gauges[event.name] = value

    # --- counters -----------------------------------------------------------
    want_counters = (
        dict(recorder.counters) if truncated else replayed_counters
    )
    got_counters = _series_by_label(snapshot, COUNTER_FAMILY, "name")
    for name in sorted(set(want_counters) | set(got_counters)):
        want = want_counters.get(name)
        series = got_counters.get(name)
        if series is None:
            _emit(
                diagnostics,
                f"trace counter {name!r} (total {want}) has no "
                f"{COUNTER_FAMILY} series",
                location=f"metrics:{COUNTER_FAMILY}",
                hint="rebridge the registry with registry_from_recorder",
                config=config,
            )
            continue
        got = float(series["value"])
        if want is None:
            _emit(
                diagnostics,
                f"{COUNTER_FAMILY}{{name={name!r}}} = {got} but the trace "
                "records no such counter",
                location=f"metrics:{COUNTER_FAMILY}",
                hint="the registry was fed from a different recorder",
                config=config,
            )
        elif got != want:
            source = "aggregate" if truncated else "event replay"
            _emit(
                diagnostics,
                f"{COUNTER_FAMILY}{{name={name!r}}} = {got} but the trace "
                f"{source} totals {want}",
                location=f"metrics:{COUNTER_FAMILY}",
                hint="counter bridge and recorder aggregates diverged",
                config=config,
            )

    # --- gauges -------------------------------------------------------------
    want_gauges = (
        dict(recorder.gauge_peaks) if truncated else replayed_gauges
    )
    got_gauges = _series_by_label(snapshot, GAUGE_FAMILY, "name")
    for name in sorted(set(want_gauges) | set(got_gauges)):
        want = want_gauges.get(name)
        series = got_gauges.get(name)
        if series is None:
            _emit(
                diagnostics,
                f"trace gauge {name!r} (peak {want}) has no "
                f"{GAUGE_FAMILY} series",
                location=f"metrics:{GAUGE_FAMILY}",
                config=config,
            )
            continue
        got = float(series["value"])
        if want is None:
            _emit(
                diagnostics,
                f"{GAUGE_FAMILY}{{name={name!r}}} = {got} but the trace "
                "records no such gauge",
                location=f"metrics:{GAUGE_FAMILY}",
                config=config,
            )
        elif got != want:
            source = "aggregate peak" if truncated else "replayed maximum"
            _emit(
                diagnostics,
                f"{GAUGE_FAMILY}{{name={name!r}}} = {got} but the trace "
                f"{source} is {want}",
                location=f"metrics:{GAUGE_FAMILY}",
                config=config,
            )

    # --- span histograms (always the retained-window replay) ---------------
    samples = _span_duration_samples(recorder)
    got_spans = _series_by_label(snapshot, SPAN_FAMILY, "span")
    for span in sorted(set(samples) | set(got_spans)):
        observed = samples.get(span, [])
        series = got_spans.get(span)
        if series is None:
            _emit(
                diagnostics,
                f"trace span {span!r} ({len(observed)} matched pair(s)) has "
                f"no {SPAN_FAMILY} series",
                location=f"metrics:{SPAN_FAMILY}",
                config=config,
            )
            continue
        if int(series["count"]) != len(observed):
            _emit(
                diagnostics,
                f"{SPAN_FAMILY}{{span={span!r}}} count {series['count']} != "
                f"{len(observed)} matched pair(s) in the trace",
                location=f"metrics:{SPAN_FAMILY}",
                config=config,
            )
        want_sum = sum(observed)
        if not math.isclose(
            float(series["sum"]), want_sum, rel_tol=1e-9, abs_tol=1e-12
        ):
            _emit(
                diagnostics,
                f"{SPAN_FAMILY}{{span={span!r}}} sum {series['sum']} != "
                f"replayed {want_sum}",
                location=f"metrics:{SPAN_FAMILY}",
                config=config,
            )

    # --- meta counters ------------------------------------------------------
    got_events = _scalar_series(snapshot, EVENTS_FAMILY)
    if got_events is not None and int(got_events) != len(recorder.events):
        _emit(
            diagnostics,
            f"{EVENTS_FAMILY} = {int(got_events)} but the recorder retains "
            f"{len(recorder.events)} event(s)",
            location=f"metrics:{EVENTS_FAMILY}",
            config=config,
        )
    got_dropped = _scalar_series(snapshot, DROPPED_FAMILY)
    dropped = int(getattr(recorder, "dropped_events", 0))
    if got_dropped is not None and int(got_dropped) != dropped:
        _emit(
            diagnostics,
            f"{DROPPED_FAMILY} = {int(got_dropped)} but the recorder "
            f"dropped {dropped} event(s)",
            location=f"metrics:{DROPPED_FAMILY}",
            config=config,
        )

    return LintResult(
        diagnostics=diagnostics,
        info={
            "truncated": truncated,
            "counters_checked": len(set(want_counters) | set(got_counters)),
            "gauges_checked": len(set(want_gauges) | set(got_gauges)),
            "spans_checked": len(set(samples) | set(got_spans)),
        },
    )
