"""Hybrid-soundness rule: the Clifford fast path must replay the serial plan.

:mod:`repro.core.hybrid` executes symbolic spans of a serial
:class:`~repro.core.schedule.ExecutionPlan` as Pauli-frame algebra over
shared dense anchors, materializing amplitudes only where a frame cannot
cross a segment.  The executor's bit-exactness contract rests on the
static :class:`~repro.core.hybrid.HybridSchedule` being a faithful
re-interpretation of the serial instruction stream.  P026 proves that
with an *independent* symbolic replay — same static-proof idiom as the
plan sanitizer (P001-P012) and the wavefront rule (P024):

* **action agreement** — re-walking the instructions with an independent
  frame/slot interpreter must reproduce the schedule's action tags
  instruction-for-instruction: symbolic exactly where the frame provably
  crosses the segment's compiled matrices, a materialization point
  exactly at the first failure, dense everywhere below it;
* **frame re-derivation** — the conjugated frame stored in every
  materialization/finish/emit action payload must equal the
  independently re-derived frame (phase, X and Z bit masks);
* **event conservation** — the event history carried to each symbolic
  materialization point must equal the plan's injected events along that
  trie path, in order (the plan sanitizer separately proves those match
  each finished trial);
* **ops conservation** — the nominal operation count of the annotated
  walk (advance gates + injections, symbolic or not) must equal the
  serial plan's closed-form ``planned_operations``;
* **anchor-refcount soundness** — every anchor derivation must happen
  while its parent anchor is still referenced, and every path's static
  use count must equal the replayed number of uses, so the runtime's
  eager-release discipline can never free an anchor another consumer
  still needs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic, LintConfig, LintResult, Severity
from .registry import make_diagnostic, register

__all__ = ["lint_hybrid", "verify_schedule"]


register(
    "P026",
    "hybrid-soundness",
    Severity.ERROR,
    "plan",
    "Hybrid Clifford/Pauli-frame schedule disagrees with an independent "
    "symbolic replay of the serial plan.",
    explanation="The hybrid executor replaces dense suffix re-execution "
    "with Pauli-frame algebra over shared anchor states, and its "
    "bit-exactness guarantee (np.array_equal against the serial dense "
    "run) is only as good as the static schedule driving it.  P026 "
    "re-walks the serial instruction stream with an independent "
    "interpreter: it re-derives every Pauli frame by conjugating through "
    "the exact fused matrices the compiled kernels were built from, "
    "re-decides every symbolic/dense split (a span is symbolic only if "
    "the frame provably commutes through each matrix under exact "
    "arithmetic), and re-counts anchor uses.  The schedule must agree "
    "action-for-action: same materialization points, bitwise-equal frame "
    "payloads, the same injected-event history at every materialization, "
    "nominal operation counts equal to the serial plan's closed form, "
    "and anchor refcounts that never free a state a later consumer "
    "needs.  Any disagreement means the hybrid executor would compute "
    "something other than the serial semantics — wrong amplitudes, a "
    "skewed operation account, or a use-after-free of a shared anchor — "
    "so the run is rejected before a backend ever executes it.",
)


def _emit(
    diagnostics: List[Diagnostic],
    message: str,
    location: str,
    hint: str = "",
    config: Optional[LintConfig] = None,
) -> None:
    diagnostic = make_diagnostic(
        "P026", message, location=location, hint=hint or None, config=config
    )
    if diagnostic is not None:
        diagnostics.append(diagnostic)


def _frames_equal(a, b) -> bool:
    import numpy as np

    return (
        a.phase == b.phase
        and np.array_equal(a.x, b.x)
        and np.array_equal(a.z, b.z)
    )


def _replay(
    layered,
    instructions: Sequence[Any],
    schedule,
    problems: List[Tuple[str, str, str]],
) -> None:
    """Independent interpreter; appends ``(message, location, hint)``."""
    from ..core.hybrid import ROOT_PATH, _shadow_segment
    from ..core.schedule import Advance, Finish, Inject, Restore, Snapshot
    from ..sim.stabilizer import PauliFrame

    actions = schedule.actions
    if len(actions) != len(instructions):
        problems.append(
            (
                f"schedule has {len(actions)} actions for "
                f"{len(instructions)} instructions",
                "schedule",
                "",
            )
        )
        return

    shadow_cache: Dict[Tuple[int, int], Tuple] = {}

    def shadow(a: int, b: int) -> Tuple:
        key = (a, b)
        if key not in shadow_cache:
            shadow_cache[key] = _shadow_segment(layered, a, b)
        return shadow_cache[key]

    class Sym:
        __slots__ = ("path", "frame", "events")

        def __init__(self, path, frame, events):
            self.path = path
            self.frame = frame
            self.events = events

        def copy(self):
            return Sym(self.path, self.frame.copy(), self.events)

    DENSE = "dense"
    working: Any = Sym(ROOT_PATH, PauliFrame(layered.num_qubits), ())
    slots: Dict[int, Any] = {}
    seen_paths = {ROOT_PATH}
    replay_uses: Dict[Tuple[int, ...], int] = {ROOT_PATH: 0}
    nominal_ops = 0

    def use(path):
        replay_uses[path] = replay_uses.get(path, 0) + 1

    for index, (instr, action) in enumerate(zip(instructions, actions)):
        kind = action[0]
        where = f"instruction {index}"
        if isinstance(instr, Advance):
            gates = layered.gates_between(instr.start_layer, instr.end_layer)
            nominal_ops += gates
            if working is DENSE:
                if kind != "advance-dense":
                    problems.append(
                        (
                            f"dense working state but action is {kind}",
                            where,
                            "everything below a materialization point "
                            "must stay dense until the enclosing Restore",
                        )
                    )
                    return
                continue
            if working.frame.is_identity:
                crossed: Optional[PauliFrame] = working.frame.copy()
            else:
                trial = working.frame.copy()
                crossed = trial
                for matrix, qubits in shadow(
                    instr.start_layer, instr.end_layer
                ):
                    if not trial.try_conjugate_matrix(matrix, qubits):
                        crossed = None
                        break
            if crossed is None:
                if kind != "advance-mat":
                    problems.append(
                        (
                            f"frame cannot cross segment "
                            f"[{instr.start_layer},{instr.end_layer}) but "
                            f"action is {kind}",
                            where,
                            "a frame that fails the exact commutation "
                            "check must force a materialization point",
                        )
                    )
                    return
                _, path, frame, events = action
                if path != working.path:
                    problems.append(
                        (
                            f"materialization anchored at {path}, replay "
                            f"is at {working.path}",
                            where,
                            "",
                        )
                    )
                    return
                if not _frames_equal(frame, working.frame):
                    problems.append(
                        (
                            "materialization frame differs from the "
                            "re-derived frame",
                            where,
                            "the payload frame decides the amplitudes — "
                            "a mismatch is a wrong result, not a style "
                            "issue",
                        )
                    )
                    return
                if tuple(events) != tuple(working.events):
                    problems.append(
                        (
                            f"materialization event history {events} != "
                            f"replayed {working.events}",
                            where,
                            "",
                        )
                    )
                    return
                use(working.path)
                working = DENSE
                continue
            if kind != "advance-sym":
                problems.append(
                    (
                        f"frame crosses segment "
                        f"[{instr.start_layer},{instr.end_layer}) but "
                        f"action is {kind}",
                        where,
                        "a provably-crossable span must stay symbolic or "
                        "the schedule's cost claims are wrong",
                    )
                )
                return
            _, parent, new_path, derive = action
            expected = working.path + (instr.end_layer,)
            if parent != working.path or new_path != expected:
                problems.append(
                    (
                        f"advance maps path {parent} -> {new_path}, replay "
                        f"expects {working.path} -> {expected}",
                        where,
                        "",
                    )
                )
                return
            if derive != (new_path not in seen_paths):
                problems.append(
                    (
                        f"derive flag {derive} but path {new_path} "
                        f"{'already' if new_path in seen_paths else 'never'} "
                        "seen",
                        where,
                        "a wrong derive flag double-derives or skips an "
                        "anchor",
                    )
                )
                return
            if derive:
                if working.path not in replay_uses:
                    problems.append(
                        (
                            f"deriving {new_path} from unknown parent "
                            f"{working.path}",
                            where,
                            "",
                        )
                    )
                    return
                use(working.path)
                seen_paths.add(new_path)
                replay_uses.setdefault(new_path, 0)
            working = Sym(new_path, crossed, working.events)
        elif isinstance(instr, Snapshot):
            expected_kind = (
                "snapshot-dense" if working is DENSE else "snapshot-sym"
            )
            if kind != expected_kind:
                problems.append(
                    (f"expected {expected_kind}, schedule has {kind}", where, "")
                )
                return
            slots[instr.slot] = (
                DENSE if working is DENSE else working.copy()
            )
        elif isinstance(instr, Inject):
            nominal_ops += 1
            if working is DENSE:
                if kind != "inject-dense":
                    problems.append(
                        (f"expected inject-dense, schedule has {kind}", where, "")
                    )
                    return
            else:
                if kind != "inject-sym":
                    problems.append(
                        (f"expected inject-sym, schedule has {kind}", where, "")
                    )
                    return
                event = instr.event
                frame = working.frame.copy()
                frame.inject(event.pauli, event.qubit)
                working = Sym(
                    working.path, frame, working.events + (event,)
                )
        elif isinstance(instr, Restore):
            if instr.slot not in slots:
                problems.append(
                    (f"restore of unknown slot {instr.slot}", where, "")
                )
                return
            restored = slots.pop(instr.slot)
            expected_kind = (
                "restore-dense" if restored is DENSE else "restore-sym"
            )
            if kind != expected_kind:
                problems.append(
                    (f"expected {expected_kind}, schedule has {kind}", where, "")
                )
                return
            working = restored
        elif isinstance(instr, Finish):
            if working is DENSE:
                if kind != "finish-dense":
                    problems.append(
                        (f"expected finish-dense, schedule has {kind}", where, "")
                    )
                    return
            else:
                if kind != "finish-sym":
                    problems.append(
                        (f"expected finish-sym, schedule has {kind}", where, "")
                    )
                    return
                _, path, frame = action
                if path != working.path:
                    problems.append(
                        (
                            f"finish anchored at {path}, replay is at "
                            f"{working.path}",
                            where,
                            "",
                        )
                    )
                    return
                if not _frames_equal(frame, working.frame):
                    problems.append(
                        (
                            "finish frame differs from the re-derived frame",
                            where,
                            "the payload frame decides the amplitudes",
                        )
                    )
                    return
                use(working.path)
        elif hasattr(instr, "task_id"):
            if working is DENSE:
                if kind != "emit-dense":
                    problems.append(
                        (f"expected emit-dense, schedule has {kind}", where, "")
                    )
                    return
            else:
                if kind != "emit-sym":
                    problems.append(
                        (f"expected emit-sym, schedule has {kind}", where, "")
                    )
                    return
                _, path, frame = action
                if path != working.path or not _frames_equal(
                    frame, working.frame
                ):
                    problems.append(
                        (
                            "emitted entry state disagrees with the "
                            "re-derived path/frame",
                            where,
                            "",
                        )
                    )
                    return
                use(working.path)
        else:
            problems.append(
                (f"unknown instruction {instr!r}", where, "")
            )
            return

    # ---- conservation checks over the whole stream ----------------------
    if nominal_ops != schedule.stats["planned_ops"]:
        problems.append(
            (
                f"schedule claims {schedule.stats['planned_ops']} planned "
                f"ops, serial closed form gives {nominal_ops}",
                "schedule",
                "nominal accounting must be invariant under the hybrid "
                "switch",
            )
        )
    for path, count in schedule.path_uses.items():
        replayed = replay_uses.get(path)
        if replayed is None:
            problems.append(
                (
                    f"schedule references anchor path {path} the replay "
                    "never visits",
                    "schedule",
                    "",
                )
            )
        elif replayed != count:
            problems.append(
                (
                    f"anchor {path} has static use count {count}, replay "
                    f"counts {replayed}",
                    "schedule",
                    "a high count strands memory; a low count frees an "
                    "anchor a later consumer still needs",
                )
            )


def verify_schedule(layered, instructions, schedule) -> List[str]:
    """Replay-check a hybrid schedule; returns problem strings (empty = ok).

    Convenience wrapper used by ``run_hybrid(check=True)`` — same proof
    as :func:`lint_hybrid` without diagnostic plumbing.
    """
    problems: List[Tuple[str, str, str]] = []
    _replay(layered, instructions, schedule, problems)
    return [f"P026 {where}: {message}" for message, where, _ in problems]


def lint_hybrid(
    layered,
    plan,
    schedule=None,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """``P026``: prove a hybrid schedule replays the serial plan.

    ``plan`` is the serial :class:`~repro.core.schedule.ExecutionPlan`;
    ``schedule`` the :class:`~repro.core.hybrid.HybridSchedule` derived
    from it (re-derived via ``classify_plan`` when omitted, in which case
    the rule certifies the classifier against itself plus all
    conservation invariants).  Runs statically — no backend, no
    amplitudes — by conjugating frames through the exact fused matrices
    the compiled kernels apply.
    """
    from ..core.hybrid import classify_plan

    if schedule is None:
        schedule = classify_plan(layered, plan)
    problems: List[Tuple[str, str, str]] = []
    _replay(layered, plan.instructions, schedule, problems)
    diagnostics: List[Diagnostic] = []
    for message, where, hint in problems:
        _emit(diagnostics, message, where, hint=hint, config=config)
    info = {
        "stats": dict(schedule.stats),
        "anchors": schedule.stats["anchors"],
        "materializations": schedule.stats["materializations"],
        "active": schedule.active,
    }
    return LintResult(diagnostics, info=info)
