"""Journal lint: a run journal must be a consistent finish-order prefix.

Crash-safe resume (:func:`repro.core.resilience.run_journaled`) replays the
finish payloads recorded in a run journal instead of recomputing their
trials — so a corrupt or mismatched journal would silently poison the
resumed counts.  ``P019`` proves the journal's structural invariants before
any payload is trusted:

* **identity** — the journal's header (qubit count, trial count, trial-set
  fingerprint) matches the circuit and trial set being resumed;
* **exact cover prefix** — recorded finishes carry in-bounds,
  non-duplicated trial indices, and (with the circuit and trials at hand)
  form an *exact prefix* of the serial plan's finish stream: same index
  groups, same order.  Anything else means the journal came from a
  different run — or that resuming it would change the measurement RNG
  stream and thus the counts;
* **payload shape** — every recorded statevector has exactly ``2**n``
  amplitudes.

A torn tail (the run died mid-record) is *not* an error — the loader
already discarded it and the trials it covered are simply recomputed; the
lint reports it via ``result.info["truncated"]``.
"""

from __future__ import annotations

from typing import List, Optional

from .diagnostics import Diagnostic, LintConfig, LintResult, Severity
from .registry import make_diagnostic, register

__all__ = ["lint_journal"]


register(
    "P019",
    "journal-consistency",
    Severity.ERROR,
    "plan",
    "Run journal does not match the circuit/trial set or is not an exact "
    "prefix of the serial finish order.",
    explanation="Crash-safe resume replays journaled finish payloads "
    "instead of recomputing their trials, so a journal from a different "
    "circuit, trial set or finish order would silently poison the resumed "
    "counts.  P019 verifies the journal's identity fingerprint, payload "
    "shapes and exact-prefix property before any payload is trusted.",
)


def lint_journal(
    journal,
    layered=None,
    trials=None,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Audit a run journal before its payloads are trusted for resume.

    ``journal`` is a :class:`~repro.core.resilience.JournalReplay` or a
    path to a journal file (loaded via
    :func:`~repro.core.resilience.load_journal`).  With ``layered`` and
    ``trials`` supplied the audit also proves the fingerprint and the
    exact-prefix property against the serial plan; without them only the
    self-contained structural checks run.
    """
    from ..core.resilience import JournalReplay, journal_fingerprint, load_journal
    from ..core.schedule import Finish, build_plan

    if not isinstance(journal, JournalReplay):
        journal = load_journal(journal)

    diagnostics: List[Diagnostic] = []

    def emit(message: str, location: str = "journal", hint: str = "") -> None:
        diagnostic = make_diagnostic(
            "P019", message, location=location, hint=hint or None, config=config
        )
        if diagnostic is not None:
            diagnostics.append(diagnostic)

    # -- self-contained structural checks ------------------------------------
    amplitudes = 1 << journal.num_qubits
    seen = {}
    for sequence, (vector, indices) in enumerate(journal.finishes):
        location = f"record[{sequence}]"
        if len(vector) != amplitudes:
            emit(
                f"payload has {len(vector)} amplitudes, expected "
                f"{amplitudes} for {journal.num_qubits} qubit(s)",
                location=location,
            )
        if not indices:
            emit("record finishes no trials", location=location)
        for index in indices:
            if not 0 <= index < journal.num_trials:
                emit(
                    f"trial index {index} outside the journal's "
                    f"{journal.num_trials} trial(s)",
                    location=location,
                )
            elif index in seen:
                emit(
                    f"trial {index} already finished by record "
                    f"{seen[index]}",
                    location=location,
                    hint="each trial finishes exactly once",
                )
            else:
                seen[index] = sequence

    # -- identity against the run being resumed ------------------------------
    if layered is not None:
        if journal.num_qubits != layered.num_qubits:
            emit(
                f"journal recorded {journal.num_qubits} qubit(s) but the "
                f"circuit has {layered.num_qubits}",
                hint="this journal belongs to a different circuit",
            )
    if trials is not None:
        if journal.num_trials != len(trials):
            emit(
                f"journal recorded {journal.num_trials} trial(s) but the "
                f"run has {len(trials)}",
                hint="this journal belongs to a different trial set",
            )
    if layered is not None and trials is not None:
        expected = journal_fingerprint(layered, trials)
        if journal.fingerprint != expected:
            emit(
                f"fingerprint {journal.fingerprint:#010x} does not match "
                f"the circuit/trial set ({expected:#010x})",
                hint="the journal was written for different inputs; "
                "resuming it would corrupt the counts",
            )
        elif journal.num_trials == len(trials):
            # -- exact-prefix property against the serial finish order -------
            plan = build_plan(layered, trials)
            serial = [
                instr.trial_indices
                for instr in plan.instructions
                if isinstance(instr, Finish)
            ]
            recorded = [indices for _, indices in journal.finishes]
            if len(recorded) > len(serial):
                emit(
                    f"journal has {len(recorded)} finish record(s) but the "
                    f"plan only produces {len(serial)}"
                )
            else:
                for sequence, (got, want) in enumerate(zip(recorded, serial)):
                    if tuple(got) != tuple(want):
                        emit(
                            f"finish {sequence} covers trials {tuple(got)} "
                            f"but the serial plan finishes {tuple(want)} "
                            "there",
                            location=f"record[{sequence}]",
                            hint="the journal is not a prefix of the "
                            "serial finish order",
                        )
                        break

    info = {
        "records": len(journal.finishes),
        "completed_trials": len(journal.completed_trials),
        "truncated": journal.truncated,
    }
    return LintResult(diagnostics, info=info)
