"""Static cost & schedule analyzer: symbolic plan interpretation to a
machine-checkable **ResourceCertificate**.

The paper's redundancy elimination makes run cost a function of trie
*structure*: every ``Advance`` applies a statically known layer range,
every ``Inject`` one operator, every ``Snapshot``/``Restore`` moves one
statevector — so operations, flops, the resident-memory timeline and the
parallel makespan are all decidable from the :class:`ExecutionPlan` alone,
before a single amplitude is touched.  This module computes them:

:func:`analyze_plan`
    A symbolic abstract interpreter over plan programs (the same
    discipline as :func:`repro.lint.plan_sanitizer.sanitize_plan`, which
    proves *validity*; this pass computes *cost*).  Per-instruction
    flop/byte costs come from the kernel taxonomy
    (:func:`repro.sim.kernels.kernel_cost` folded over each compiled
    segment, fused single-qubit runs included); the memory timeline
    mirrors :class:`~repro.core.cache.StateCache` accounting exactly,
    including predicted spill/drop/recompute events under any
    :class:`~repro.core.cache.CacheBudget` (the mirror replays the
    executor's enforce-after-store / coldest-slot-first policy).

:func:`build_certificate`
    Bundles the plan analysis with, per candidate partition depth, the
    statically weighted sub-plan set and its LPT makespan over k workers,
    a sound parallel memory bound, and a ranked candidate list — the
    JSON document behind ``repro advise``.  Written atomically via
    :func:`repro.core.atomicio.atomic_write_json`.

The certificate is *checkable*: rules P020-P023
(:mod:`repro.lint.schedule_rules`) prove its numbers against real traces
and runtime counters, the same prove-it-then-run idiom as P013/P017/P018.

A note on makespan monotonicity: the raw LPT makespan at exactly ``k``
workers is **not** monotone in partition depth (deeper cuts move shared
segment work into the serial prefix), and greedy LPT itself is not even
guaranteed monotone in ``k`` for adversarial weights.  The *certified*
makespan is therefore ``min`` over ``j <= k`` of the raw LPT value —
monotone in workers by construction and sound, since extra workers can
always idle.  Depth monotonicity is deliberately not asserted; instead
P022 verifies operation conservation across depths (prefix + tasks ==
serial, every depth).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..circuits.layers import LayeredCircuit
from ..core.cache import CacheBudget
from ..core.events import ErrorEvent, Trial
from ..core.schedule import (
    Advance,
    ExecutionPlan,
    Finish,
    Inject,
    Restore,
    ScheduleError,
    Snapshot,
    build_plan,
)

__all__ = [
    "CERT_SCHEMA",
    "FRAME_OP_FLOPS",
    "PlanCostAnalysis",
    "analyze_hybrid",
    "analyze_plan",
    "frame_bytes",
    "lpt_assign",
    "lpt_makespan",
    "analyze_partition",
    "build_certificate",
    "write_certificate",
    "validate_certificate",
]

#: Certificate document schema tag.
CERT_SCHEMA = "repro-cert/1"

#: Modeled fixed cost of one kernel dispatch, in flop units.  Batching
#: folds ``width`` serial gate applications into one vectorized call, so
#: its win is dispatch-count reduction; a few microseconds of Python and
#: ufunc-setup overhead per call is worth roughly this many flops at the
#: dense kernel's streaming throughput.  Used only to *rank* batch widths
#: relative to each other — never compared against measured time.
DISPATCH_OVERHEAD_FLOPS = 16384

#: Modeled flop cost of conjugating one Pauli frame through one fused
#: gate matrix (``PauliFrame.try_conjugate_matrix`` on a <= 4x4 unitary):
#: a handful of small matrix products and phase comparisons, independent
#: of qubit count.  This is the price the hybrid pays per gate on a
#: symbolic span instead of the dense kernel's ``O(2**n)``.
FRAME_OP_FLOPS = 64

#: Modeled per-amplitude flop cost of materializing a Pauli frame onto an
#: anchor statevector (X part: index permutation copy; Z/phase part: one
#: complex multiply per amplitude).
MATERIALIZE_FLOPS_PER_AMP = 8


def frame_bytes(num_qubits: int) -> int:
    """Resident bytes of one Pauli-frame delta (x/z rows plus phase)."""
    return 2 * num_qubits + 16


def _segment_name(start_layer: int, end_layer: int) -> str:
    """The span name the executor records for this Advance range."""
    return f"advance[{start_layer},{end_layer})"


class PlanCostAnalysis:
    """Everything statically decidable about one plan execution.

    ``segments`` maps the executor's span name (``advance[s,e)``) to the
    per-range aggregate ``{count, gates, ops, flops, bytes_moved}``;
    ``timeline`` is the resident-memory change-point list
    ``[instruction_index, live, stored, resident]`` (index ``-1`` is the
    initial working state).  The nominal peaks mirror
    :func:`~repro.lint.plan_sanitizer.sanitize_plan` (and therefore the
    runtime ``CacheStats``); the ``predicted_*`` counters mirror the
    executor's budget degradation and are all zero without a budget.
    """

    def __init__(self) -> None:
        self.ops = 0
        self.flops = 0
        self.bytes_moved = 0
        self.num_instructions = 0
        self.segments: Dict[str, Dict[str, int]] = {}
        self.injects = 0
        self.inject_flops = 0
        self.inject_bytes = 0
        self.finishes = 0
        self.finished_trials = 0
        self.snapshots_taken = 0
        self.peak_msv = 1
        self.peak_stored = 0
        self.peak_resident_msv = 1
        self.peak_resident_stored = 0
        self.timeline: List[Tuple[int, int, int, int]] = []
        self.predicted_spills = 0
        self.predicted_spill_loads = 0
        self.predicted_drops = 0
        self.predicted_recomputes = 0
        self.predicted_recompute_ops = 0
        self.predicted_recompute_flops = 0

    @property
    def total_ops(self) -> int:
        """Ops a run actually applies: plan ops plus predicted recomputes."""
        return self.ops + self.predicted_recompute_ops

    @property
    def total_flops(self) -> int:
        return self.flops + self.predicted_recompute_flops

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ops": self.ops,
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "num_instructions": self.num_instructions,
            "segments": self.segments,
            "injects": {
                "count": self.injects,
                "flops": self.inject_flops,
                "bytes_moved": self.inject_bytes,
            },
            "finishes": self.finishes,
            "finished_trials": self.finished_trials,
            "snapshots_taken": self.snapshots_taken,
            "memory": {
                "peak_msv": self.peak_msv,
                "peak_stored": self.peak_stored,
                "peak_resident_msv": self.peak_resident_msv,
                "peak_resident_stored": self.peak_resident_stored,
                "timeline": [list(point) for point in self.timeline],
            },
            "predicted": {
                "spills": self.predicted_spills,
                "spill_loads": self.predicted_spill_loads,
                "drops": self.predicted_drops,
                "recomputes": self.predicted_recomputes,
                "recompute_ops": self.predicted_recompute_ops,
                "recompute_flops": self.predicted_recompute_flops,
            },
        }

    def __repr__(self) -> str:
        return (
            f"PlanCostAnalysis(ops={self.ops}, flops={self.flops}, "
            f"peak_msv={self.peak_msv})"
        )


def _inject_cost(compiled, event: ErrorEvent) -> Tuple[int, int]:
    """(flops, bytes) of one injected error operator."""
    from ..sim.kernels import kernel_cost

    kernel = compiled.operator_kernel(event.gate, (event.qubit,))
    cost = kernel_cost(kernel, compiled.num_qubits)
    return cost.flops, cost.bytes_moved


def _recompute_cost(
    compiled,
    layered: LayeredCircuit,
    provenance: Sequence[ErrorEvent],
    layer: int,
) -> Tuple[int, int]:
    """Closed-form (ops, flops) of rebuilding one dropped snapshot.

    Mirrors :func:`repro.core.executor._recompute_snapshot` exactly —
    same advance/inject boundary sequence, so the same segment costs.
    """
    ops = 0
    flops = 0
    cursor = 0
    for event in provenance:
        target = event.layer + 1
        if target > cursor:
            ops += layered.gates_between(cursor, target)
            flops += int(compiled.segment_cost(cursor, target)["flops"])
            cursor = target
        event_flops, _ = _inject_cost(compiled, event)
        ops += 1
        flops += event_flops
    if layer > cursor:
        ops += layered.gates_between(cursor, layer)
        flops += int(compiled.segment_cost(cursor, layer)["flops"])
    return ops, flops


def analyze_plan(
    plan: ExecutionPlan,
    layered: LayeredCircuit,
    compiled=None,
    budget: Optional[CacheBudget] = None,
    entry_layer: int = 0,
    entry_events: Sequence[ErrorEvent] = (),
) -> PlanCostAnalysis:
    """Symbolically interpret ``plan`` and compute its static costs.

    The plan must be structurally valid (run the sanitizer first;
    :func:`build_certificate` does).  ``compiled`` is a
    :class:`~repro.sim.compiled.CompiledCircuit` supplying per-segment
    kernel costs — built on demand when omitted; pass the one the run
    will use to share segment compilations.  ``budget`` predicts the
    executor's spill/drop degradation under the same
    :class:`~repro.core.cache.CacheBudget`, mirroring its
    enforce-after-store, coldest-slot-first policy (statevector states
    assumed: ``state_bytes = 16 * 2**n``).
    """
    if compiled is None:
        from ..sim.compiled import CompiledCircuit

        compiled = CompiledCircuit(layered)

    analysis = PlanCostAnalysis()
    analysis.num_instructions = len(plan.instructions)
    state_bytes = 16 * (1 << layered.num_qubits)

    cursor = int(entry_layer)
    history: Tuple[ErrorEvent, ...] = tuple(entry_events)
    # slot -> {"layer", "history", "state": "resident"|"spilled"|"dropped"}
    open_slots: Dict[int, Dict[str, Any]] = {}
    stored = 0  # all stored snapshots (resident or degraded)
    resident_stored = 0  # non-degraded snapshots only

    def resident_peaks() -> None:
        analysis.peak_resident_msv = max(
            analysis.peak_resident_msv, resident_stored + 1
        )
        analysis.peak_resident_stored = max(
            analysis.peak_resident_stored, resident_stored
        )

    def sample(index: int) -> None:
        point = (index, stored + 1, stored, resident_stored + 1)
        if not analysis.timeline or analysis.timeline[-1][1:] != point[1:]:
            analysis.timeline.append(point)

    sample(-1)  # the initial working state

    for index, instr in enumerate(plan.instructions):
        if isinstance(instr, Advance):
            gates = layered.gates_between(instr.start_layer, instr.end_layer)
            cost = compiled.segment_cost(instr.start_layer, instr.end_layer)
            name = _segment_name(instr.start_layer, instr.end_layer)
            entry = analysis.segments.setdefault(
                name,
                {
                    "count": 0,
                    "gates": gates,
                    "ops": 0,
                    "flops": 0,
                    "bytes_moved": 0,
                },
            )
            entry["count"] += 1
            entry["ops"] += gates
            entry["flops"] += int(cost["flops"])
            entry["bytes_moved"] += int(cost["bytes_moved"])
            analysis.ops += gates
            analysis.flops += int(cost["flops"])
            analysis.bytes_moved += int(cost["bytes_moved"])
            cursor = instr.end_layer
        elif isinstance(instr, Snapshot):
            if instr.slot in open_slots:
                raise ScheduleError(
                    f"cost analysis of an invalid plan: slot {instr.slot} "
                    "snapshotted while occupied (run sanitize_plan first)"
                )
            open_slots[instr.slot] = {
                "layer": cursor,
                "history": history,
                "state": "resident",
            }
            stored += 1
            resident_stored += 1
            analysis.snapshots_taken += 1
            analysis.peak_msv = max(analysis.peak_msv, stored + 1)
            analysis.peak_stored = max(analysis.peak_stored, stored)
            resident_peaks()
            sample(index)
            if budget is not None:
                # Mirror _enforce_budget: degrade the coldest (lowest id)
                # resident slot while the resident footprint exceeds the
                # budget.  The working state is live throughout (+1).
                while (
                    resident_stored > 0
                    and (resident_stored + 1) * state_bytes > budget.max_bytes
                ):
                    coldest = min(
                        slot
                        for slot, info in open_slots.items()
                        if info["state"] == "resident"
                    )
                    info = open_slots[coldest]
                    if budget.mode == "drop":
                        info["state"] = "dropped"
                        analysis.predicted_drops += 1
                    elif budget.mode == "spill":
                        info["state"] = "spilled"
                        analysis.predicted_spills += 1
                    else:
                        raise ScheduleError(
                            f"unknown cache degradation mode {budget.mode!r}"
                        )
                    resident_stored -= 1
                    sample(index)
        elif isinstance(instr, Inject):
            flops, bytes_moved = _inject_cost(compiled, instr.event)
            analysis.injects += 1
            analysis.inject_flops += flops
            analysis.inject_bytes += bytes_moved
            analysis.ops += 1
            analysis.flops += flops
            analysis.bytes_moved += bytes_moved
            history = history + (instr.event,)
        elif isinstance(instr, Restore):
            info = open_slots.pop(instr.slot, None)
            if info is None:
                raise ScheduleError(
                    f"cost analysis of an invalid plan: restore of empty "
                    f"slot {instr.slot} (run sanitize_plan first)"
                )
            stored -= 1
            if info["state"] == "resident":
                resident_stored -= 1
            elif info["state"] == "spilled":
                analysis.predicted_spill_loads += 1
            elif info["state"] == "dropped":
                ops, flops = _recompute_cost(
                    compiled, layered, info["history"], info["layer"]
                )
                analysis.predicted_recomputes += 1
                analysis.predicted_recompute_ops += ops
                analysis.predicted_recompute_flops += flops
            cursor = info["layer"]
            history = info["history"]
            resident_peaks()
            sample(index)
        elif isinstance(instr, Finish):
            analysis.finishes += 1
            analysis.finished_trials += len(instr.trial_indices)
        else:
            raise ScheduleError(f"unknown plan instruction {instr!r}")

    return analysis


# ---------------------------------------------------------------------------
# Parallel schedules: LPT makespan + sound memory bounds, per depth
# ---------------------------------------------------------------------------


def lpt_assign(
    weights: Sequence[int], num_workers: int
) -> Tuple[List[List[int]], List[int]]:
    """LPT-balance weighted task ids; returns ``(buckets, loads)``.

    Exactly mirrors :meth:`repro.core.parallel.PlanPartition.assign` —
    heaviest first (ties by task id), each to the least-loaded worker
    (ties by worker index), every task contributing at least load 1 — so
    a certificate's schedule can be reproduced from its own weights.
    """
    if num_workers < 1:
        raise ValueError(f"need at least one worker, got {num_workers}")
    loads = [0] * num_workers
    buckets: List[List[int]] = [[] for _ in range(num_workers)]
    order = sorted(range(len(weights)), key=lambda t: (-weights[t], t))
    for task_id in order:
        worker = min(range(num_workers), key=lambda w: (loads[w], w))
        buckets[worker].append(task_id)
        loads[worker] += max(1, weights[task_id])
    for bucket in buckets:
        bucket.sort()
    return buckets, loads


def lpt_makespan(weights: Sequence[int], num_workers: int) -> int:
    """Max worker load of the deterministic LPT assignment."""
    _, loads = lpt_assign(weights, num_workers)
    return max(loads) if loads else 0


def _prefix_static_peaks(partition, layered: LayeredCircuit) -> Dict[str, int]:
    """Static mirror of ``_run_prefix`` peak accounting.

    After every prefix instruction the parent's live count is
    ``cached + working + emitted entry snapshots`` — the same formula
    ``_run_prefix`` maximizes at runtime.
    """
    from ..core.parallel import EmitTask

    stored = 0
    working = 1
    emitted = 0
    peak_live = 1
    peak_stored = 0
    instructions = partition.prefix
    for index, instr in enumerate(instructions):
        if isinstance(instr, Snapshot):
            stored += 1
        elif isinstance(instr, Restore):
            stored -= 1
            working = 1
        elif isinstance(instr, EmitTask):
            emitted += 1
            next_instr = (
                instructions[index + 1]
                if index + 1 < len(instructions)
                else None
            )
            if not isinstance(next_instr, Restore):
                working = 0
        peak_live = max(peak_live, stored + working + emitted)
        peak_stored = max(peak_stored, stored + emitted)
    return {"peak_live": peak_live, "peak_stored": peak_stored}


def analyze_partition(
    partition,
    layered: LayeredCircuit,
    compiled=None,
    workers: Sequence[int] = (1, 2, 4),
) -> Dict[str, Any]:
    """Static schedule analysis of one partition depth.

    Weighs every sub-plan with the cost model (ops for conservation
    proofs, flops as the LPT load weight), statically bounds the parent's
    prefix memory, and computes per-worker-count LPT makespans plus a
    memory bound that is sound for *any* distribution of the tasks over
    at most ``k`` workers: ``max(prefix peak, num_tasks + sum of the k
    largest task peaks)`` — an upper bound on the runtime
    ``ParallelOutcome.peak_msv`` even under the dynamic work queue, where
    actual per-worker task sets can differ from the static assignment.
    """
    if compiled is None:
        from ..sim.compiled import CompiledCircuit

        compiled = CompiledCircuit(layered)

    task_ops: List[int] = []
    task_flops: List[int] = []
    task_peaks: List[int] = []
    for task in partition.tasks:
        sub = analyze_plan(
            task.plan,
            layered,
            compiled=compiled,
            entry_layer=task.entry_layer,
            entry_events=task.entry_events,
        )
        task_ops.append(sub.ops)
        task_flops.append(sub.flops)
        task_peaks.append(sub.peak_msv)

    prefix_ops = partition.prefix_operations(layered)
    prefix_flops = 0
    for instr in partition.prefix:
        if isinstance(instr, Advance):
            prefix_flops += int(
                compiled.segment_cost(instr.start_layer, instr.end_layer)[
                    "flops"
                ]
            )
        elif isinstance(instr, Inject):
            flops, _ = _inject_cost(compiled, instr.event)
            prefix_flops += flops
    prefix_peaks = _prefix_static_peaks(partition, layered)

    num_tasks = partition.num_tasks
    peaks_desc = sorted(task_peaks, reverse=True)
    by_workers: Dict[str, Dict[str, int]] = {}
    best = None
    for k in sorted(set(int(w) for w in workers if int(w) >= 1)):
        raw = lpt_makespan(task_flops, k)
        # Certified makespan: monotone in workers by construction (extra
        # workers can idle), which raw greedy LPT does not guarantee.
        best = raw if best is None else min(best, raw)
        memory_states = max(
            prefix_peaks["peak_live"],
            num_tasks + sum(peaks_desc[: min(k, num_tasks)]),
        )
        by_workers[str(k)] = {
            "lpt_makespan": raw,
            "makespan": best,
            "memory_states": memory_states,
        }
    return {
        "depth": partition.depth,
        "num_tasks": num_tasks,
        "prefix_ops": prefix_ops,
        "prefix_flops": prefix_flops,
        "prefix_peak_live": prefix_peaks["peak_live"],
        "prefix_peak_stored": prefix_peaks["peak_stored"],
        "task_ops": task_ops,
        "task_flops": task_flops,
        "task_peaks": task_peaks,
        "workers": by_workers,
    }


def analyze_hybrid(
    layered: LayeredCircuit,
    plan: ExecutionPlan,
    compiled=None,
    serial: Optional[PlanCostAnalysis] = None,
) -> Dict[str, Any]:
    """Statically price the Clifford/Pauli-frame fast path for ``plan``.

    Runs the hybrid classifier (:func:`repro.core.hybrid.classify_plan`)
    and converts its gate-count schedule into the certificate's flop
    currency: symbolic spans at :data:`FRAME_OP_FLOPS` per gate (tableau
    cost, *not* ``2**n``), anchor derivations and dense spans at the
    compiled segment kernel cost, materializations at
    :data:`MATERIALIZE_FLOPS_PER_AMP` per amplitude.

    The memory section certifies two quantities with different roles:

    ``peak_full_states``
        Every co-resident full statevector — anchors, dense working
        states and the materialization transient.  This is the honest
        total-residency number; on shallow tries it can tie (or, on
        deep shared tries, beat) the dense plan's ``peak_msv``.

    ``cache_resident_bytes``
        The snapshot cache's resident bytes.  Symbolic snapshots are
        O(n) Pauli-frame deltas instead of full ``2**n`` states, so
        this shrinks *strictly* below the dense-only plan's
        ``peak_stored * state_bytes`` whenever any snapshot is
        symbolic — the static peak-MSV reduction the hybrid exists for.
    """
    from ..core.hybrid import classify_plan

    if compiled is None:
        from ..sim.compiled import CompiledCircuit

        compiled = CompiledCircuit(layered)
    if serial is None:
        serial = analyze_plan(plan, layered, compiled=compiled)

    schedule = classify_plan(layered, plan)
    stats = dict(schedule.stats)
    num_qubits = layered.num_qubits
    state_bytes = 16 * (1 << num_qubits)

    anchor_flops = 0
    for path in schedule.derive_gates:
        if len(path) >= 2:
            anchor_flops += int(
                compiled.segment_cost(path[-2], path[-1])["flops"]
            )

    dense_flops = 0
    frame_flops = 0
    for instr, action in zip(plan.instructions, schedule.actions):
        kind = action[0]
        if kind in ("advance-dense", "advance-mat"):
            dense_flops += int(
                compiled.segment_cost(instr.start_layer, instr.end_layer)[
                    "flops"
                ]
            )
        elif kind == "advance-sym":
            frame_flops += FRAME_OP_FLOPS * layered.gates_between(
                instr.start_layer, instr.end_layer
            )
        elif kind == "inject-dense":
            event_flops, _ = _inject_cost(compiled, instr.event)
            dense_flops += event_flops
        elif kind == "inject-sym":
            frame_flops += FRAME_OP_FLOPS
    materialize_flops = (
        stats["materializations"] * MATERIALIZE_FLOPS_PER_AMP * (1 << num_qubits)
    )
    total_flops = anchor_flops + dense_flops + materialize_flops + frame_flops

    per_frame = frame_bytes(num_qubits)
    cache_bytes = (
        stats["peak_dense_stored"] * state_bytes
        + stats["peak_sym_stored"] * per_frame
    )
    dense_cache_bytes = serial.peak_stored * state_bytes
    return {
        "active": stats["savings"] > 0,
        "stats": stats,
        "flops": {
            "anchor": anchor_flops,
            "dense": dense_flops,
            "materialize": materialize_flops,
            "frame": frame_flops,
            "total": total_flops,
        },
        "memory": {
            "frame_bytes": per_frame,
            "peak_full_states": stats["peak_real_states"],
            "peak_full_bytes": stats["peak_real_states"] * state_bytes,
            "dense_peak_msv": serial.peak_msv,
            "cache_dense_snapshots": stats["peak_dense_stored"],
            "cache_frame_snapshots": stats["peak_sym_stored"],
            "cache_resident_bytes": cache_bytes,
            "dense_cache_resident_bytes": dense_cache_bytes,
            "cache_shrink": bool(cache_bytes < dense_cache_bytes),
        },
        "modeled_speedup": (
            serial.flops / total_flops if total_flops else 1.0
        ),
    }


# ---------------------------------------------------------------------------
# ResourceCertificate
# ---------------------------------------------------------------------------


def build_certificate(
    layered: LayeredCircuit,
    trials: Sequence[Trial],
    benchmark: Optional[str] = None,
    seed: Optional[int] = None,
    depths: Sequence[int] = (1, 2),
    workers: Sequence[int] = (1, 2, 4),
    budget: Optional[CacheBudget] = None,
    compiled=None,
    batches: Sequence[int] = (1, 8, 16, 32, 64),
) -> Dict[str, Any]:
    """Build the ResourceCertificate for one circuit + trial set.

    The certificate carries (a) the serial plan's exact per-segment op
    counts and kernel-model flop/byte costs, (b) the full resident-memory
    timeline with predicted degradation under ``budget``, (c) per
    partition ``depth`` the statically weighted sub-plan set, certified
    LPT makespans over every candidate worker count and a sound parallel
    memory bound, (d) per candidate batch width the wavefront schedule's
    static shape (batched dispatch count, peak rows, working set) with
    its operation count proven equal to the serial plan's, and (e) the
    ranked (depth, workers, budget, batch) candidate list with the top
    pick as ``advice``.  Candidate scores are ``makespan_flops *
    memory_bytes`` (lower is better; ties broken serial-first, then
    fewer workers, then shallower depth, then narrower batch).  Budget
    degradation is certified for the serial schedule (P023 checks it
    against ``run_optimized``); parallel candidates are enumerated
    without a budget.  ``advice['batch_size']`` is chosen
    makespan-first among the batch widths whose working set fits
    ``budget`` (all of them when no budget is given) — batching trades
    memory for fewer dispatches, so the constraint is the budget, not
    the score product.
    """
    from ..core.parallel import partition_plan
    from ..core.schedule import build_plan as _build_plan
    from ..core.wavefront import plan_wavefronts

    if compiled is None:
        from ..sim.compiled import CompiledCircuit

        compiled = CompiledCircuit(layered)

    plan = _build_plan(layered, trials)
    audit = plan.audit(trials=trials, layered=layered)
    if not audit.ok:
        raise ScheduleError(
            "cannot certify an invalid plan: "
            + "; ".join(str(d) for d in audit.errors)
        )
    serial = analyze_plan(plan, layered, compiled=compiled)
    degraded = (
        analyze_plan(plan, layered, compiled=compiled, budget=budget)
        if budget is not None
        else None
    )

    state_bytes = 16 * (1 << layered.num_qubits)
    schedules: List[Dict[str, Any]] = []
    for depth in sorted(set(int(d) for d in depths if int(d) >= 1)):
        partition = partition_plan(layered, trials, depth=depth)
        schedules.append(
            analyze_partition(
                partition, layered, compiled=compiled, workers=workers
            )
        )

    # Wavefront (trial-batched) schedules: same ops, fewer dispatches,
    # wider working set.  All numbers are static — no execution.
    serial_dispatches = serial.total_ops
    serial_cost = serial.flops + DISPATCH_OVERHEAD_FLOPS * serial_dispatches
    wavefronts: List[Dict[str, Any]] = []
    for batch in sorted(set(int(b) for b in batches if int(b) >= 1)):
        wavefront = plan_wavefronts(plan, batch)
        profile = wavefront.profile()
        dispatches = wavefront.num_injects + sum(
            layered.gates_between(step.start, step.end)
            for step in wavefront.steps
            if step.end > step.start
        )
        # Normalized so batch=1 keeps exactly serial.flops: the modeled
        # speedup is the dispatch-inclusive cost ratio, applied to the
        # flop makespan the rest of the tuner ranks in.
        batched_cost = serial.flops + DISPATCH_OVERHEAD_FLOPS * dispatches
        makespan = (
            round(serial.flops * batched_cost / serial_cost)
            if serial_cost
            else serial.flops
        )
        # Parked/live rows plus the in-flight double buffer.
        memory_states = profile["peak_rows"] + profile["max_width"]
        wavefronts.append(
            {
                "batch": batch,
                "ops": wavefront.planned_operations(layered),
                "dispatches": dispatches,
                "batched_calls": profile["batched_calls"],
                "max_width": profile["max_width"],
                "mean_width": profile["mean_width"],
                "peak_rows": profile["peak_rows"],
                "memory_states": memory_states,
                "memory_bytes": memory_states * state_bytes,
                "makespan_flops": makespan,
                "modeled_speedup": (
                    serial_cost / batched_cost if batched_cost else 1.0
                ),
            }
        )

    candidates: List[Dict[str, Any]] = []

    def add_candidate(
        depth: int,
        num_workers: int,
        makespan: int,
        memory_states: int,
        with_budget: bool,
        batch: int = 0,
        hybrid_mode: bool = False,
    ) -> None:
        memory_bytes = memory_states * state_bytes
        candidates.append(
            {
                "depth": depth,
                "workers": num_workers,
                "batch": batch,
                "hybrid": hybrid_mode,
                "makespan_flops": makespan,
                "memory_states": memory_states,
                "memory_bytes": memory_bytes,
                "budget": with_budget,
                "score": makespan * memory_bytes,
            }
        )

    # Serial candidates (workers=0 encodes "no parallel pool").
    add_candidate(0, 0, serial.flops, serial.peak_msv, False)
    if degraded is not None:
        add_candidate(
            0, 0, degraded.total_flops, degraded.peak_resident_msv, True
        )
    for schedule in schedules:
        for k, entry in schedule["workers"].items():
            add_candidate(
                schedule["depth"],
                int(k),
                schedule["prefix_flops"] + entry["makespan"],
                entry["memory_states"],
                False,
            )
    for entry in wavefronts:
        if entry["batch"] > 1:
            add_candidate(
                0,
                0,
                entry["makespan_flops"],
                entry["memory_states"],
                False,
                batch=entry["batch"],
            )

    # Hybrid candidates: the Clifford/Pauli-frame fast path, alone and
    # combined with wavefront batching.  Only schedules with positive
    # static savings are offered (the runtime falls back wholesale
    # otherwise, so an inactive candidate would duplicate the dense row).
    hybrid = analyze_hybrid(layered, plan, compiled=compiled, serial=serial)
    if hybrid["active"]:
        hybrid_dense = (
            hybrid["flops"]["dense"] + hybrid["flops"]["materialize"]
        )
        hybrid_shared = (
            hybrid["flops"]["anchor"] + hybrid["flops"]["frame"]
        )
        add_candidate(
            0,
            0,
            hybrid_dense + hybrid_shared,
            hybrid["memory"]["peak_full_states"],
            False,
            hybrid_mode=True,
        )
        for entry in wavefronts:
            if entry["batch"] > 1:
                # Batching accelerates only the dense remainder (the
                # materialized fragments run through the wavefront
                # executor); anchors and frame algebra stay serial.
                scaled = round(hybrid_dense / entry["modeled_speedup"])
                add_candidate(
                    0,
                    0,
                    scaled + hybrid_shared,
                    hybrid["memory"]["peak_full_states"]
                    + entry["max_width"],
                    False,
                    batch=entry["batch"],
                    hybrid_mode=True,
                )
    candidates.sort(
        key=lambda c: (
            c["score"],
            c["workers"] > 0,
            c["workers"],
            c["depth"],
            c["batch"],
            c["hybrid"],
        )
    )

    # Batch advisory: fastest modeled width whose working set fits the
    # budget (no budget -> all fit).  Width 1 means "don't batch".
    fitting = [
        entry
        for entry in wavefronts
        if budget is None or entry["memory_bytes"] <= budget.max_bytes
    ]
    best_batch = (
        min(fitting, key=lambda e: (e["makespan_flops"], e["batch"]))
        if fitting
        else None
    )

    top = candidates[0]
    advice = {
        "workers": top["workers"],
        "depth": top["depth"] if top["workers"] else None,
        "max_cache_bytes": budget.max_bytes if top["budget"] else None,
        "cache_degrade": budget.mode if top["budget"] else None,
        "hybrid": top["hybrid"],
        "batch_size": (
            best_batch["batch"]
            if best_batch is not None and best_batch["batch"] > 1
            else None
        ),
        "makespan_flops": top["makespan_flops"],
        "memory_states": top["memory_states"],
        "memory_bytes": top["memory_bytes"],
        "score": top["score"],
    }

    certificate: Dict[str, Any] = {
        "schema": CERT_SCHEMA,
        "benchmark": benchmark,
        "seed": seed,
        "num_trials": len(trials),
        "num_qubits": layered.num_qubits,
        "num_layers": layered.num_layers,
        "num_gates": layered.num_gates,
        "state_bytes": state_bytes,
        "plan": serial.to_dict(),
        "budget": (
            None
            if budget is None
            else {
                "max_bytes": budget.max_bytes,
                "mode": budget.mode,
                "predicted": degraded.to_dict()["predicted"],
                "peak_resident_msv": degraded.peak_resident_msv,
                "peak_resident_stored": degraded.peak_resident_stored,
                "timeline": [
                    list(point) for point in degraded.timeline
                ],
            }
        ),
        "schedules": schedules,
        "wavefront": wavefronts,
        "hybrid": hybrid,
        "candidates": candidates,
        "advice": advice,
    }
    return certificate


def write_certificate(path: str, certificate: Dict[str, Any]) -> None:
    """Atomically write a certificate document (via ``core.atomicio``)."""
    from ..core.atomicio import atomic_write_json

    atomic_write_json(path, certificate)


def validate_certificate(certificate: Dict[str, Any]) -> List[str]:
    """Structural validation of a certificate document.

    Returns a list of problems (empty = valid).  Checks the schema tag,
    required sections, schedule shape consistency and candidate ordering
    — the cheap checks a CI step runs before trusting the numbers; the
    deep semantic proofs live in rules P020-P023.
    """
    problems: List[str] = []
    if not isinstance(certificate, dict):
        return ["certificate is not a JSON object"]
    if certificate.get("schema") != CERT_SCHEMA:
        problems.append(
            f"schema is {certificate.get('schema')!r}, expected "
            f"{CERT_SCHEMA!r}"
        )
    for key in (
        "num_trials",
        "num_qubits",
        "num_layers",
        "num_gates",
        "state_bytes",
        "plan",
        "schedules",
        "candidates",
        "advice",
    ):
        if key not in certificate:
            problems.append(f"missing key {key!r}")
    plan = certificate.get("plan")
    if isinstance(plan, dict):
        for key in ("ops", "flops", "segments", "injects", "memory"):
            if key not in plan:
                problems.append(f"plan missing key {key!r}")
        segments = plan.get("segments")
        if isinstance(segments, dict):
            total = sum(
                entry.get("ops", 0) for entry in segments.values()
            ) + plan.get("injects", {}).get("count", 0)
            if total != plan.get("ops"):
                problems.append(
                    f"segment ops + injects = {total} but plan.ops = "
                    f"{plan.get('ops')}"
                )
    schedules = certificate.get("schedules")
    if isinstance(schedules, list):
        for schedule in schedules:
            depth = schedule.get("depth")
            num_tasks = schedule.get("num_tasks")
            for key in ("task_ops", "task_flops", "task_peaks"):
                values = schedule.get(key)
                if not isinstance(values, list) or len(values) != num_tasks:
                    problems.append(
                        f"schedule depth={depth}: {key} does not list "
                        f"{num_tasks} task(s)"
                    )
            if not schedule.get("workers"):
                problems.append(
                    f"schedule depth={depth}: no worker candidates"
                )
    wavefronts = certificate.get("wavefront")
    if isinstance(wavefronts, list):
        plan_ops = plan.get("ops") if isinstance(plan, dict) else None
        for entry in wavefronts:
            batch = entry.get("batch")
            if not isinstance(batch, int) or batch < 1:
                problems.append(f"wavefront entry has bad batch {batch!r}")
                continue
            if plan_ops is not None and entry.get("ops") != plan_ops:
                problems.append(
                    f"wavefront batch={batch}: ops {entry.get('ops')} != "
                    f"plan.ops {plan_ops} (batching must conserve "
                    "operations)"
                )
            states = entry.get("memory_states")
            state_bytes = certificate.get("state_bytes")
            if (
                isinstance(states, int)
                and isinstance(state_bytes, int)
                and entry.get("memory_bytes") != states * state_bytes
            ):
                problems.append(
                    f"wavefront batch={batch}: memory_bytes inconsistent "
                    "with memory_states"
                )
        advice = certificate.get("advice")
        if isinstance(advice, dict) and advice.get("batch_size") is not None:
            listed = {
                entry.get("batch")
                for entry in wavefronts
                if isinstance(entry, dict)
            }
            if advice["batch_size"] not in listed:
                problems.append(
                    f"advice.batch_size {advice['batch_size']} is not a "
                    "certified wavefront width"
                )
    hybrid = certificate.get("hybrid")
    if isinstance(hybrid, dict):
        stats = hybrid.get("stats", {})
        flops = hybrid.get("flops", {})
        memory = hybrid.get("memory", {})
        plan_ops = plan.get("ops") if isinstance(plan, dict) else None
        if plan_ops is not None and stats.get("planned_ops") != plan_ops:
            problems.append(
                f"hybrid planned_ops {stats.get('planned_ops')} != "
                f"plan.ops {plan_ops} (hybrid must conserve operations)"
            )
        split = (
            stats.get("symbolic_gates", 0)
            + stats.get("dense_gates", 0)
            + stats.get("symbolic_injects", 0)
            + stats.get("dense_injects", 0)
        )
        if stats and split != stats.get("planned_ops"):
            problems.append(
                f"hybrid symbolic/dense split sums to {split}, not "
                f"planned_ops {stats.get('planned_ops')}"
            )
        parts = (
            flops.get("anchor", 0)
            + flops.get("dense", 0)
            + flops.get("materialize", 0)
            + flops.get("frame", 0)
        )
        if flops and parts != flops.get("total"):
            problems.append(
                f"hybrid flop components sum to {parts}, not total "
                f"{flops.get('total')}"
            )
        state_bytes = certificate.get("state_bytes")
        if isinstance(state_bytes, int) and memory:
            expected_cache = memory.get(
                "cache_dense_snapshots", 0
            ) * state_bytes + memory.get(
                "cache_frame_snapshots", 0
            ) * memory.get("frame_bytes", 0)
            if expected_cache != memory.get("cache_resident_bytes"):
                problems.append(
                    "hybrid cache_resident_bytes inconsistent with its "
                    "snapshot composition"
                )
            shrink = memory.get("cache_resident_bytes", 0) < memory.get(
                "dense_cache_resident_bytes", 0
            )
            if bool(memory.get("cache_shrink")) != shrink:
                problems.append(
                    "hybrid cache_shrink flag contradicts the certified "
                    "cache byte counts"
                )
    candidates = certificate.get("candidates")
    if isinstance(candidates, list) and candidates:
        scores = [c.get("score") for c in candidates]
        if scores != sorted(scores):
            problems.append("candidates are not sorted by score")
        advice = certificate.get("advice")
        if isinstance(advice, dict):
            if advice.get("score") != candidates[0].get("score"):
                problems.append("advice does not match the top candidate")
    elif isinstance(candidates, list):
        problems.append("certificate lists no candidates")
    return problems
