"""Static plan sanitizer: a symbolic interpreter over execution plans.

:func:`sanitize_plan` replays an :class:`~repro.core.schedule.ExecutionPlan`
with *symbolic* state — no backend, no amplitudes — and proves, before a
single statevector is allocated, every invariant the executor would
otherwise discover mid-run:

* **slot discipline** — each snapshot slot is written once and consumed
  exactly once; restores of empty slots (use-after-free / double restore)
  and leaked slots are rejected;
* **layer alignment** — the working layer is tracked through every
  ``Advance``/``Restore``; a ``Restore`` resumes at the layer its
  ``Snapshot`` was taken, so any following ``Advance``, ``Inject`` or
  ``Finish`` that disagrees with that layer is flagged statically;
* **trial exactness** — the symbolic working state carries the sequence of
  injected :class:`~repro.core.events.ErrorEvent`; at each ``Finish`` the
  sequence must equal the listed trials' sampled event sequences.  This is
  the paper's claim that reordering is *exact* — same errors, same final
  state per trial — checked without simulating;
* **coverage** — every trial index is finished exactly once;
* **memory bound** — the interpreter mirrors
  :class:`~repro.core.cache.StateCache` accounting, so the returned static
  ``peak_msv`` / ``peak_stored`` equal the runtime ``CacheStats`` values of
  an optimized run of the same plan (cross-checked in the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.layers import LayeredCircuit
from ..core.events import PAULI_LABELS, ErrorEvent, Trial
from ..core.schedule import (
    Advance,
    ExecutionPlan,
    Finish,
    Inject,
    Restore,
    Snapshot,
)
from .diagnostics import Diagnostic, LintConfig, LintResult, Severity
from .registry import make_diagnostic, register

__all__ = ["PlanAudit", "sanitize_plan"]


register(
    "P001",
    "advance-range",
    Severity.ERROR,
    "plan",
    "Advance layer range is malformed or outside the circuit depth.",
    explanation="An Advance instruction applies the gates of layers "
    "[start, end); a range that is inverted or extends past the circuit's "
    "depth would make the executor index nonexistent layers.  The sanitizer "
    "bounds-checks every range statically so a malformed plan is rejected "
    "before any statevector is allocated.",
)
register(
    "P002",
    "advance-gap",
    Severity.ERROR,
    "plan",
    "Advance does not begin at the working state's current layer.",
    explanation="The working state moves monotonically through the circuit; "
    "an Advance whose start layer disagrees with the symbolically tracked "
    "cursor would silently skip or repeat gates, breaking the paper's "
    "exactness guarantee.  Usually caused by a Restore resuming at a "
    "different layer than the following instructions assume.",
)
register(
    "P003",
    "snapshot-slot-reused",
    Severity.ERROR,
    "plan",
    "Snapshot writes a slot that is still occupied.",
    explanation="Each cache slot holds exactly one snapshot between its "
    "Snapshot and Restore.  Overwriting an occupied slot would leak the "
    "previous state (its consumers restore the wrong amplitudes) and "
    "corrupt the peak-MSV accounting the memory certificates rely on.",
)
register(
    "P004",
    "restore-unknown-slot",
    Severity.ERROR,
    "plan",
    "Restore consumes a slot that is empty or already consumed "
    "(use-after-free / double restore).",
    explanation="Restore consumes its slot (drop-on-last-use); restoring an "
    "empty or already-consumed slot is the plan-level analogue of a "
    "use-after-free and would crash the executor mid-run.  The sanitizer "
    "tracks slot liveness symbolically to catch this before execution.",
)
register(
    "P005",
    "slot-leaked",
    Severity.ERROR,
    "plan",
    "Snapshot slot is never restored (leaked cached state).",
    explanation="A snapshot that is never restored keeps a full 2**n "
    "statevector alive until the end of the run, inflating peak memory "
    "beyond the static bound and indicating the plan builder lost track of "
    "a pending consumer.",
)
register(
    "P006",
    "inject-layer-mismatch",
    Severity.ERROR,
    "plan",
    "Inject fires at a working layer other than its event's layer boundary.",
    explanation="An error sampled after layer L must be injected exactly "
    "when the working state has advanced to layer L+1 — injecting earlier "
    "or later would commute the error past gates it should not cross, "
    "producing a final state different from the unreordered baseline.",
)
register(
    "P007",
    "finish-before-end",
    Severity.ERROR,
    "plan",
    "Finish reached before the working state advanced to the final layer.",
    explanation="Finish declares the working state to be a trial's final "
    "state; if the cursor has not reached the last layer the trial would "
    "be measured from a partially evolved state.  Statically comparing the "
    "cursor against the declared depth catches truncated plans.",
)
register(
    "P008",
    "trial-finished-twice",
    Severity.ERROR,
    "plan",
    "A trial index is finished by more than one Finish instruction.",
    explanation="Every sampled trial must contribute exactly one final "
    "state.  A doubly finished trial would be counted twice in the outcome "
    "histogram, biasing the sampled distribution even when every amplitude "
    "is computed correctly.",
)
register(
    "P009",
    "trial-never-finished",
    Severity.ERROR,
    "plan",
    "A trial index is never finished by the plan (lost trial).",
    explanation="A trial the plan never finishes is silently dropped from "
    "the outcome distribution — the run would report fewer effective "
    "shots than requested.  Coverage is checked by marking every index "
    "finished exactly once.",
)
register(
    "P010",
    "trial-unknown-index",
    Severity.ERROR,
    "plan",
    "Finish lists a trial index outside the plan's trial range.",
    explanation="Finish instructions carry the indices of the trials they "
    "complete; an index outside [0, num_trials) means the plan and the "
    "trial set it was built from have drifted apart (e.g. a stale plan "
    "replayed against a resampled trial list).",
)
register(
    "P011",
    "event-sequence-mismatch",
    Severity.ERROR,
    "plan",
    "A finished trial's symbolic error history differs from its sampled "
    "event sequence (exactness violation).",
    explanation="This is the paper's central exactness claim checked "
    "statically: the symbolic working state carries the sequence of "
    "injected errors, and at each Finish that history must equal the "
    "listed trial's sampled events.  Any mismatch means the reordering "
    "changed which errors a trial receives — the one thing it must never "
    "do.",
)
register(
    "P012",
    "event-out-of-bounds",
    Severity.ERROR,
    "plan",
    "Injected event lies beyond the circuit's depth or qubit count.",
    explanation="An event beyond the circuit's depth or qubit count cannot "
    "correspond to any physical error position; it indicates corrupted "
    "trial data or a plan built against a different circuit.",
)
register(
    "P013",
    "peak-msv-mismatch",
    Severity.ERROR,
    "plan",
    "Static peak-MSV bound disagrees with the runtime cache statistics.",
    explanation="The sanitizer mirrors StateCache accounting instruction by "
    "instruction, so its static peak-MSV must equal the runtime "
    "CacheStats.peak_msv of an optimized run of the same plan.  A "
    "disagreement means either the symbolic model or the cache accounting "
    "has drifted — both are load-bearing for the paper's memory claims.",
)
register(
    "P014",
    "trial-count-mismatch",
    Severity.ERROR,
    "plan",
    "Plan's declared trial count differs from the supplied trial list.",
    explanation="The plan embeds the number of trials it was built for; "
    "auditing it against a list of a different length means the caller is "
    "checking the wrong trial set, so every per-trial exactness verdict "
    "would be meaningless.",
)
register(
    "P015",
    "unknown-instruction",
    Severity.ERROR,
    "plan",
    "Plan contains an object that is not a known instruction kind.",
    explanation="The executor dispatches on exactly five instruction "
    "kinds; any other object in the instruction list (from manual plan "
    "surgery or a deserialization bug) would raise mid-run.  The sanitizer "
    "reports it with its index instead.",
)
register(
    "P016",
    "unknown-error-operator",
    Severity.ERROR,
    "plan",
    "Injected event carries an operator outside the Pauli alphabet.",
    explanation="Error injection resolves operators through the Pauli "
    "label table; an unknown label would raise at injection time deep "
    "inside the run.  Checking the alphabet statically keeps operator "
    "typos a lint error rather than a runtime crash.",
)


class PlanAudit(LintResult):
    """Sanitizer verdict: diagnostics plus the static cache bounds."""

    def __init__(
        self,
        diagnostics: Sequence[Diagnostic],
        peak_msv: int,
        peak_stored: int,
        snapshots_taken: int,
        num_instructions: int,
    ) -> None:
        super().__init__(
            diagnostics,
            info={
                "peak_msv": peak_msv,
                "peak_stored": peak_stored,
                "snapshots_taken": snapshots_taken,
                "num_instructions": num_instructions,
            },
        )
        #: Static bound on simultaneously live statevectors (working state
        #: included) — must equal the runtime ``CacheStats.peak_msv``.
        self.peak_msv = peak_msv
        #: Static bound on simultaneously stored snapshots.
        self.peak_stored = peak_stored
        self.snapshots_taken = snapshots_taken
        self.num_instructions = num_instructions

    def __repr__(self) -> str:
        return (
            f"PlanAudit(ok={self.ok}, peak_msv={self.peak_msv}, "
            f"diagnostics={len(self.diagnostics)})"
        )


def sanitize_plan(
    plan: ExecutionPlan,
    trials: Optional[Sequence[Trial]] = None,
    layered: Optional[LayeredCircuit] = None,
    config: Optional[LintConfig] = None,
    entry_layer: int = 0,
    entry_events: Sequence[ErrorEvent] = (),
) -> PlanAudit:
    """Symbolically interpret ``plan`` and collect every violation.

    Parameters
    ----------
    trials:
        When given, each ``Finish`` is checked against the listed trials'
        event sequences (the exactness proof) and the trial count is
        cross-checked.
    layered:
        When given, injected events are bounds-checked against the real
        circuit (depth *and* qubit count; without it only the plan's
        declared ``num_layers`` is available).
    config:
        Optional filtering/severity policy.
    entry_layer / entry_events:
        Audit a *sub-plan* that resumes from a shared-prefix entry state:
        the symbolic working state starts at ``entry_layer`` with
        ``entry_events`` already in its history, exactly as the parallel
        executor hands sub-plans to workers (:mod:`repro.core.parallel`).
        Trial exactness is still checked against each trial's *full*
        sampled event sequence.

    The interpreter never raises on a bad plan — it records diagnostics and
    keeps going with a best-effort recovery, so one structural bug does not
    mask the rest.
    """
    diagnostics: List[Diagnostic] = []

    def emit(
        code: str, message: str, index: Optional[int] = None, hint: str = ""
    ) -> None:
        location = f"plan[{index}]" if index is not None else "plan"
        diagnostic = make_diagnostic(
            code, message, location=location, hint=hint or None, config=config
        )
        if diagnostic is not None:
            if (
                config is not None
                and config.max_diagnostics is not None
                and len(diagnostics) >= config.max_diagnostics
            ):
                return
            diagnostics.append(diagnostic)

    num_layers = plan.num_layers
    num_qubits = layered.num_qubits if layered is not None else None
    if layered is not None and layered.num_layers != num_layers:
        emit(
            "P001",
            f"plan declares {num_layers} layer(s) but the circuit has "
            f"{layered.num_layers}",
        )
    if trials is not None and len(trials) != plan.num_trials:
        emit(
            "P014",
            f"plan covers {plan.num_trials} trial(s) but {len(trials)} "
            "were supplied",
            hint="rebuild the plan from the trial set actually executed",
        )

    # Symbolic working state: current layer + injected-event history.
    cursor = int(entry_layer)
    history: Tuple[ErrorEvent, ...] = tuple(entry_events)
    # slot -> (layer at snapshot, history at snapshot, instruction index)
    open_slots: Dict[int, Tuple[int, Tuple[ErrorEvent, ...], int]] = {}
    finished_at: Dict[int, int] = {}

    # Mirror of StateCache accounting: one working state is live from the
    # start; snapshots add stored states; a restore consumes one.
    stored = 0
    peak_msv = 1
    peak_stored = 0
    snapshots_taken = 0

    for index, instr in enumerate(plan.instructions):
        if isinstance(instr, Advance):
            if not 0 <= instr.start_layer <= instr.end_layer <= num_layers:
                emit(
                    "P001",
                    f"advance range [{instr.start_layer}, {instr.end_layer}) "
                    f"is invalid for {num_layers} layer(s)",
                    index,
                )
            elif instr.start_layer != cursor:
                emit(
                    "P002",
                    f"advance starts at layer {instr.start_layer} but the "
                    f"working state is at layer {cursor}",
                    index,
                    hint="a Restore above may have resumed at a different "
                    "layer than this instruction assumes",
                )
            cursor = instr.end_layer
        elif isinstance(instr, Snapshot):
            if instr.slot in open_slots:
                taken_at = open_slots[instr.slot][2]
                emit(
                    "P003",
                    f"slot {instr.slot} snapshotted again while still "
                    f"occupied (first written at plan[{taken_at}])",
                    index,
                    hint="the previous snapshot was never restored",
                )
            else:
                open_slots[instr.slot] = (cursor, history, index)
                stored += 1
                snapshots_taken += 1
                peak_msv = max(peak_msv, stored + 1)
                peak_stored = max(peak_stored, stored)
        elif isinstance(instr, Inject):
            event = instr.event
            depth_bound = num_layers
            if not 0 <= event.layer < depth_bound:
                emit(
                    "P012",
                    f"event {event} beyond circuit depth {depth_bound}",
                    index,
                )
            elif num_qubits is not None and not 0 <= event.qubit < num_qubits:
                emit(
                    "P012",
                    f"event {event} beyond qubit count {num_qubits}",
                    index,
                )
            elif event.layer + 1 != cursor:
                emit(
                    "P006",
                    f"inject of {event} at working layer {cursor}; errors "
                    f"fire right after their layer (expected layer "
                    f"{event.layer + 1})",
                    index,
                )
            if event.pauli not in PAULI_LABELS:
                emit(
                    "P016",
                    f"event {event} carries operator {event.pauli!r}; "
                    f"expected one of {PAULI_LABELS}",
                    index,
                )
            history = history + (event,)
        elif isinstance(instr, Restore):
            entry = open_slots.pop(instr.slot, None)
            if entry is None:
                emit(
                    "P004",
                    f"restore of slot {instr.slot}, which is empty or "
                    "already consumed",
                    index,
                    hint="each Snapshot slot may be restored exactly once",
                )
            else:
                cursor, history, _ = entry
                stored -= 1
        elif isinstance(instr, Finish):
            if cursor != num_layers:
                emit(
                    "P007",
                    f"finish at layer {cursor}; the circuit has "
                    f"{num_layers} layer(s)",
                    index,
                )
            for trial_index in instr.trial_indices:
                if not 0 <= trial_index < plan.num_trials:
                    emit(
                        "P010",
                        f"finish of trial {trial_index}, outside the plan's "
                        f"{plan.num_trials} trial(s)",
                        index,
                    )
                    continue
                if trial_index in finished_at:
                    emit(
                        "P008",
                        f"trial {trial_index} finished twice (first at "
                        f"plan[{finished_at[trial_index]}])",
                        index,
                    )
                    continue
                finished_at[trial_index] = index
                if trials is not None and trial_index < len(trials):
                    expected = tuple(trials[trial_index].events)
                    if expected != history:
                        emit(
                            "P011",
                            f"trial {trial_index} finished with error "
                            f"history ({', '.join(map(str, history))}) but "
                            f"its sampled sequence is "
                            f"({', '.join(map(str, expected))})",
                            index,
                            hint="the reordering must be exact: every trial "
                            "receives precisely its own sampled errors",
                        )
        else:
            emit("P015", f"unknown plan instruction {instr!r}", index)

    for slot, (_, _, taken_at) in sorted(open_slots.items()):
        emit(
            "P005",
            f"slot {slot} (snapshotted at plan[{taken_at}]) is never "
            "restored",
            hint="leaked snapshots keep a full statevector alive to the "
            "end of the run",
        )
    missing = [
        t for t in range(plan.num_trials) if t not in finished_at
    ]
    if missing:
        shown = ", ".join(str(t) for t in missing[:8])
        if len(missing) > 8:
            shown += f", ... ({len(missing)} total)"
        emit(
            "P009",
            f"trial(s) never finished: {shown}",
            hint="every sampled trial must reach the final layer exactly "
            "once",
        )

    return PlanAudit(
        diagnostics,
        peak_msv=peak_msv,
        peak_stored=peak_stored,
        snapshots_taken=snapshots_taken,
        num_instructions=len(plan.instructions),
    )
