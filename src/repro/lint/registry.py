"""Rule registry: one entry per diagnostic code.

Every code a pass can emit is registered here with a short name, a default
severity, the scope it applies to (``plan`` / ``circuit`` / ``trials`` /
``noise`` / ``qasm``) and a one-line description.  Circuit-, trial- and
noise-scope rules also register a *checker* callable; the plan sanitizer is
a single symbolic interpreter, so its codes are metadata-only and emitted
from :mod:`repro.lint.plan_sanitizer` directly.

The registry is the single source of truth for ``repro lint --list-rules``
and for the code table in ``docs/architecture.md``.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, NamedTuple, Optional

from .diagnostics import Diagnostic, LintConfig, Severity

__all__ = [
    "Rule",
    "register",
    "unregister",
    "rule_checker",
    "get_rule",
    "all_rules",
    "registered_codes",
    "make_diagnostic",
]


class Rule(NamedTuple):
    """Metadata (and optional checker) behind one diagnostic code."""

    code: str
    name: str
    severity: Severity
    scope: str
    description: str
    checker: Optional[Callable] = None
    explanation: str = ""


_REGISTRY: Dict[str, Rule] = {}


def register(
    code: str,
    name: str,
    severity: Severity,
    scope: str,
    description: str,
    checker: Optional[Callable] = None,
    explanation: Optional[str] = None,
) -> Rule:
    """Register a diagnostic code; codes must be unique.

    Every rule must carry a one-paragraph *rationale* — either an explicit
    ``explanation`` or (for checker rules) the checker's docstring — which
    ``repro lint --explain <CODE>`` prints verbatim.  Registration fails
    without one, so an undocumented rule can never ship.
    """
    if code in _REGISTRY:
        raise ValueError(f"diagnostic code {code!r} registered twice")
    rationale = inspect.cleandoc(explanation) if explanation else ""
    if not rationale and checker is not None and checker.__doc__:
        rationale = inspect.cleandoc(checker.__doc__)
    if not rationale:
        raise ValueError(
            f"diagnostic code {code!r} registered without a rationale: pass "
            "explanation= or give the checker a docstring"
        )
    entry = Rule(code, name, severity, scope, description, checker, rationale)
    _REGISTRY[code] = entry
    return entry


def unregister(code: str) -> None:
    """Drop a registered code (test scaffolding for synthetic rules)."""
    _REGISTRY.pop(code, None)


def rule_checker(
    code: str, name: str, severity: Severity, scope: str, description: str
) -> Callable[[Callable], Callable]:
    """Decorator form of :func:`register` for rules with a checker.

    The decorated checker receives the scope's subject (a circuit, a trial
    list, ...) and yields ``(message, location, hint)`` tuples; the caller
    wraps them into :class:`Diagnostic` objects with the rule's code and
    severity.  The checker's docstring doubles as the rule's rationale
    (``--explain``), so a docstring is mandatory.
    """

    def decorate(func: Callable) -> Callable:
        register(code, name, severity, scope, description, checker=func)
        return func

    return decorate


def get_rule(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown diagnostic code {code!r}") from None


def all_rules(scope: Optional[str] = None) -> List[Rule]:
    """All registered rules (optionally one scope), sorted by code."""
    rules = sorted(_REGISTRY.values(), key=lambda r: r.code)
    if scope is not None:
        rules = [r for r in rules if r.scope == scope]
    return rules


def registered_codes() -> List[str]:
    return sorted(_REGISTRY)


def make_diagnostic(
    code: str,
    message: str,
    location: Optional[str] = None,
    hint: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> Optional[Diagnostic]:
    """Build a diagnostic with the registry's severity, filtered by config."""
    entry = get_rule(code)
    diagnostic = Diagnostic(
        code, entry.severity, message, location=location, hint=hint
    )
    if config is not None:
        return config.apply(diagnostic)
    return diagnostic
