"""Static analysis: plan sanitizer and circuit/QASM lint framework.

The optimized executor's headline guarantee — every trial produces the same
final state as the baseline — is an invariant of the *plan*, not of the
runtime.  This package proves it statically: :func:`sanitize_plan` runs a
symbolic interpreter over an :class:`~repro.core.schedule.ExecutionPlan`
with no backend attached, detecting snapshot use-after-free, lost or
duplicated trials, layer-misaligned resumes and wrong error-event replays
before any statevector is allocated.  A second family of rules lints
circuits (and parsed QASM), trial sets and noise models.

Every finding is a :class:`Diagnostic` with a stable code (``P0xx`` plan,
``C0xx`` circuit, ``N0xx`` noise/trial, ``Q0xx`` QASM), a severity, a
location and a fix hint; codes are listed in the rule registry
(:func:`all_rules`) and documented in ``docs/architecture.md``.

Entry points::

    from repro.lint import sanitize_plan, lint_circuit, LintConfig
    audit = sanitize_plan(plan, trials=trials, layered=layered)
    audit.ok            # no errors
    audit.peak_msv      # static bound == runtime CacheStats.peak_msv

or end to end from the CLI: ``python -m repro lint``.
"""

from .diagnostics import (
    Diagnostic,
    LintConfig,
    LintResult,
    Severity,
    render_json,
    render_text,
)
from .registry import Rule, all_rules, get_rule, registered_codes
from .plan_sanitizer import PlanAudit, sanitize_plan
from .circuit_rules import lint_circuit
from .trial_rules import lint_noise_model, lint_trials
from .trace_rules import lint_trace
from .partition_rules import lint_partition, lint_partition_trace
from .journal_rules import lint_journal
from .costmodel import (
    PlanCostAnalysis,
    analyze_hybrid,
    analyze_partition,
    analyze_plan,
    build_certificate,
    validate_certificate,
    write_certificate,
)
from .schedule_rules import (
    lint_budget_prediction,
    lint_certificate_schedule,
    lint_certificate_trace,
    lint_memory_timeline,
)
from .metrics_rules import lint_metrics_trace
from .wavefront_rules import lint_wavefront
from .hybrid_rules import lint_hybrid
from .api import (
    lint_benchmark,
    lint_plan,
    lint_qasm_file,
    lint_qasm_text,
    lint_suite,
    sort_diagnostics,
)

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintResult",
    "PlanAudit",
    "PlanCostAnalysis",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_hybrid",
    "analyze_partition",
    "analyze_plan",
    "build_certificate",
    "get_rule",
    "lint_benchmark",
    "lint_budget_prediction",
    "lint_certificate_schedule",
    "lint_certificate_trace",
    "lint_memory_timeline",
    "lint_metrics_trace",
    "lint_circuit",
    "lint_hybrid",
    "lint_journal",
    "lint_noise_model",
    "lint_partition",
    "lint_partition_trace",
    "lint_plan",
    "lint_qasm_file",
    "lint_qasm_text",
    "lint_suite",
    "lint_trace",
    "lint_trials",
    "lint_wavefront",
    "registered_codes",
    "render_json",
    "render_text",
    "sanitize_plan",
    "sort_diagnostics",
    "validate_certificate",
    "write_certificate",
]
