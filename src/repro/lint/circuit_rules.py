"""Circuit-level lint rules (also applied to parsed QASM programs).

Each rule is registered under a stable ``C0xx`` code with a checker that
yields ``(message, location, hint)`` tuples; :func:`lint_circuit` runs all
registered circuit rules against one :class:`QuantumCircuit`.  The rules
are defensive: the circuit builders validate most of these properties at
construction time, but circuits also arrive from QASM files, serialized
payloads and direct ``_instructions`` manipulation, where nothing has been
checked yet.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..circuits.circuit import Barrier, GateOp, Measurement, QuantumCircuit
from ..circuits.gates import Gate
from .diagnostics import LintConfig, LintResult, Severity
from .registry import all_rules, make_diagnostic, rule_checker

__all__ = ["lint_circuit"]

_Finding = Tuple[str, Optional[str], str]

_UNITARY_ATOL = 1e-8


@rule_checker(
    "C001",
    "qubit-out-of-range",
    Severity.ERROR,
    "circuit",
    "An instruction references a qubit index outside the circuit.",
)
def _check_qubit_ranges(circuit: QuantumCircuit) -> Iterator[_Finding]:
    """Gates and measurements must address qubits the circuit declares.

    Circuit builders validate indices at construction, but circuits also
    arrive from QASM text and serialized payloads where nothing has been
    checked; an out-of-range index would crash layerization or, worse,
    index the state tensor's wrong axis.
    """
    for index, instr in enumerate(circuit):
        for qubit in instr.qubits:
            if not 0 <= qubit < circuit.num_qubits:
                yield (
                    f"{instr!r} references qubit {qubit}; the circuit has "
                    f"{circuit.num_qubits} qubit(s)",
                    f"instr {index}",
                    "qubit indices run 0 .. num_qubits - 1",
                )


@rule_checker(
    "C002",
    "clbit-out-of-range",
    Severity.ERROR,
    "circuit",
    "A measurement writes a classical bit outside the register.",
)
def _check_clbit_ranges(circuit: QuantumCircuit) -> Iterator[_Finding]:
    """Measurements must write classical bits inside the declared register.

    A clbit index past the register would make bitstring assembly index
    out of range at readout time — long after the expensive simulation
    has already run — so it is rejected statically instead.
    """
    for index, instr in enumerate(circuit):
        if isinstance(instr, Measurement):
            if not 0 <= instr.clbit < circuit.num_clbits:
                yield (
                    f"{instr!r} writes clbit {instr.clbit}; the circuit has "
                    f"{circuit.num_clbits} classical bit(s)",
                    f"instr {index}",
                    "",
                )


@rule_checker(
    "C003",
    "unused-qubit",
    Severity.WARNING,
    "circuit",
    "A declared qubit is never touched by any gate or measurement.",
)
def _check_unused_qubits(circuit: QuantumCircuit) -> Iterator[_Finding]:
    """A declared-but-untouched qubit doubles the statevector for nothing.

    Every unused qubit doubles ``2**n`` memory and the cost of every
    dense kernel application without affecting any outcome; usually a
    leftover from editing a circuit's width.
    """
    touched = set()
    for instr in circuit:
        if not isinstance(instr, Barrier):
            touched.update(instr.qubits)
    for qubit in range(circuit.num_qubits):
        if qubit not in touched:
            yield (
                f"qubit {qubit} is declared but never used",
                None,
                "unused qubits double the statevector size for nothing",
            )


@rule_checker(
    "C004",
    "non-unitary-gate",
    Severity.ERROR,
    "circuit",
    "A gate's matrix is not numerically unitary.",
)
def _check_unitarity(circuit: QuantumCircuit) -> Iterator[_Finding]:
    """Every gate matrix must be numerically unitary.

    A non-unitary matrix silently un-normalizes the statevector, so
    sampled outcome probabilities stop summing to one; this arises from
    hand-built custom gates or corrupted serialized matrices that
    bypassed the Gate constructor's check.
    """
    verdicts: Dict[Gate, bool] = {}
    for index, instr in enumerate(circuit):
        if not isinstance(instr, GateOp):
            continue
        gate = instr.gate
        verdict = verdicts.get(gate)
        if verdict is None:
            matrix = gate.matrix
            product = matrix @ matrix.conj().T
            verdict = bool(
                np.allclose(
                    product, np.eye(matrix.shape[0]), atol=_UNITARY_ATOL
                )
            )
            verdicts[gate] = verdict
        if not verdict:
            yield (
                f"gate {gate.name!r} at instr {index} has a non-unitary "
                "matrix",
                f"instr {index}",
                "normalize the matrix or rebuild the gate with "
                "check_unitary=True to see the constructor error",
            )


def _is_self_inverse(gate: Gate) -> bool:
    matrix = gate.matrix
    return bool(
        np.allclose(
            matrix @ matrix, np.eye(matrix.shape[0]), atol=_UNITARY_ATOL
        )
    )


@rule_checker(
    "C005",
    "redundant-gate-pair",
    Severity.WARNING,
    "circuit",
    "Two adjacent identical self-inverse gates cancel to the identity.",
)
def _check_redundant_pairs(circuit: QuantumCircuit) -> Iterator[_Finding]:
    """Adjacent identical self-inverse gates multiply to the identity.

    Such pairs cost two full kernel applications per trial and change
    nothing; they typically survive manual circuit edits.  Dropping both
    gates shrinks every Advance segment that contains them.
    """
    # last_op[q] == (instruction index, op) of the latest instruction
    # touching qubit q; a pair is adjacent when no intervening instruction
    # touched any of its qubits.
    last_op: Dict[int, Tuple[int, Optional[GateOp]]] = {}
    self_inverse: Dict[Gate, bool] = {}
    for index, instr in enumerate(circuit):
        if isinstance(instr, Barrier):
            continue
        if isinstance(instr, GateOp):
            previous = {last_op.get(q) for q in instr.qubits}
            if len(previous) == 1:
                entry = previous.pop()
                if entry is not None:
                    prev_index, prev_op = entry
                    if (
                        prev_op is not None
                        and prev_op == instr
                        and tuple(prev_op.qubits) == tuple(instr.qubits)
                    ):
                        verdict = self_inverse.get(instr.gate)
                        if verdict is None:
                            verdict = _is_self_inverse(instr.gate)
                            self_inverse[instr.gate] = verdict
                        if verdict:
                            yield (
                                f"{instr.gate.name} on {instr.qubits} at "
                                f"instr {index} cancels the identical gate "
                                f"at instr {prev_index}",
                                f"instr {index}",
                                "drop both gates; they multiply to the "
                                "identity",
                            )
            for qubit in instr.qubits:
                last_op[qubit] = (index, instr)
        else:  # Measurement blocks pairing across it
            for qubit in instr.qubits:
                last_op[qubit] = (index, None)


@rule_checker(
    "C006",
    "mid-circuit-measurement",
    Severity.ERROR,
    "circuit",
    "A gate follows a measurement on the same qubit (executor contract).",
)
def _check_terminal_measurements(circuit: QuantumCircuit) -> Iterator[_Finding]:
    """Gates after a measurement on the same qubit break the executor.

    The trial-reordering executor samples all measurements from the final
    statevector, which is only valid when measurements are terminal; a
    gate after a measurement would require mid-circuit collapse the
    backends deliberately do not model.
    """
    measured: Dict[int, int] = {}
    for index, instr in enumerate(circuit):
        if isinstance(instr, Measurement):
            measured[instr.qubit] = index
        elif isinstance(instr, GateOp):
            for qubit in instr.qubits:
                if qubit in measured:
                    yield (
                        f"gate {instr.gate.name!r} at instr {index} acts on "
                        f"qubit {qubit}, measured at instr "
                        f"{measured[qubit]}",
                        f"instr {index}",
                        "the trial-reordering executor requires terminal "
                        "measurements",
                    )
                    measured.pop(qubit)


@rule_checker(
    "C007",
    "duplicate-clbit-target",
    Severity.WARNING,
    "circuit",
    "Two measurements write the same classical bit.",
)
def _check_clbit_collisions(circuit: QuantumCircuit) -> Iterator[_Finding]:
    """Two measurements writing one classical bit lose the first readout.

    Only the last write survives in the readout bitstring, so the earlier
    measurement's outcome is silently discarded — almost always an
    off-by-one in clbit assignment rather than an intended overwrite.
    """
    writers: Dict[int, int] = {}
    for index, instr in enumerate(circuit):
        if not isinstance(instr, Measurement):
            continue
        if instr.clbit in writers:
            yield (
                f"measurement at instr {index} overwrites clbit "
                f"{instr.clbit}, already written at instr "
                f"{writers[instr.clbit]}",
                f"instr {index}",
                "only the last write survives in the readout bitstring",
            )
        writers[instr.clbit] = index


@rule_checker(
    "C008",
    "empty-circuit",
    Severity.WARNING,
    "circuit",
    "The circuit contains no gates and no measurements.",
)
def _check_nonempty(circuit: QuantumCircuit) -> Iterator[_Finding]:
    """An empty circuit is almost certainly a loading mistake.

    A circuit with no gates and no measurements runs successfully and
    reports a trivial all-zeros distribution — a confusing non-result
    that usually means a QASM file failed to parse the interesting part.
    """
    if not circuit.gate_ops() and not circuit.measurements():
        yield (
            f"circuit {circuit.name!r} has no gates and no measurements",
            None,
            "",
        )


def lint_circuit(
    circuit: QuantumCircuit, config: Optional[LintConfig] = None
) -> LintResult:
    """Run every registered circuit rule against ``circuit``."""
    result = LintResult(info={"circuit": circuit.name})
    for entry in all_rules(scope="circuit"):
        if entry.checker is None:
            continue
        if config is not None and not config.is_enabled(entry.code):
            continue
        try:
            findings = list(entry.checker(circuit))
        except Exception as exc:
            # A crashing rule is an analyzer bug, not a circuit finding:
            # record it so the verdict is marked incomplete (and the CLI
            # exits non-zero) while the remaining rules still run.
            result.add_internal_error(
                entry.code, f"{type(exc).__name__}: {exc}"
            )
            continue
        for message, location, hint in findings:
            diagnostic = make_diagnostic(
                entry.code,
                message,
                location=location,
                hint=hint or None,
                config=config,
            )
            if diagnostic is not None:
                result.add(diagnostic)
    return result
