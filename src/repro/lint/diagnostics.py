"""Diagnostic objects, lint configuration and renderers.

A :class:`Diagnostic` is one finding of a static pass: a stable code, a
severity, a human message, an optional location (``plan[12]``,
``instr 3``, ``trial 7``, a file path, ...) and an optional fix hint.
:class:`LintResult` aggregates findings; :class:`LintConfig` filters and
re-grades them (disable codes, promote warnings to errors).  Two renderers
are provided: compiler-style text lines and a JSON document for tooling.
"""

from __future__ import annotations

import enum
import json
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

__all__ = [
    "Severity",
    "Diagnostic",
    "LintConfig",
    "LintResult",
    "render_text",
    "render_json",
]


class Severity(enum.IntEnum):
    """Diagnostic grade; ordering allows threshold comparisons."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


class Diagnostic:
    """One static-analysis finding."""

    __slots__ = ("code", "severity", "message", "location", "hint")

    def __init__(
        self,
        code: str,
        severity: Severity,
        message: str,
        location: Optional[str] = None,
        hint: Optional[str] = None,
    ) -> None:
        self.code = code
        self.severity = Severity(severity)
        self.message = message
        self.location = location
        self.hint = hint

    @property
    def is_error(self) -> bool:
        return self.severity >= Severity.ERROR

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.location is not None:
            payload["location"] = self.location
        if self.hint is not None:
            payload["hint"] = self.hint
        return payload

    def render(self) -> str:
        """Compiler-style one-liner: ``error[P004] plan[3]: message``."""
        where = f" {self.location}" if self.location else ""
        text = f"{self.severity.label}[{self.code}]{where}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"Diagnostic({self.render()!r})"


class LintConfig:
    """Filtering and severity policy applied to every emitted diagnostic.

    Parameters
    ----------
    disabled:
        Diagnostic codes to suppress entirely.
    warnings_as_errors:
        Promote every WARNING to ERROR (the ``--werror`` CLI flag).
    max_diagnostics:
        Stop recording after this many findings (None = unlimited).
    """

    def __init__(
        self,
        disabled: Iterable[str] = (),
        warnings_as_errors: bool = False,
        max_diagnostics: Optional[int] = None,
    ) -> None:
        self.disabled = frozenset(disabled)
        self.warnings_as_errors = bool(warnings_as_errors)
        self.max_diagnostics = max_diagnostics

    def is_enabled(self, code: str) -> bool:
        return code not in self.disabled

    def apply(self, diagnostic: Diagnostic) -> Optional[Diagnostic]:
        """Return the (possibly re-graded) diagnostic, or None if suppressed."""
        if not self.is_enabled(diagnostic.code):
            return None
        if (
            self.warnings_as_errors
            and diagnostic.severity == Severity.WARNING
        ):
            return Diagnostic(
                diagnostic.code,
                Severity.ERROR,
                diagnostic.message,
                location=diagnostic.location,
                hint=diagnostic.hint,
            )
        return diagnostic

    def __repr__(self) -> str:
        return (
            f"LintConfig(disabled={sorted(self.disabled)}, "
            f"warnings_as_errors={self.warnings_as_errors})"
        )


class LintResult:
    """An ordered collection of diagnostics plus pass metadata.

    ``info`` carries pass-specific statistics (e.g. the plan sanitizer's
    static ``peak_msv``) so CLI reports and cross-check tests can read them
    without re-deriving anything.
    """

    def __init__(
        self,
        diagnostics: Optional[Sequence[Diagnostic]] = None,
        info: Optional[Dict[str, object]] = None,
    ) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics or ())
        self.info: Dict[str, object] = dict(info or {})
        #: Analyzer *internal* failures (a rule checker raised), as
        #: ``"CODE: message"`` strings.  Distinct from diagnostics: these
        #: mean the verdict is incomplete, not that the subject is bad, and
        #: they force a non-zero CLI exit even when ``ok`` is True.
        self.internal_errors: List[str] = []

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def add_internal_error(self, code: str, message: str) -> None:
        """Record that a rule crashed instead of producing a verdict."""
        self.internal_errors.append(f"{code}: {message}")

    def extend(self, other: "LintResult") -> "LintResult":
        """Merge another result into this one (diagnostics and info)."""
        self.diagnostics.extend(other.diagnostics)
        self.info.update(other.info)
        self.internal_errors.extend(other.internal_errors)
        return self

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were recorded."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics)} total"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "internal_errors": list(self.internal_errors),
            "info": self.info,
        }

    def __repr__(self) -> str:
        return f"LintResult({self.summary()})"


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """One line per diagnostic, in emission order."""
    return "\n".join(d.render() for d in diagnostics)


def render_json(diagnostics: Iterable[Diagnostic], indent: int = 2) -> str:
    """A JSON array of diagnostic objects."""
    return json.dumps(
        [d.to_dict() for d in diagnostics], indent=indent, sort_keys=True
    )
