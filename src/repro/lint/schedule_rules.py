"""Certificate-vs-runtime rules: the cost model must match real evidence.

:mod:`repro.lint.costmodel` predicts a run's costs from the plan alone;
these rules prove the predictions against what actually happened — the
same static-proof-then-runtime-evidence idiom as P013 (peak MSV) and P017
(cache schedule), extended to the full ResourceCertificate:

* **P020** — per-segment operation counts in the certificate equal the
  recorded trace exactly (span counts, per-span gate counts, inject
  count, total ``ops.applied``, finished trials);
* **P021** — recorded memory gauges never exceed the certificate's static
  memory timeline (and equal it exactly for an undegraded serial run);
* **P022** — the certified schedules are internally sound: LPT makespans
  reproduce from the certificate's own task weights, certified makespans
  are monotone non-increasing in workers, and operation counts are
  conserved across every partition depth;
* **P023** — predicted spill/drop/recompute counts under a cache budget
  equal the runtime ``CacheStats`` counters.

P020/P021 accept merged multi-worker traces too: the partitioner
conserves the Advance/Inject instruction multiset between the serial plan
and prefix-plus-tasks, and every sub-run's live peak is bounded by the
serial peak.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .costmodel import lpt_makespan, validate_certificate
from .diagnostics import Diagnostic, LintConfig, LintResult, Severity
from .registry import make_diagnostic, register

__all__ = [
    "lint_certificate_trace",
    "lint_memory_timeline",
    "lint_certificate_schedule",
    "lint_budget_prediction",
]


register(
    "P020",
    "certificate-trace-mismatch",
    Severity.ERROR,
    "plan",
    "Recorded per-segment operation counts diverge from the resource "
    "certificate.",
    explanation="The certificate's per-segment op counts are the paper's "
    "central claim made checkable: redundancy elimination's cost is a "
    "function of plan structure alone.  P020 compares every recorded "
    "advance span (count and gate weight), the inject count, the total "
    "ops.applied counter and the finished-trial count against the "
    "certified numbers — exactly, not approximately.  A mismatch means "
    "the cost model no longer mirrors the executor and every advise "
    "decision built on it is unsound.",
)

register(
    "P021",
    "memory-timeline-violation",
    Severity.ERROR,
    "plan",
    "Recorded memory-state gauges exceed the certificate's static memory "
    "timeline.",
    explanation="The certificate's memory timeline upper-bounds the live, "
    "stored and resident statevector counts at every plan instruction; "
    "`repro advise` picks configurations on the strength of that bound.  "
    "P021 checks the recorded msv.live/msv.stored/msv.resident gauge "
    "peaks never exceed the static peaks (and, for an undegraded serial "
    "run, that the live peak is hit exactly) — a violation means the "
    "analyzer's StateCache mirror has diverged and certified memory "
    "budgets cannot be trusted.",
)

register(
    "P022",
    "makespan-inconsistency",
    Severity.ERROR,
    "plan",
    "Certified schedule is not reproducible or not monotone in workers.",
    explanation="A certificate is only machine-checkable if its schedule "
    "numbers can be re-derived from its own data: re-running LPT over the "
    "certified task weights must reproduce each raw makespan, the "
    "certified makespan must be the running minimum over smaller worker "
    "counts (hence monotone non-increasing in workers — extra workers can "
    "always idle), and prefix-plus-task operation counts must equal the "
    "serial plan's at every partition depth.  Raw LPT makespans are "
    "deliberately not required to be monotone in depth: deeper cuts move "
    "shared segment work into the serial prefix, which can lengthen the "
    "critical path.",
)

register(
    "P023",
    "budget-prediction-mismatch",
    Severity.ERROR,
    "plan",
    "Predicted cache-budget degradation diverges from the runtime "
    "counters.",
    explanation="Under a CacheBudget the executor spills or drops the "
    "coldest resident snapshot after each store; the certificate predicts "
    "every such event symbolically.  P023 compares predicted spill, "
    "spill-load, drop and recompute counts against the runtime CacheStats "
    "counters — equality proves the analyzer replays the executor's "
    "degradation policy exactly, which is what makes certified "
    "budget-degradation tradeoffs (and the advise ranking built on them) "
    "sound.",
)


def _emit(
    diagnostics: List[Diagnostic],
    code: str,
    message: str,
    location: str,
    hint: str = "",
    config: Optional[LintConfig] = None,
) -> None:
    diagnostic = make_diagnostic(
        code, message, location=location, hint=hint or None, config=config
    )
    if diagnostic is not None:
        diagnostics.append(diagnostic)


def lint_certificate_trace(
    certificate: Dict[str, Any],
    recorder,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """``P020``: prove certified op counts against a recorded trace.

    ``recorder`` is an :class:`~repro.obs.recorder.InMemoryRecorder` for
    the same circuit/trial set the certificate was built from — serial,
    or merged multi-worker (the instruction multiset is conserved).
    Under a drop-mode budget the recorded total legitimately includes the
    recompute operations the trace itself reports (``cache.recompute``
    instants); P020 accounts for them exactly.
    """
    from ..obs.summary import segment_profile

    diagnostics: List[Diagnostic] = []
    plan = certificate.get("plan", {})
    segments: Dict[str, Dict[str, int]] = plan.get("segments", {})

    profile = segment_profile(recorder)
    recorded_spans: Dict[str, Dict[str, int]] = profile["segments"]

    for name in sorted(set(segments) | set(recorded_spans)):
        want = segments.get(name)
        got = recorded_spans.get(name, {"count": 0, "gates": 0})
        if want is None:
            _emit(
                diagnostics,
                "P020",
                f"trace records {got['count']} span(s) of {name} but the "
                "certificate has no such segment",
                location=name,
                config=config,
            )
            continue
        if got["count"] != want["count"]:
            _emit(
                diagnostics,
                "P020",
                f"certificate counts {want['count']} execution(s) of "
                f"{name} but the trace records {got['count']}",
                location=name,
                config=config,
            )
        if got["count"] and got["gates"] != want["gates"]:
            _emit(
                diagnostics,
                "P020",
                f"trace span {name} applies {got['gates']} gate(s) but "
                f"the certificate weighs it at {want['gates']}",
                location=name,
                config=config,
            )

    want_injects = plan.get("injects", {}).get("count", 0)
    if profile["injects"] != want_injects:
        _emit(
            diagnostics,
            "P020",
            f"certificate counts {want_injects} inject(s) but the trace "
            f"records {profile['injects']}",
            location="injects",
            config=config,
        )

    recompute_ops = profile["recompute_ops"]
    recorded_ops = profile["ops_applied"]
    expected_ops = int(plan.get("ops", 0)) + recompute_ops
    if recorded_ops != expected_ops:
        _emit(
            diagnostics,
            "P020",
            f"certificate predicts {expected_ops} applied operation(s) "
            f"(plan {plan.get('ops', 0)} + recompute {recompute_ops}) but "
            f"the run applied {recorded_ops}",
            location="ops",
            hint="segment costs or the recompute closed form have "
            "diverged from the executor",
            config=config,
        )

    finished = profile["trials_finished"]
    want_trials = int(certificate.get("num_trials", 0))
    if finished != want_trials:
        _emit(
            diagnostics,
            "P020",
            f"certificate covers {want_trials} trial(s) but the run "
            f"finished {finished}",
            location="finishes",
            config=config,
        )

    return LintResult(
        diagnostics,
        info={
            "recorded_ops": recorded_ops,
            "certified_ops": plan.get("ops"),
            "recompute_ops": recompute_ops,
            "finished_trials": finished,
        },
    )


def lint_memory_timeline(
    certificate: Dict[str, Any],
    recorder,
    config: Optional[LintConfig] = None,
    exact: bool = False,
) -> LintResult:
    """``P021``: recorded memory gauges never exceed the static timeline.

    With ``exact=True`` (an undegraded *serial* run) the recorded
    ``msv.live`` peak must also hit the certified peak exactly — the
    static bound is tight by construction.  Merged parallel traces use
    the sound direction only: gauge peaks are maxed across tracks and
    every sub-run's peak is bounded by the serial peak.
    """
    diagnostics: List[Diagnostic] = []
    plan_memory = certificate.get("plan", {}).get("memory", {})
    budget = certificate.get("budget")

    checks = [
        ("msv.live", plan_memory.get("peak_msv")),
        ("msv.stored", plan_memory.get("peak_stored")),
    ]
    if budget is not None:
        checks.append(("msv.resident", budget.get("peak_resident_msv")))

    peaks: Dict[str, float] = {}
    for gauge, bound in checks:
        if bound is None:
            continue
        peak = recorder.gauge_peak(gauge, default=0)
        peaks[gauge] = peak
        if peak > bound:
            _emit(
                diagnostics,
                "P021",
                f"recorded {gauge} peak {int(peak)} exceeds the certified "
                f"static peak {bound}",
                location=gauge,
                hint="the cost model's StateCache mirror has diverged; "
                "certified memory bounds are unsound",
                config=config,
            )
    if exact:
        bound = plan_memory.get("peak_msv")
        peak = peaks.get("msv.live", 0)
        if bound is not None and peak and int(peak) != int(bound):
            _emit(
                diagnostics,
                "P021",
                f"recorded msv.live peak {int(peak)} != certified peak "
                f"{bound} (exact match expected for an undegraded serial "
                "run)",
                location="msv.live",
                config=config,
            )
    return LintResult(diagnostics, info={"recorded_peaks": peaks})


def lint_certificate_schedule(
    certificate: Dict[str, Any],
    config: Optional[LintConfig] = None,
) -> LintResult:
    """``P022``: the certificate's schedules are internally sound.

    Pure certificate arithmetic — no trace needed: structural validity,
    LPT reproducibility from the certified task weights, certified
    makespan == running minimum of raw LPT (hence monotone non-increasing
    in workers), and operation conservation (prefix + tasks == serial
    plan) at every partition depth.
    """
    diagnostics: List[Diagnostic] = []

    for problem in validate_certificate(certificate):
        _emit(
            diagnostics, "P022", problem, location="certificate", config=config
        )

    plan_ops = certificate.get("plan", {}).get("ops")
    for schedule in certificate.get("schedules", []):
        depth = schedule.get("depth")
        location = f"depth[{depth}]"
        task_ops = schedule.get("task_ops", [])
        task_flops = schedule.get("task_flops", [])

        if plan_ops is not None:
            total = schedule.get("prefix_ops", 0) + sum(task_ops)
            if total != plan_ops:
                _emit(
                    diagnostics,
                    "P022",
                    f"prefix + task ops = {total} but the serial plan "
                    f"performs {plan_ops} (depth {depth})",
                    location=location,
                    hint="the partition must conserve the serial "
                    "instruction multiset at every depth",
                    config=config,
                )

        best: Optional[int] = None
        previous: Optional[int] = None
        for k in sorted(schedule.get("workers", {}), key=int):
            entry = schedule["workers"][k]
            raw = lpt_makespan(task_flops, int(k))
            if raw != entry.get("lpt_makespan"):
                _emit(
                    diagnostics,
                    "P022",
                    f"LPT over the certified weights gives makespan {raw} "
                    f"at {k} worker(s) but the certificate records "
                    f"{entry.get('lpt_makespan')}",
                    location=f"{location}.workers[{k}]",
                    config=config,
                )
            best = raw if best is None else min(best, raw)
            if entry.get("makespan") != best:
                _emit(
                    diagnostics,
                    "P022",
                    f"certified makespan at {k} worker(s) is "
                    f"{entry.get('makespan')}, expected the running "
                    f"minimum {best}",
                    location=f"{location}.workers[{k}]",
                    config=config,
                )
            if previous is not None and entry.get("makespan") > previous:
                _emit(
                    diagnostics,
                    "P022",
                    f"certified makespan increases from {previous} to "
                    f"{entry.get('makespan')} at {k} worker(s)",
                    location=f"{location}.workers[{k}]",
                    hint="certified makespans must be monotone "
                    "non-increasing in workers",
                    config=config,
                )
            previous = entry.get("makespan")

    return LintResult(
        diagnostics,
        info={"depths": [s.get("depth") for s in certificate.get("schedules", [])]},
    )


def lint_budget_prediction(
    certificate: Dict[str, Any],
    cache_stats,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """``P023``: predicted budget degradation equals the runtime counters.

    ``cache_stats`` is the :class:`~repro.core.cache.CacheStats` of a
    serial ``run_optimized`` under the same budget the certificate was
    built with (statevector states — the cost model assumes
    ``16 * 2**n`` bytes per state).  Without a budget section the rule
    still asserts the run saw no degradation.
    """
    diagnostics: List[Diagnostic] = []
    budget = certificate.get("budget") or {}
    predicted = budget.get("predicted", {})

    pairs = [
        ("spills", predicted.get("spills", 0), cache_stats.spills),
        (
            "spill_loads",
            predicted.get("spill_loads", 0),
            cache_stats.spill_loads,
        ),
        ("drops", predicted.get("drops", 0), cache_stats.drops),
        ("recomputes", predicted.get("recomputes", 0), cache_stats.recomputes),
    ]
    for name, want, got in pairs:
        if int(want) != int(got):
            _emit(
                diagnostics,
                "P023",
                f"certificate predicts {want} {name} but the run counted "
                f"{got}",
                location=name,
                hint="the analyzer's budget mirror no longer replays the "
                "executor's enforce-after-store policy",
                config=config,
            )

    if budget:
        bound = budget.get("peak_resident_msv")
        if bound is not None and cache_stats.peak_resident_msv > bound:
            _emit(
                diagnostics,
                "P023",
                f"runtime resident peak {cache_stats.peak_resident_msv} "
                f"exceeds the certified bound {bound}",
                location="peak_resident_msv",
                config=config,
            )

    return LintResult(
        diagnostics,
        info={
            "predicted": dict(predicted),
            "observed": {
                "spills": cache_stats.spills,
                "spill_loads": cache_stats.spill_loads,
                "drops": cache_stats.drops,
                "recomputes": cache_stats.recomputes,
            },
        },
    )
