"""Trial-set and noise-model lint rules (``N0xx`` codes).

Trials are plain named tuples and noise models carry mutable calibration
maps, so invalid values can reach the scheduler through deserialized
payloads or post-construction mutation.  These rules re-verify the
properties the constructors enforce, plus circuit-relative bounds the
constructors cannot know.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuits.layers import LayeredCircuit
from ..core.events import PAULI_LABELS, Trial
from ..noise.model import NoiseModel
from .diagnostics import LintConfig, LintResult, Severity
from .registry import make_diagnostic, register

__all__ = ["lint_trials", "lint_noise_model"]

register(
    "N001",
    "event-layer-out-of-range",
    Severity.ERROR,
    "trials",
    "A trial event fires after a layer beyond the circuit depth.",
    explanation="Sampled error events are positioned after a circuit "
    "layer; an event past the circuit's depth can never be injected and "
    "signals a trial set sampled against a different (deeper) circuit or "
    "corrupted in transit.",
)
register(
    "N002",
    "event-qubit-out-of-range",
    Severity.ERROR,
    "trials",
    "A trial event targets a qubit outside the circuit.",
    explanation="An error operator on a qubit the circuit does not have "
    "cannot be applied to the statevector; the scheduler would crash when "
    "the plan injects it.  Checked here circuit-relative, which the Trial "
    "constructor alone cannot do.",
)
register(
    "N003",
    "duplicate-event-position",
    Severity.ERROR,
    "trials",
    "Two events of one trial collide on the same (layer, qubit) position.",
    explanation="The noise model samples at most one error operator per "
    "(layer, qubit) position per trial; two events colliding on a "
    "position means the trial was assembled by hand or merged "
    "incorrectly, and the trie's canonical ordering would be ambiguous.",
)
register(
    "N004",
    "unknown-pauli",
    Severity.ERROR,
    "trials",
    "A trial event carries an operator outside the {x, y, z} alphabet.",
    explanation="Injection resolves operators by Pauli label; anything "
    "outside the alphabet would raise mid-run.  Trials built through "
    "make_trial() are validated at construction — this rule catches "
    "deserialized or hand-built trials that bypassed it.",
)
register(
    "N005",
    "events-not-canonical",
    Severity.WARNING,
    "trials",
    "A trial's events are not in sorted (layer, qubit, pauli) order.",
    explanation="Reordering and deduplication key on the sorted event "
    "tuple; a non-canonical trial still executes correctly but defeats "
    "prefix sharing (identical trials stop deduplicating), silently "
    "costing the speedup the paper's trie exists to provide.",
)
register(
    "N006",
    "meas-flip-out-of-range",
    Severity.ERROR,
    "trials",
    "A readout flip targets a classical bit outside the register.",
    explanation="Readout errors flip classical bits after measurement; a "
    "flip on a bit outside the register would either crash bitstring "
    "assembly or silently do nothing, depending on the backend — both "
    "wrong, so it is rejected statically.",
)
register(
    "N007",
    "probability-out-of-range",
    Severity.ERROR,
    "noise",
    "An error or readout probability lies outside [0, 1].",
    explanation="Calibration maps are mutable and arrive from device "
    "payloads; a probability outside [0, 1] makes the sampler's "
    "Bernoulli draws meaningless (negative rates never fire, rates above "
    "one silently saturate).  Re-validated here because constructors "
    "cannot see post-construction mutation.",
)
register(
    "N008",
    "channel-not-normalized",
    Severity.ERROR,
    "noise",
    "A channel's error-label probabilities sum to more than 1.",
    explanation="Each error channel distributes its firing probability "
    "over Pauli labels; if the labels sum past 1 the 'no error' outcome "
    "has negative probability and sampled trial statistics are no longer "
    "a probability distribution.",
)


def lint_trials(
    trials: Sequence[Trial],
    layered: Optional[LayeredCircuit] = None,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Check every trial's events against the circuit's bounds and the
    canonical-ordering contract."""
    result = LintResult(info={"num_trials": len(trials)})

    def emit(code: str, message: str, index: int, hint: str = "") -> None:
        diagnostic = make_diagnostic(
            code,
            message,
            location=f"trial {index}",
            hint=hint or None,
            config=config,
        )
        if diagnostic is not None:
            result.add(diagnostic)

    num_layers = layered.num_layers if layered is not None else None
    num_qubits = layered.num_qubits if layered is not None else None

    for index, trial in enumerate(trials):
        positions = set()
        for event in trial.events:
            if num_layers is not None and not 0 <= event.layer < num_layers:
                emit(
                    "N001",
                    f"event {event} beyond circuit depth {num_layers}",
                    index,
                )
            if num_qubits is not None and not 0 <= event.qubit < num_qubits:
                emit(
                    "N002",
                    f"event {event} beyond qubit count {num_qubits}",
                    index,
                )
            if (event.layer, event.qubit) in positions:
                emit(
                    "N003",
                    f"two events at position (L{event.layer}, "
                    f"q{event.qubit})",
                    index,
                    hint="a position holds at most one error operator per "
                    "trial",
                )
            positions.add((event.layer, event.qubit))
            if event.pauli not in PAULI_LABELS:
                emit(
                    "N004",
                    f"event {event} has operator {event.pauli!r}; expected "
                    f"one of {PAULI_LABELS}",
                    index,
                    hint="build trials through make_trial() to validate "
                    "operators",
                )
        if tuple(sorted(trial.events)) != tuple(trial.events):
            emit(
                "N005",
                "events are not in canonical sorted order",
                index,
                hint="reordering and deduplication key on the sorted event "
                "tuple; use make_trial()",
            )
        if layered is not None:
            num_clbits = layered.circuit.num_clbits
            for clbit in trial.meas_flips:
                if not 0 <= clbit < num_clbits:
                    emit(
                        "N006",
                        f"readout flip of clbit {clbit}; the circuit has "
                        f"{num_clbits} classical bit(s)",
                        index,
                    )
    return result


def lint_noise_model(
    model: NoiseModel,
    layered: Optional[LayeredCircuit] = None,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Check a noise model's probabilities, optionally against a circuit.

    With ``layered`` provided, every error position the model enumerates
    for that circuit is checked (channel widths, normalization); without
    it, only the calibration maps are audited.
    """
    result = LintResult(info={"noise_model": model.name})

    def emit(code: str, message: str, location: str, hint: str = "") -> None:
        diagnostic = make_diagnostic(
            code, message, location=location, hint=hint or None, config=config
        )
        if diagnostic is not None:
            result.add(diagnostic)

    for label, probability in model._all_probabilities():
        if not 0.0 <= probability <= 1.0:
            emit(
                "N007",
                f"probability {probability} for {label} is outside [0, 1]",
                f"noise-model {model.name!r}",
                hint="calibration maps are mutable; re-validate after "
                "editing them",
            )

    if layered is not None:
        try:
            positions = model.error_positions(layered)
        except ValueError as exc:
            # Channel construction itself rejects the calibration values
            # (e.g. a mutated rate > 1): report instead of crashing.
            emit(
                "N008",
                f"cannot build error channels for {model.name!r}: {exc}",
                f"noise-model {model.name!r}",
            )
            positions = []
        for position in positions:
            channel = position.channel
            total = sum(channel.probabilities.values())
            location = (
                f"position (L{position.layer}, q{list(position.qubits)})"
            )
            if total > 1.0 + 1e-12:
                emit(
                    "N008",
                    f"channel error probabilities sum to {total:.6g} > 1",
                    location,
                )
            for label, probability in channel.probabilities.items():
                if probability < 0.0:
                    emit(
                        "N007",
                        f"negative probability {probability} for label "
                        f"{label!r}",
                        location,
                    )
        for measurement, probability in model.measurement_positions(layered):
            if not 0.0 <= probability <= 1.0:
                emit(
                    "N007",
                    f"readout flip probability {probability} for qubit "
                    f"{measurement.qubit} is outside [0, 1]",
                    f"measure q{measurement.qubit}",
                )
    return result
