"""Trace-vs-plan cross-check: dynamic events must match the static schedule.

The plan sanitizer (:mod:`repro.lint.plan_sanitizer`) proves a plan's slot
discipline *statically*; the observability layer (:mod:`repro.obs`) records
what the executor *actually did*.  :func:`lint_trace` closes the loop: the
ordered sequence of recorded cache events (``cache.store`` per ``Snapshot``,
``cache.hit`` per ``Restore``) must equal, slot for slot and in order, the
schedule the plan prescribes.  Any divergence — a missing store, an
out-of-order restore, an event against the wrong slot, phantom events the
plan never asked for — fires ``P017``.

This is a runtime-evidence rule: it cannot run in the purely static
``repro lint`` audit (there is no trace yet), so it lives behind
:func:`lint_trace` and is exercised by ``repro trace`` and the test suite.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.schedule import ExecutionPlan, Restore, Snapshot
from .diagnostics import Diagnostic, LintConfig, LintResult, Severity
from .registry import make_diagnostic, register

__all__ = ["lint_trace", "plan_cache_schedule", "trace_cache_events"]


register(
    "P017",
    "trace-plan-mismatch",
    Severity.ERROR,
    "plan",
    "Recorded cache store/evict events diverge from the plan's slot "
    "schedule.",
    explanation="The sanitizer proves the plan's slot schedule statically; "
    "this rule closes the loop with runtime evidence: the ordered "
    "cache.store/cache.hit events of a recorded run must equal the plan's "
    "Snapshot/Restore sequence slot for slot.  Any divergence means the "
    "executor did not run the plan it was given — the one assumption every "
    "other static proof rests on.",
)

#: One cache event: ``("store" | "hit", slot)``.
_CacheEvent = Tuple[str, int]


def plan_cache_schedule(plan: ExecutionPlan) -> List[_CacheEvent]:
    """The cache-event sequence a faithful execution of ``plan`` emits."""
    schedule: List[_CacheEvent] = []
    for instr in plan:
        if isinstance(instr, Snapshot):
            schedule.append(("store", instr.slot))
        elif isinstance(instr, Restore):
            schedule.append(("hit", instr.slot))
    return schedule


def trace_cache_events(recorder) -> List[_CacheEvent]:
    """Extract the ordered cache events from a recorded run.

    Accepts an :class:`~repro.obs.recorder.InMemoryRecorder` (or anything
    with a compatible ``events`` list of ``TraceEvent`` tuples).
    """
    events: List[_CacheEvent] = []
    for event in recorder.events:
        if event.ph != "i" or event.cat != "cache":
            continue
        if event.name == "cache.store":
            events.append(("store", int((event.args or {}).get("slot", -1))))
        elif event.name == "cache.hit":
            events.append(("hit", int((event.args or {}).get("slot", -1))))
    return events


def lint_trace(
    plan: ExecutionPlan,
    recorder,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Cross-check a recorded trace against the plan's slot schedule.

    Every recorded store/evict must match the plan's ``Snapshot`` /
    ``Restore`` sequence exactly — same kind, same slot, same order, same
    count.  Returns a :class:`LintResult` whose ``info`` carries both
    sequences' lengths; ``P017`` diagnostics pinpoint the first divergence
    and any length mismatch.
    """
    expected = plan_cache_schedule(plan)
    recorded = trace_cache_events(recorder)
    diagnostics: List[Diagnostic] = []

    def emit(message: str, location: str, hint: str = "") -> None:
        diagnostic = make_diagnostic(
            "P017", message, location=location, hint=hint or None, config=config
        )
        if diagnostic is not None:
            diagnostics.append(diagnostic)

    for position, (want, got) in enumerate(zip(expected, recorded)):
        if want != got:
            emit(
                f"cache event {position} is {got[0]}(slot={got[1]}) but the "
                f"plan schedules {want[0]}(slot={want[1]})",
                location=f"trace[{position}]",
                hint="the executor must store/restore exactly the plan's "
                "slots, in plan order",
            )
            break  # subsequent events are misaligned; one report suffices
    if len(recorded) < len(expected):
        want = expected[len(recorded)]
        emit(
            f"trace ends after {len(recorded)} cache event(s); the plan "
            f"schedules {len(expected)} (next expected: "
            f"{want[0]}(slot={want[1]}))",
            location=f"trace[{len(recorded)}]",
            hint="was the run truncated, or recorded without cache "
            "instrumentation?",
        )
    elif len(recorded) > len(expected):
        extra = recorded[len(expected)]
        emit(
            f"trace records {len(recorded)} cache event(s) but the plan "
            f"schedules only {len(expected)} (first extra: "
            f"{extra[0]}(slot={extra[1]}))",
            location=f"trace[{len(expected)}]",
        )

    return LintResult(
        diagnostics,
        info={
            "planned_cache_events": len(expected),
            "recorded_cache_events": len(recorded),
        },
    )
