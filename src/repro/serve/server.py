"""The asyncio job server: admission, dispatch, streaming, recovery.

One :class:`JobServer` owns the whole serving stack:

* an asyncio TCP listener speaking the :mod:`~repro.serve.protocol`
  NDJSON dialect, with ``GET /metrics`` HTTP scrapes detected on the
  same port;
* an :class:`~repro.serve.admission.AdmissionController` bounding
  queued-plus-running work, rejecting the overflow with 429-style
  responses carrying ``retry_after``;
* ``exec_threads`` dispatcher coroutines feeding a thread pool that
  runs :func:`~repro.serve.jobs.execute_job` — the journaled, retried,
  degradable execution core;
* one :class:`~repro.core.shared.SharedPrefixStore` passed to every
  eligible job, so concurrent jobs on the same circuit family adopt
  each other's prefix states bit-identically instead of recomputing;
* crash recovery: on startup every job directory with a committed spec
  but no terminal file is re-admitted (``force=True``, its admission
  was already journaled) and resumes from its run journal with zero
  recompute of committed trials.

Deadlines: a job with ``timeout`` is raced against the clock; on expiry
the server sets the job's cooperative stop event and waits for
:class:`~repro.core.executor.RunInterrupted`, which by contract arrives
only after the journal tail is committed — a timed-out job is marked
``interrupted`` and is resumable, never torn.

Shutdown: ``request_shutdown("drain")`` stops admitting and lets the
backlog finish; ``"stop"`` additionally fires every running job's stop
event.  SIGTERM/SIGINT map to ``"stop"`` — kill-resumable beats
drain-forever for an operator signal.  A SIGKILL, of course, runs none
of this; that is what the recovery scan is for, and what the chaos
suite proves.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from ..core.atomicio import atomic_write_json
from ..core.cache import CacheBudget
from ..core.executor import RunInterrupted
from ..core.shared import SharedPrefixStore
from .admission import AdmissionController, QueueFull
from .jobs import JobRecord, JobSpec, JobStore, execute_job
from .protocol import (
    OPENMETRICS_CONTENT_TYPE,
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
    http_response,
    ok_response,
)
from .registry import (
    JOBS_FAMILY,
    QUEUE_FAMILY,
    RUNNING_FAMILY,
    SECONDS_FAMILY,
    TRIALS_FAMILY,
    build_serve_registry,
    render_serve_metrics,
)

__all__ = ["ServeConfig", "JobServer", "run_server"]


class ServeConfig:
    """Everything a :class:`JobServer` needs, with service defaults.

    ``exec_threads`` defaults to 1: a single executor maximizes
    cross-job prefix-store hits (jobs on the same family run back to
    back against a warm store) and keeps trial streams strictly
    ordered.  Raise it for throughput when jobs rarely share circuits.
    """

    def __init__(
        self,
        state_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 16,
        exec_threads: int = 1,
        shared_budget_bytes: Optional[int] = 256 * 1024 * 1024,
        shared_mode: str = "spill",
        retry_base: float = 0.05,
        retry_cap: float = 1.0,
        install_signal_handlers: bool = False,
    ) -> None:
        self.state_dir = os.fspath(state_dir)
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.exec_threads = exec_threads
        self.shared_budget_bytes = shared_budget_bytes
        self.shared_mode = shared_mode
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.install_signal_handlers = install_signal_handlers


class JobServer:
    """The long-lived serving process (one per state directory)."""

    def __init__(self, config: ServeConfig, chaos=None) -> None:
        self.config = config
        self.chaos = chaos
        self.store = JobStore(config.state_dir)
        self.registry = build_serve_registry()
        self.admission = AdmissionController(
            max_pending=config.max_pending,
            exec_threads=config.exec_threads,
        )
        budget = None
        if config.shared_budget_bytes is not None:
            budget = CacheBudget(
                max_bytes=config.shared_budget_bytes,
                mode=config.shared_mode,
                spill_dir=os.path.join(config.state_dir, "shared-spill"),
            )
            if budget.spill_dir:
                os.makedirs(budget.spill_dir, exist_ok=True)
        self.shared = SharedPrefixStore(budget)
        self.jobs: Dict[str, JobRecord] = {}
        self._stops: Dict[str, threading.Event] = {}
        self._streams: Dict[str, List[asyncio.Queue]] = {}
        self._done_events: Dict[str, asyncio.Event] = {}
        self._wakeup: Optional[asyncio.Event] = None
        self._closing = False
        self._stop_mode = "drain"
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._dispatchers: List[asyncio.Task] = []
        self.port: Optional[int] = None

    # -- metrics helpers ---------------------------------------------------

    def _count_job(self, state: str, value: int = 1) -> None:
        self.registry.counter(JOBS_FAMILY, labels=("state",)).inc(
            value, state=state
        )

    def _update_load_gauges(self) -> None:
        queue = self.registry.gauge(QUEUE_FAMILY, labels=("cls",))
        queue.set(self.admission.depth("interactive"), cls="interactive")
        queue.set(self.admission.depth("batch"), cls="batch")
        self.registry.gauge(RUNNING_FAMILY).set(self.admission.running)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Recover, bind, publish the endpoint, start dispatching."""
        loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.exec_threads,
            thread_name_prefix="repro-serve",
        )
        pending, finished = self.store.recover()
        for record in finished:
            self.jobs[record.job_id] = record
            self._done_events[record.job_id] = asyncio.Event()
            self._done_events[record.job_id].set()
        for record in pending:
            self.jobs[record.job_id] = record
            self._done_events[record.job_id] = asyncio.Event()
            self.admission.submit(record, force=True)
            self._count_job("recovered")
        self._update_load_gauges()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        port = self._server.sockets[0].getsockname()[1]
        atomic_write_json(
            self.store.endpoint_path(),
            {"host": self.config.host, "port": port, "pid": os.getpid()},
        )
        # Publish the port only after endpoint.json exists: anyone who
        # sees a bound server can rely on discovery working.
        self.port = port
        for _ in range(self.config.exec_threads):
            self._dispatchers.append(loop.create_task(self._dispatch()))
        if self.config.install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    sig, self.request_shutdown, "stop"
                )
        if pending:
            self._wakeup.set()

    def request_shutdown(self, mode: str = "drain") -> None:
        """Begin shutdown: ``drain`` finishes the backlog, ``stop``
        interrupts running jobs at their next instruction boundary."""
        if mode not in ("drain", "stop"):
            raise ValueError(f"unknown shutdown mode {mode!r}")
        self._closing = True
        self._stop_mode = mode
        if mode == "stop":
            for stop in self._stops.values():
                stop.set()
        if self._wakeup is not None:
            self._wakeup.set()

    async def serve_forever(self) -> None:
        """Run until a shutdown request fully lands, then clean up."""
        assert self._server is not None, "call start() first"
        try:
            while self._dispatchers:
                done, _ = await asyncio.wait(
                    self._dispatchers, return_when=asyncio.FIRST_COMPLETED
                )
                self._dispatchers = [
                    task for task in self._dispatchers if task not in done
                ]
                for task in done:
                    task.result()  # surface dispatcher crashes loudly
        finally:
            self._server.close()
            await self._server.wait_closed()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self.shared.close()
            try:
                os.remove(self.store.endpoint_path())
            except OSError:
                pass

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self) -> None:
        assert self._wakeup is not None
        loop = asyncio.get_running_loop()
        while True:
            record = self.admission.pop()
            if record is None:
                self._wakeup.clear()
                # Re-check after clearing: a submit may have raced it.
                if self.admission.depth() == 0:
                    if self._closing and self.admission.running == 0:
                        return
                    await self._wakeup.wait()
                continue
            self._update_load_gauges()
            record.state = "running"
            stop = threading.Event()
            if self._closing and self._stop_mode == "stop":
                stop.set()
            self._stops[record.job_id] = stop
            started = time.monotonic()
            try:
                await self._run_one(loop, record, stop)
            finally:
                self._stops.pop(record.job_id, None)
                self.admission.finished()
                self._update_load_gauges()
                self.registry.histogram(
                    SECONDS_FAMILY, labels=("priority",)
                ).observe(
                    time.monotonic() - started,
                    priority=record.spec.priority,
                )
                self._done_events[record.job_id].set()
                self._wakeup.set()

    async def _run_one(
        self, loop: asyncio.AbstractEventLoop, record: JobRecord, stop
    ) -> None:
        def on_trial(index: int, bits: str) -> None:
            loop.call_soon_threadsafe(
                self._broadcast,
                record.job_id,
                {
                    "event": "trial",
                    "job_id": record.job_id,
                    "trial": index,
                    "bits": bits,
                },
            )

        future = loop.run_in_executor(
            self._pool,
            lambda: execute_job(
                record,
                self.store,
                shared=self.shared,
                stop=stop,
                on_trial=on_trial,
                chaos=self.chaos,
                retry_base=self.config.retry_base,
                retry_cap=self.config.retry_cap,
            ),
        )
        try:
            if record.spec.timeout is not None:
                payload = await asyncio.wait_for(
                    asyncio.shield(future), record.spec.timeout
                )
            else:
                payload = await future
        except asyncio.TimeoutError:
            stop.set()
            try:
                await future
            except RunInterrupted as exc:
                record.state = "interrupted"
                record.error = (
                    f"deadline of {record.spec.timeout}s exceeded "
                    f"({exc.trials_completed} trials committed)"
                )
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                record.state = "failed"
                record.error = f"{type(exc).__name__}: {exc}"
            self._count_job(record.state)
            self._broadcast(
                record.job_id,
                {
                    "event": "error",
                    "job_id": record.job_id,
                    "state": record.state,
                    "message": record.error,
                },
            )
            return
        except RunInterrupted as exc:
            record.state = "interrupted"
            record.error = (
                f"interrupted by shutdown "
                f"({exc.trials_completed} trials committed)"
            )
            self._count_job("interrupted")
            self._broadcast(
                record.job_id,
                {
                    "event": "error",
                    "job_id": record.job_id,
                    "state": record.state,
                    "message": record.error,
                },
            )
            return
        except Exception as exc:  # noqa: BLE001 - execute_job's terminal raise
            record.state = "failed"
            if record.error is None:
                record.error = f"{type(exc).__name__}: {exc}"
            self._count_job("failed")
            self._broadcast(
                record.job_id,
                {
                    "event": "error",
                    "job_id": record.job_id,
                    "state": record.state,
                    "message": record.error,
                },
            )
            return
        self._count_job("completed")
        if record.degraded:
            self._count_job("degraded")
        trials = self.registry.counter(TRIALS_FAMILY, labels=("kind",))
        trials.inc(record.trials_streamed, kind="streamed")
        journal = payload.get("journal") or {}
        if journal.get("replayed_trials"):
            trials.inc(journal["replayed_trials"], kind="replayed")
        self._broadcast(
            record.job_id,
            {"event": "done", "job_id": record.job_id, "result": payload},
        )

    # -- streaming ---------------------------------------------------------

    def _broadcast(self, job_id: str, event: Dict[str, Any]) -> None:
        for queue in self._streams.get(job_id, []):
            queue.put_nowait(event)

    def _subscribe(self, job_id: str) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self._streams.setdefault(job_id, []).append(queue)
        return queue

    def _unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        queues = self._streams.get(job_id)
        if queues and queue in queues:
            queues.remove(queue)
            if not queues:
                self._streams.pop(job_id, None)

    # -- connections -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            if line.startswith(b"GET ") or line.startswith(b"HEAD "):
                await self._handle_http(line, reader, writer)
                return
            while line:
                keep_open = await self._handle_request(line, reader, writer)
                if not keep_open:
                    return
                line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; jobs are unaffected
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        # Drain the header block; the scrape dialect ignores it.
        while True:
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        parts = request_line.decode("ascii", "replace").split()
        path = parts[1] if len(parts) > 1 else "/"
        if path.split("?")[0] == "/metrics":
            body = render_serve_metrics(self.registry, shared=self.shared)
            writer.write(http_response(200, body, OPENMETRICS_CONTENT_TYPE))
        else:
            writer.write(
                http_response(404, "not found\n", "text/plain; charset=utf-8")
            )
        await writer.drain()

    async def _handle_request(
        self,
        line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Process one NDJSON request; returns False to close the socket."""
        try:
            payload = decode_line(line)
        except ProtocolError as exc:
            await self._send(writer, error_response("bad_request", str(exc)))
            return True
        op = payload.get("op")
        if op == "ping":
            await self._send(
                writer, ok_response(pong=True, pid=os.getpid())
            )
            return True
        if op == "submit":
            return await self._handle_submit(payload, writer)
        if op == "status":
            record = self.jobs.get(str(payload.get("id")))
            if record is None:
                await self._send(
                    writer, error_response("not_found", "unknown job id")
                )
            else:
                await self._send(writer, ok_response(**record.status()))
            return True
        if op == "result":
            return await self._handle_result(payload, writer)
        if op == "list":
            await self._send(
                writer,
                ok_response(
                    jobs=[
                        self.jobs[job_id].status()
                        for job_id in sorted(self.jobs)
                    ],
                    queue_depth=self.admission.depth(),
                    running=self.admission.running,
                ),
            )
            return True
        if op == "metrics":
            await self._send(
                writer,
                ok_response(
                    metrics=render_serve_metrics(
                        self.registry, shared=self.shared
                    )
                ),
            )
            return True
        if op == "shutdown":
            mode = str(payload.get("mode", "drain"))
            try:
                self.request_shutdown(mode)
            except ValueError as exc:
                await self._send(
                    writer, error_response("bad_request", str(exc))
                )
                return True
            await self._send(writer, ok_response(shutting_down=True, mode=mode))
            return False
        await self._send(
            writer, error_response("bad_request", f"unknown op {op!r}")
        )
        return True

    async def _handle_submit(
        self, payload: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        if self._closing:
            await self._send(
                writer,
                error_response(
                    "shutting_down",
                    "server is draining and admits no new jobs",
                ),
            )
            return True
        try:
            spec = JobSpec.from_dict(payload.get("spec") or {})
        except (ValueError, TypeError) as exc:
            await self._send(writer, error_response("bad_request", str(exc)))
            return True
        record = self.store.admit(spec)
        try:
            position = self.admission.submit(record)
        except QueueFull as exc:
            # The spec directory stays on disk but holds no journal and
            # no terminal file; mark it rejected so recovery skips it.
            self.store.commit_error(
                record.job_id,
                {
                    "job_id": record.job_id,
                    "message": "rejected: queue full",
                    "attempts": 0,
                },
            )
            self._count_job("rejected")
            await self._send(
                writer,
                error_response(
                    "queue_full", str(exc), retry_after=exc.retry_after
                ),
            )
            return True
        self.jobs[record.job_id] = record
        self._done_events[record.job_id] = asyncio.Event()
        self._count_job("accepted")
        self._update_load_gauges()
        stream = bool(payload.get("stream"))
        queue = self._subscribe(record.job_id) if stream else None
        assert self._wakeup is not None
        self._wakeup.set()
        await self._send(
            writer,
            ok_response(
                job_id=record.job_id,
                position=position,
                queue_depth=self.admission.depth(),
                stream=stream,
            ),
        )
        if queue is None:
            return True
        try:
            while True:
                event = await queue.get()
                await self._send(writer, event)
                if event.get("event") in ("done", "error"):
                    return False
        except (ConnectionError, OSError):
            # Client disconnected mid-stream: drop the subscription; the
            # job keeps executing and its result stays fetchable.
            return False
        finally:
            self._unsubscribe(record.job_id, queue)

    async def _handle_result(
        self, payload: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        job_id = str(payload.get("id"))
        record = self.jobs.get(job_id)
        if record is None:
            await self._send(
                writer, error_response("not_found", "unknown job id")
            )
            return True
        if bool(payload.get("wait")) and record.state in ("queued", "running"):
            await self._done_events[job_id].wait()
        if record.state == "done":
            result = record.result or self.store.load_result(job_id)
            await self._send(
                writer, ok_response(ready=True, state="done", result=result)
            )
        elif record.state in ("failed", "interrupted"):
            await self._send(
                writer,
                ok_response(
                    ready=True, state=record.state, message=record.error
                ),
            )
        else:
            await self._send(
                writer, ok_response(ready=False, state=record.state)
            )
        return True

    async def _send(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        writer.write(encode_message(payload))
        await writer.drain()


async def _serve_async(config: ServeConfig) -> None:
    server = JobServer(config)
    await server.start()
    await server.serve_forever()


def run_server(config: ServeConfig) -> None:
    """Blocking entry point for the ``repro serve`` CLI."""
    asyncio.run(_serve_async(config))
