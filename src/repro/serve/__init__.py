"""repro.serve — the crash-safe simulation service tier.

A long-lived asyncio job server over the existing engines: jobs arrive
as line-delimited JSON (circuit + noise + trials), pass a bounded
two-class admission queue (explicit 429-style backpressure with
``retry_after``), execute through the journaled/retried/degradable
:func:`~repro.serve.jobs.execute_job` core, and share prefix states
*across jobs* through one :class:`~repro.core.shared.SharedPrefixStore`
— bit-identically to isolated runs, with the saving reported as
``ops_shared``.  Every accepted job is committed to the state directory
before execution, so a kill -9'd server resumes all in-flight jobs from
their run journals with zero recomputation of committed trials.

See ``docs/architecture.md`` §17 for the full design.
"""

from .admission import AdmissionController, QueueFull
from .client import ServeClient, ServeError
from .jobs import (
    JOB_STATES,
    PRIORITIES,
    JobRecord,
    JobSpec,
    JobStore,
    execute_job,
    resolve_circuit,
    resolve_noise,
)
from .protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPENMETRICS_CONTENT_TYPE,
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
    http_response,
    ok_response,
)
from .registry import build_serve_registry, render_serve_metrics
from .server import JobServer, ServeConfig, run_server

__all__ = [
    "AdmissionController",
    "ERROR_CODES",
    "JOB_STATES",
    "JobRecord",
    "JobServer",
    "JobSpec",
    "JobStore",
    "MAX_LINE_BYTES",
    "OPENMETRICS_CONTENT_TYPE",
    "PRIORITIES",
    "ProtocolError",
    "QueueFull",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "build_serve_registry",
    "decode_line",
    "encode_message",
    "error_response",
    "execute_job",
    "http_response",
    "ok_response",
    "render_serve_metrics",
    "resolve_circuit",
    "resolve_noise",
    "run_server",
]
