"""The service tier's metric families, exposed over ``GET /metrics``.

Builds on the PR 8 observatory: a :class:`~repro.obs.metrics.
MetricRegistry` holds the serving totals and the existing OpenMetrics
renderer/validator pair emits them — the scrape body is exactly what
:func:`repro.obs.metrics.validate_openmetrics` accepts, which the serve
tests assert on a live endpoint.

Families:

``repro_serve_jobs`` (counter, label ``state``)
    Admission and terminal transitions: ``accepted``, ``rejected``
    (backpressure 429s), ``completed``, ``failed``, ``interrupted``,
    ``recovered`` (re-admitted after a crash), ``degraded`` (fork pool
    abandoned for the inline engine).
``repro_serve_trials`` (counter, label ``kind``)
    ``streamed`` per-trial results delivered to clients and ``replayed``
    trials recovered from journals at zero recompute.
``repro_serve_queue_depth`` (gauge, label ``class``)
    Current admission backlog per priority class (peak is retained).
``repro_serve_running`` (gauge)
    Jobs currently occupying an executor.
``repro_serve_shared`` (gauge, label ``stat``)
    Cross-job prefix store counters (hits, publishes, ops_saved, ...),
    refreshed from :meth:`~repro.core.shared.SharedPrefixStore.stats`
    at scrape time.
``repro_serve_job_seconds`` (histogram, label ``priority``)
    Wall-clock of each completed job execution.
"""

from __future__ import annotations

from ..obs.metrics import (
    MetricRegistry,
    render_openmetrics,
    validate_openmetrics,
)

__all__ = ["build_serve_registry", "render_serve_metrics"]

JOBS_FAMILY = "repro_serve_jobs"
TRIALS_FAMILY = "repro_serve_trials"
QUEUE_FAMILY = "repro_serve_queue_depth"
RUNNING_FAMILY = "repro_serve_running"
SHARED_FAMILY = "repro_serve_shared"
SECONDS_FAMILY = "repro_serve_job_seconds"


def build_serve_registry() -> MetricRegistry:
    """A registry with every serve family pre-declared (zero-valued)."""
    registry = MetricRegistry()
    registry.counter(
        JOBS_FAMILY,
        "Job admission and terminal-state transitions.",
        labels=("state",),
    )
    registry.counter(
        TRIALS_FAMILY,
        "Per-trial results streamed to clients or replayed from journals.",
        labels=("kind",),
    )
    registry.gauge(
        QUEUE_FAMILY,
        "Admission backlog per priority class.",
        labels=("cls",),
    )
    registry.gauge(RUNNING_FAMILY, "Jobs currently executing.")
    registry.gauge(
        SHARED_FAMILY,
        "Cross-job shared prefix store counters.",
        labels=("stat",),
    )
    registry.histogram(
        SECONDS_FAMILY,
        "Wall-clock seconds per completed job execution.",
        labels=("priority",),
    )
    return registry


def render_serve_metrics(registry: MetricRegistry, shared=None) -> str:
    """Validated OpenMetrics text for a scrape.

    Refreshes the shared-store gauges first (they mirror live store
    state rather than accumulating), then renders and schema-checks the
    exposition — an invalid document is an exporter bug and raises
    instead of being served.
    """
    if shared is not None:
        stats = shared.stats()
        gauge = registry.gauge(
            SHARED_FAMILY,
            "Cross-job shared prefix store counters.",
            labels=("stat",),
        )
        for stat in (
            "entries",
            "resident_entries",
            "resident_bytes",
            "hits",
            "misses",
            "publishes",
            "spills",
            "spill_loads",
            "drops",
            "ops_saved",
        ):
            gauge.set(float(getattr(stats, stat)), stat=stat)
    text = render_openmetrics(registry.snapshot())
    problems = validate_openmetrics(text)
    if problems:
        raise ValueError(
            "serve registry rendered invalid OpenMetrics: "
            + "; ".join(problems)
        )
    return text
