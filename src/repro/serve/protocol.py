"""Wire protocol for the simulation service: NDJSON requests, HTTP scrape.

The server speaks two dialects over the same listener, disambiguated by
the first bytes of the connection:

* **NDJSON** — each request is one JSON object on one line; each
  response is one JSON object on one line.  A streaming submit
  additionally interleaves ``{"event": "trial", ...}`` lines before the
  terminal ``{"event": "done"|"error", ...}`` line.  Responses always
  carry ``ok`` (bool); failures add ``error`` (a stable code from
  :data:`ERROR_CODES`) and ``status`` (the HTTP-ish numeric class, e.g.
  ``429`` for backpressure rejections, which also carry a client-visible
  ``retry_after`` in seconds).
* **HTTP/1.0 GET** — a plain ``GET /metrics`` request (what a Prometheus
  scraper or ``curl`` sends) receives an OpenMetrics exposition.  Any
  other path is a 404.  This keeps the scrape endpoint on the same port
  as the job API without an HTTP framework dependency.

Lines are capped at :data:`MAX_LINE_BYTES`; oversized or non-JSON input
raises :class:`ProtocolError`, which the server reports as a ``400``
without dropping the connection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "MAX_LINE_BYTES",
    "OPENMETRICS_CONTENT_TYPE",
    "ERROR_CODES",
    "ProtocolError",
    "encode_message",
    "decode_line",
    "ok_response",
    "error_response",
    "http_response",
]

#: Hard cap on one NDJSON line (requests and responses).  Large enough
#: for a multi-thousand-gate QASM body, small enough to bound memory per
#: connection.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Content type the OpenMetrics specification mandates for scrapes.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Stable error codes with their HTTP-ish status classes.  Clients key
#: retry behaviour off the code, not the human-readable message.
ERROR_CODES: Dict[str, int] = {
    "bad_request": 400,        # malformed JSON / unknown op / bad spec
    "not_found": 404,          # unknown job id
    "queue_full": 429,         # backpressure rejection; carries retry_after
    "shutting_down": 503,      # server is draining; resubmit elsewhere/later
    "internal": 500,           # unexpected server-side failure
}


class ProtocolError(ValueError):
    """A request line that cannot be parsed into a valid message."""


def encode_message(payload: Mapping[str, Any]) -> bytes:
    """One message -> one newline-terminated UTF-8 JSON line."""
    line = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line cap"
        )
    return data


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one request line; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte cap"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def ok_response(**fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True}
    response.update(fields)
    return response


def error_response(
    code: str, message: str, retry_after: Optional[float] = None, **fields: Any
) -> Dict[str, Any]:
    """A failure response with its stable code and numeric status."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    response: Dict[str, Any] = {
        "ok": False,
        "error": code,
        "status": ERROR_CODES[code],
        "message": message,
    }
    if retry_after is not None:
        response["retry_after"] = round(float(retry_after), 3)
    response.update(fields)
    return response


_HTTP_REASONS = {200: "OK", 404: "Not Found", 500: "Internal Server Error"}


def http_response(status: int, body: str, content_type: str) -> bytes:
    """A minimal HTTP/1.0 response (the scrape endpoint's dialect)."""
    payload = body.encode("utf-8")
    reason = _HTTP_REASONS.get(status, "OK")
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload
