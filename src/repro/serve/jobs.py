"""Job specifications, the on-disk job store, and the execution core.

This module is the service tier's synchronous heart — everything here
runs without an event loop, so the chaos tests can drive the exact code
path the async server schedules, minus the sockets:

:class:`JobSpec`
    A validated, JSON-round-trippable description of one simulation
    request: circuit (benchmark name or inline QASM), noise model,
    trial count, seed, engine options, priority class and deadline.
:class:`JobStore`
    The crash-safe state directory.  Every accepted job gets
    ``jobs/<id>/spec.json`` written **atomically before execution**, its
    run journal lives beside it, and the terminal ``result.json`` /
    ``error.json`` is the commit point.  :meth:`JobStore.recover` scans
    the directory on startup and returns every job that was accepted but
    never reached a terminal file — exactly the set a kill -9'd server
    must resume.
:func:`execute_job`
    Runs one job through :class:`~repro.core.runner.NoisySimulator` with
    the journal tee, the cross-job :class:`~repro.core.shared.
    SharedPrefixStore`, a cooperative ``stop`` event and the incremental
    ``on_trial`` stream wired in; applies the service retry discipline
    (capped exponential backoff, graceful degradation to the inline
    engine when the fork pool keeps failing).

Job identity is ``j<seq:06d>-<digest8>``: the monotone sequence number
keeps concurrent submissions of *identical* specs in distinct journal
directories (no fingerprint collision can alias two live jobs), while
the spec digest makes directories self-describing.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..circuits.qasm import parse_qasm
from ..core.atomicio import atomic_write_json
from ..core.executor import RunInterrupted
from ..core.runner import NoisySimulator, SimulationResult
from ..noise.devices import artificial_model, ibm_yorktown
from ..noise.model import NoiseModel

__all__ = [
    "PRIORITIES",
    "JOB_STATES",
    "JobSpec",
    "JobRecord",
    "JobStore",
    "execute_job",
    "resolve_circuit",
    "resolve_noise",
]

#: Admission classes, highest priority first.
PRIORITIES: Tuple[str, ...] = ("interactive", "batch")

#: Lifecycle states a job record can be in.  ``interrupted`` means a
#: stop/deadline ended the run after a committed journal tail — the job
#: is resumable, not lost.
JOB_STATES: Tuple[str, ...] = (
    "queued",
    "running",
    "done",
    "failed",
    "interrupted",
)

_STATEVECTOR_FAMILY = ("statevector", "statevector-interpreted")


def resolve_circuit(payload: Dict[str, Any]):
    """Build the job's circuit from its wire form.

    ``{"benchmark": name}`` resolves through the compiled Table I suite;
    ``{"qasm": text}`` parses an inline OpenQASM 2.0 body.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"circuit must be an object, got {type(payload).__name__}"
        )
    if "benchmark" in payload:
        from ..bench import build_compiled_benchmark

        return build_compiled_benchmark(str(payload["benchmark"]))
    if "qasm" in payload:
        return parse_qasm(str(payload["qasm"]))
    raise ValueError(
        "circuit needs a 'benchmark' name or an inline 'qasm' body, "
        f"got keys {sorted(payload)}"
    )


def resolve_noise(payload: Any) -> NoiseModel:
    """Build the job's noise model from its wire form.

    A string names a built-in device model (``"ibm_yorktown"``); an
    object is either ``{"artificial": rate}`` or ``{"model": ...}`` with
    a full :meth:`~repro.noise.model.NoiseModel.to_dict` payload.
    """
    if isinstance(payload, str):
        if payload == "ibm_yorktown":
            return ibm_yorktown()
        raise ValueError(f"unknown named noise model {payload!r}")
    if isinstance(payload, dict):
        if "artificial" in payload:
            return artificial_model(float(payload["artificial"]))
        if "model" in payload:
            return NoiseModel.from_dict(payload["model"])
    raise ValueError(
        "noise must be a model name, {'artificial': rate} or "
        "{'model': {...}}"
    )


class JobSpec:
    """One validated simulation request, canonically serializable."""

    def __init__(
        self,
        circuit: Dict[str, Any],
        noise: Any,
        trials: int,
        seed: int,
        mode: str = "optimized",
        backend: str = "statevector",
        workers: int = 0,
        batch_size: int = 0,
        hybrid: bool = False,
        max_cache_bytes: Optional[int] = None,
        priority: str = "interactive",
        timeout: Optional[float] = None,
        retries: int = 1,
        journal: bool = True,
        share: bool = True,
        label: str = "",
    ) -> None:
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.circuit = dict(circuit)
        self.noise = noise
        self.trials = int(trials)
        self.seed = int(seed)
        self.mode = mode
        self.backend = backend
        self.workers = int(workers)
        self.batch_size = int(batch_size)
        self.hybrid = bool(hybrid)
        self.max_cache_bytes = max_cache_bytes
        self.priority = priority
        self.timeout = timeout
        self.retries = int(retries)
        self.journal = bool(journal)
        self.share = bool(share)
        self.label = str(label)

    # -- wire form ---------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ValueError(
                f"job spec must be an object, got {type(payload).__name__}"
            )
        known = {
            "circuit", "noise", "trials", "seed", "mode", "backend",
            "workers", "batch_size", "hybrid", "max_cache_bytes",
            "priority", "timeout", "retries", "journal", "share", "label",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown job spec fields {unknown}")
        for field in ("circuit", "noise", "trials", "seed"):
            if field not in payload:
                raise ValueError(f"job spec is missing required {field!r}")
        spec = cls(**payload)
        # Fail malformed circuits/noise at admission, not mid-execution.
        resolve_circuit(spec.circuit)
        resolve_noise(spec.noise)
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "noise": self.noise,
            "trials": self.trials,
            "seed": self.seed,
            "mode": self.mode,
            "backend": self.backend,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "hybrid": self.hybrid,
            "max_cache_bytes": self.max_cache_bytes,
            "priority": self.priority,
            "timeout": self.timeout,
            "retries": self.retries,
            "journal": self.journal,
            "share": self.share,
            "label": self.label,
        }

    def digest(self) -> str:
        """8-hex-digit content digest of the canonical spec form."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return f"{zlib.crc32(canonical.encode('utf-8')) & 0xFFFFFFFF:08x}"

    # -- engine eligibility ------------------------------------------------

    @property
    def statevector_family(self) -> bool:
        return self.backend in _STATEVECTOR_FAMILY

    @property
    def journal_eligible(self) -> bool:
        """Journaling needs the optimized trial-ordered statevector path."""
        return (
            self.journal
            and self.mode == "optimized"
            and self.statevector_family
            and not self.batch_size
            and not self.hybrid
        )

    @property
    def share_eligible(self) -> bool:
        """Cross-job sharing needs the serial per-trial provenance walk."""
        return (
            self.share
            and self.mode == "optimized"
            and self.statevector_family
            and not self.workers
            and not self.batch_size
            and not self.hybrid
        )

    def build_simulator(self) -> NoisySimulator:
        circuit = resolve_circuit(self.circuit)
        noise = resolve_noise(self.noise)
        return NoisySimulator(circuit, noise, seed=self.seed)

    def __repr__(self) -> str:
        return (
            f"JobSpec(label={self.label!r}, trials={self.trials}, "
            f"priority={self.priority!r}, workers={self.workers})"
        )


class JobRecord:
    """Runtime view of one job: spec + lifecycle state + counters."""

    def __init__(self, job_id: str, seq: int, spec: JobSpec) -> None:
        self.job_id = job_id
        self.seq = seq
        self.spec = spec
        self.state = "queued"
        self.error: Optional[str] = None
        self.attempts = 0
        self.degraded = False
        self.recovered = False
        self.trials_streamed = 0
        self.result: Optional[Dict[str, Any]] = None

    def status(self) -> Dict[str, Any]:
        """The wire-form status object clients poll."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "label": self.spec.label,
            "priority": self.spec.priority,
            "trials": self.spec.trials,
            "trials_streamed": self.trials_streamed,
            "attempts": self.attempts,
            "degraded": self.degraded,
            "recovered": self.recovered,
            "error": self.error,
        }


class JobStore:
    """The service's crash-safe state directory.

    Layout::

        <root>/endpoint.json          # written by the server after bind
        <root>/jobs/<job_id>/spec.json
        <root>/jobs/<job_id>/run.journal
        <root>/jobs/<job_id>/result.json   (terminal: success)
        <root>/jobs/<job_id>/error.json    (terminal: permanent failure)

    ``spec.json`` is written atomically at admission, strictly before
    any execution; a job directory with a spec but no terminal file is
    by definition in-flight and must be resumed after a crash.
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self.jobs_root = os.path.join(self.root, "jobs")
        os.makedirs(self.jobs_root, exist_ok=True)
        self._next_seq = self._scan_next_seq()

    def _scan_next_seq(self) -> int:
        highest = -1
        for name in os.listdir(self.jobs_root):
            if name.startswith("j") and "-" in name:
                try:
                    highest = max(highest, int(name[1:].split("-", 1)[0]))
                except ValueError:
                    continue
        return highest + 1

    # -- paths -------------------------------------------------------------

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_root, job_id)

    def spec_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "spec.json")

    def journal_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "run.journal")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "result.json")

    def error_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "error.json")

    def endpoint_path(self) -> str:
        return os.path.join(self.root, "endpoint.json")

    # -- admission / terminal commits -------------------------------------

    def admit(self, spec: JobSpec) -> JobRecord:
        """Assign an id and journal the acceptance before execution."""
        seq = self._next_seq
        self._next_seq += 1
        job_id = f"j{seq:06d}-{spec.digest()}"
        os.makedirs(self.job_dir(job_id), exist_ok=True)
        atomic_write_json(
            self.spec_path(job_id),
            {"job_id": job_id, "seq": seq, "spec": spec.to_dict()},
        )
        return JobRecord(job_id, seq, spec)

    def commit_result(self, job_id: str, payload: Dict[str, Any]) -> None:
        atomic_write_json(self.result_path(job_id), payload)

    def commit_error(self, job_id: str, payload: Dict[str, Any]) -> None:
        atomic_write_json(self.error_path(job_id), payload)

    def load_result(self, job_id: str) -> Optional[Dict[str, Any]]:
        path = self.result_path(job_id)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def load_error(self, job_id: str) -> Optional[Dict[str, Any]]:
        path = self.error_path(job_id)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # -- crash recovery ----------------------------------------------------

    def recover(self) -> Tuple[List[JobRecord], List[JobRecord]]:
        """Scan the directory into (in-flight, terminal) job records.

        In-flight records (spec committed, no terminal file) come back in
        admission order with ``recovered=True`` so the server re-enqueues
        them; their journals make the re-run resume instead of recompute.
        """
        pending: List[JobRecord] = []
        finished: List[JobRecord] = []
        for name in sorted(os.listdir(self.jobs_root)):
            spec_path = self.spec_path(name)
            if not os.path.exists(spec_path):
                continue
            try:
                with open(spec_path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                spec = JobSpec.from_dict(payload["spec"])
                seq = int(payload["seq"])
            except (ValueError, KeyError, json.JSONDecodeError):
                continue  # torn spec: never admitted, nothing to resume
            record = JobRecord(name, seq, spec)
            result = self.load_result(name)
            error = self.load_error(name)
            if result is not None:
                record.state = "done"
                record.result = result
                finished.append(record)
            elif error is not None:
                record.state = "failed"
                record.error = str(error.get("message", "failed"))
                finished.append(record)
            else:
                record.recovered = True
                pending.append(record)
        return pending, finished


# ---------------------------------------------------------------------------
# Execution core
# ---------------------------------------------------------------------------


def _result_payload(
    record: JobRecord, result: SimulationResult
) -> Dict[str, Any]:
    metrics = result.metrics
    journal = None
    if result.journal is not None:
        journal = {
            "resumed": result.journal.resumed,
            "replayed_finishes": result.journal.replayed_finishes,
            "replayed_trials": result.journal.replayed_trials,
            "recorded_finishes": result.journal.recorded_finishes,
            "truncated_tail": result.journal.truncated_tail,
        }
    return {
        "job_id": record.job_id,
        "label": record.spec.label,
        "counts": dict(result.counts),
        "num_trials": metrics.num_trials,
        "ops_applied": metrics.optimized_ops,
        "ops_shared": result.ops_shared,
        "baseline_ops": metrics.baseline_ops,
        "peak_msv": metrics.peak_msv,
        "journal": journal,
        "attempts": record.attempts,
        "degraded": record.degraded,
    }


def execute_job(
    record: JobRecord,
    store: JobStore,
    shared=None,
    stop=None,
    on_trial: Optional[Callable[[int, str], None]] = None,
    chaos=None,
    retry_base: float = 0.05,
    retry_cap: float = 1.0,
    sleep: Callable[[float], None] = time.sleep,
) -> Dict[str, Any]:
    """Run one admitted job; returns the terminal result payload.

    Retry discipline: up to ``spec.retries`` re-attempts with capped
    exponential backoff (``min(retry_cap, retry_base * 2**attempt)``);
    if the *last* allowed attempt still fails and the spec asked for
    fork-pool workers, one final attempt degrades gracefully to the
    inline serial engine (``workers=0``) — the fork pool being broken
    must not take correct-but-slower service down with it.

    ``RunInterrupted`` (stop event / deadline) and ``BaseException``
    chaos kills propagate immediately — both leave the committed journal
    tail intact, which is the resume contract the chaos suite proves.
    The result payload is committed to the store before returning.
    """
    spec = record.spec
    journal = store.journal_path(record.job_id) if spec.journal_eligible else None
    use_shared = shared if spec.share_eligible else None

    def tracked_on_trial(index: int, bits: str) -> None:
        if chaos is not None:
            chaos.on_trial(record, index)
        record.trials_streamed += 1
        if on_trial is not None:
            on_trial(index, bits)

    attempts_allowed = spec.retries + 1
    last_error: Optional[BaseException] = None
    for attempt in range(attempts_allowed + 1):
        degrade = attempt >= attempts_allowed
        workers = 0 if degrade else spec.workers
        if degrade:
            if not spec.workers:
                break  # no pool to degrade from; the retries were it
            record.degraded = True
        record.attempts += 1
        try:
            simulator = spec.build_simulator()
            result = simulator.run(
                num_trials=spec.trials,
                mode=spec.mode,
                backend=spec.backend,
                workers=workers,
                batch_size=spec.batch_size,
                hybrid=spec.hybrid,
                max_cache_bytes=spec.max_cache_bytes,
                journal=journal,
                shared=use_shared,
                stop=stop,
                on_trial=tracked_on_trial,
            )
        except RunInterrupted:
            raise
        except Exception as exc:  # noqa: BLE001 - service retry boundary
            last_error = exc
            if attempt + 1 < attempts_allowed:
                sleep(min(retry_cap, retry_base * (2 ** attempt)))
            continue
        payload = _result_payload(record, result)
        store.commit_result(record.job_id, payload)
        record.result = payload
        record.state = "done"
        return payload
    record.state = "failed"
    record.error = f"{type(last_error).__name__}: {last_error}"
    store.commit_error(
        record.job_id,
        {
            "job_id": record.job_id,
            "message": record.error,
            "attempts": record.attempts,
        },
    )
    raise RuntimeError(
        f"job {record.job_id} failed after {record.attempts} attempts: "
        f"{record.error}"
    ) from last_error
