"""Admission control: a bounded two-class priority queue with 429s.

The service never buffers unbounded work.  :class:`AdmissionController`
holds at most ``max_pending`` jobs (queued + running); a submit beyond
that is rejected *immediately* with :class:`QueueFull`, which carries a
client-visible ``retry_after`` estimate — explicit backpressure instead
of silent latency.  Within the bound, ``interactive`` jobs always pop
before ``batch`` jobs, FIFO within each class, so a storm of bulk
submissions cannot starve interactive work.

The controller is plain synchronous state under a lock: the asyncio
server calls it from its single loop thread, and the chaos tests call
it directly.
"""

from __future__ import annotations

import heapq
import threading
from typing import Dict, List, Optional, Tuple

from .jobs import PRIORITIES, JobRecord

__all__ = ["QueueFull", "AdmissionController"]


class QueueFull(RuntimeError):
    """Backpressure rejection; ``retry_after`` is seconds to back off."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionController:
    """Bounded priority admission for the job server.

    Parameters
    ----------
    max_pending:
        Hard cap on queued-plus-running jobs.  The cap counts running
        jobs too: a server that is saturated executing must shed load at
        the door, not stack an ever-deeper queue behind the executors.
    service_estimate:
        Seconds one queued job is assumed to occupy an executor, used
        only for the ``retry_after`` hint (scheduling itself is
        work-conserving and ignores it).
    """

    def __init__(
        self,
        max_pending: int = 16,
        exec_threads: int = 1,
        service_estimate: float = 0.5,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self.exec_threads = max(1, exec_threads)
        self.service_estimate = service_estimate
        self._lock = threading.Lock()
        self._heap: List[Tuple[int, int, JobRecord]] = []
        self._tick = 0
        self._running = 0
        self._rank: Dict[str, int] = {
            name: position for position, name in enumerate(PRIORITIES)
        }

    # -- queries -----------------------------------------------------------

    def depth(self, priority: Optional[str] = None) -> int:
        with self._lock:
            if priority is None:
                return len(self._heap)
            rank = self._rank[priority]
            return sum(1 for item in self._heap if item[0] == rank)

    @property
    def running(self) -> int:
        with self._lock:
            return self._running

    def load(self) -> int:
        """Queued + running — the quantity the bound applies to."""
        with self._lock:
            return len(self._heap) + self._running

    def retry_after(self, backlog: int) -> float:
        """Deterministic back-off hint for a rejected submit."""
        waves = (backlog + self.exec_threads) / self.exec_threads
        return round(max(0.1, waves * self.service_estimate), 3)

    # -- admission ---------------------------------------------------------

    def submit(self, record: JobRecord, force: bool = False) -> int:
        """Admit a job or raise :class:`QueueFull`; returns queue position.

        ``force=True`` bypasses the bound — used only for crash-recovered
        jobs, whose admission was already journaled before the crash and
        must not be re-litigated against the current backlog.
        """
        with self._lock:
            backlog = len(self._heap) + self._running
            if not force and backlog >= self.max_pending:
                raise QueueFull(
                    f"queue is full ({backlog}/{self.max_pending} pending)",
                    retry_after=self.retry_after(backlog),
                )
            rank = self._rank[record.spec.priority]
            heapq.heappush(self._heap, (rank, self._tick, record))
            self._tick += 1
            return len(self._heap)

    def pop(self) -> Optional[JobRecord]:
        """Next job by (class, FIFO) order; marks it running."""
        with self._lock:
            if not self._heap:
                return None
            _, _, record = heapq.heappop(self._heap)
            self._running += 1
            return record

    def finished(self) -> None:
        """A popped job reached a terminal state; frees its load slot."""
        with self._lock:
            if self._running <= 0:
                raise RuntimeError("finished() without a matching pop()")
            self._running -= 1
