"""A small blocking client for the job server.

One socket per request (the NDJSON dialect is stateless except for
streams), discovery through the server's ``endpoint.json``, and typed
failures: a rejected request raises :class:`ServeError` carrying the
stable error code and, for backpressure rejections, the server's
``retry_after`` hint.  :meth:`ServeClient.submit_with_backoff` is the
reference retry loop — capped exponential backoff seeded by that hint.

Example::

    from repro.serve import ServeClient

    client = ServeClient.from_state_dir("/var/lib/repro-serve")
    response = client.submit({
        "circuit": {"benchmark": "bv4"},
        "noise": "ibm_yorktown",
        "trials": 256,
        "seed": 7,
    })
    result = client.wait(response["job_id"])
    print(result["result"]["counts"])
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Any, Callable, Dict, List, Optional

from .protocol import MAX_LINE_BYTES, decode_line, encode_message

__all__ = ["ServeError", "ServeClient"]


class ServeError(RuntimeError):
    """A server-reported failure; ``code``/``status`` are the wire values."""

    def __init__(
        self,
        message: str,
        code: str = "internal",
        status: int = 500,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.status = status
        self.retry_after = retry_after

    @classmethod
    def from_response(cls, response: Dict[str, Any]) -> "ServeError":
        return cls(
            str(response.get("message", "request failed")),
            code=str(response.get("error", "internal")),
            status=int(response.get("status", 500)),
            retry_after=response.get("retry_after"),
        )


class _LineSocket:
    """A connected socket with buffered line reads."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""

    def send(self, payload: Dict[str, Any]) -> None:
        self.sock.sendall(encode_message(payload))

    def read_line(self) -> Dict[str, Any]:
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ServeError("server response exceeds the line cap")
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ServeError("server closed the connection mid-response")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return decode_line(line)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class ServeClient:
    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_state_dir(
        cls, state_dir: str, timeout: float = 30.0
    ) -> "ServeClient":
        """Discover a server through its published ``endpoint.json``."""
        path = os.path.join(os.fspath(state_dir), "endpoint.json")
        with open(path, "r", encoding="utf-8") as handle:
            endpoint = json.load(handle)
        return cls(
            host=endpoint["host"], port=int(endpoint["port"]), timeout=timeout
        )

    # -- plumbing ----------------------------------------------------------

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        channel = _LineSocket(self.host, self.port, self.timeout)
        try:
            channel.send(payload)
            response = channel.read_line()
        finally:
            channel.close()
        if not response.get("ok", False):
            raise ServeError.from_response(response)
        return response

    # -- API ---------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._request({"op": "ping"})

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a job; returns the acceptance (``job_id``, position).

        Raises :class:`ServeError` with ``code == "queue_full"`` and a
        ``retry_after`` hint when the server sheds load.
        """
        return self._request({"op": "submit", "spec": spec})

    def submit_with_backoff(
        self,
        spec: Dict[str, Any],
        max_attempts: int = 8,
        backoff_cap: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Dict[str, Any]:
        """Submit, honouring 429 backpressure with capped backoff.

        The first delay is the server's ``retry_after`` hint; subsequent
        delays double it, capped at ``backoff_cap``.
        """
        delay: Optional[float] = None
        for attempt in range(max_attempts):
            try:
                return self.submit(spec)
            except ServeError as exc:
                if exc.code != "queue_full" or attempt + 1 == max_attempts:
                    raise
                if delay is None:
                    delay = float(exc.retry_after or 0.1)
                else:
                    delay = min(backoff_cap, delay * 2)
                sleep(delay)
        raise ServeError("submit retries exhausted", code="queue_full")

    def submit_streaming(
        self,
        spec: Dict[str, Any],
        on_trial: Optional[Callable[[int, str], None]] = None,
    ) -> Dict[str, Any]:
        """Submit and consume the per-trial stream on one connection.

        ``on_trial(trial_index, bits)`` fires with each trial's
        measured bitstring as it streams (including journal replays
        after a server resume); returns the terminal result payload, or
        raises :class:`ServeError` if the job ends in a non-``done``
        state.
        """
        channel = _LineSocket(self.host, self.port, self.timeout)
        try:
            channel.send({"op": "submit", "spec": spec, "stream": True})
            accepted = channel.read_line()
            if not accepted.get("ok", False):
                raise ServeError.from_response(accepted)
            while True:
                event = channel.read_line()
                kind = event.get("event")
                if kind == "trial":
                    if on_trial is not None:
                        on_trial(int(event["trial"]), str(event["bits"]))
                elif kind == "done":
                    return event["result"]
                elif kind == "error":
                    raise ServeError(
                        str(event.get("message", "job failed")),
                        code="internal",
                        status=500,
                    )
        finally:
            channel.close()

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "status", "id": job_id})

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "result", "id": job_id})

    def wait(self, job_id: str) -> Dict[str, Any]:
        """Block server-side until the job is terminal, then fetch it."""
        return self._request({"op": "result", "id": job_id, "wait": True})

    def list_jobs(self) -> List[Dict[str, Any]]:
        return self._request({"op": "list"})["jobs"]

    def metrics(self) -> str:
        """The OpenMetrics exposition, over the NDJSON dialect."""
        return self._request({"op": "metrics"})["metrics"]

    def metrics_http(self) -> str:
        """The OpenMetrics exposition, over a real HTTP GET scrape."""
        channel = _LineSocket(self.host, self.port, self.timeout)
        try:
            channel.sock.sendall(
                b"GET /metrics HTTP/1.0\r\nHost: repro-serve\r\n\r\n"
            )
            chunks = []
            while True:
                chunk = channel.sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        finally:
            channel.close()
        raw = b"".join(chunks)
        head, _, body = raw.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("ascii", "replace")
        if " 200 " not in status_line + " ":
            raise ServeError(f"scrape failed: {status_line}")
        return body.decode("utf-8")

    def shutdown(self, mode: str = "drain") -> Dict[str, Any]:
        return self._request({"op": "shutdown", "mode": mode})
