"""Test utilities: random circuit/trial generation and comparison helpers.

Shared by the repository's own test-suite and useful for downstream users
writing property tests against the simulator.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .circuits.circuit import QuantumCircuit
from .circuits.layers import LayeredCircuit
from .core.events import ErrorEvent, Trial, make_trial

__all__ = [
    "random_circuit",
    "random_trials",
    "assert_states_close",
    "GATE_POOL_1Q",
    "GATE_POOL_2Q",
]

#: Single-qubit gate names the random generator draws from.
GATE_POOL_1Q: Tuple[str, ...] = ("h", "x", "y", "z", "s", "sdg", "t", "tdg")
#: Two-qubit gate names the random generator draws from.
GATE_POOL_2Q: Tuple[str, ...] = ("cx", "cz", "swap")


def random_circuit(
    num_qubits: int,
    num_gates: int,
    rng: np.random.Generator,
    two_qubit_fraction: float = 0.3,
    measured: bool = True,
    parametric: bool = True,
) -> QuantumCircuit:
    """A random circuit over the standard gate library.

    Gates are drawn uniformly from the pools; two-qubit gates appear with
    probability ``two_qubit_fraction`` (when the circuit has 2+ qubits).
    """
    circuit = QuantumCircuit(num_qubits, name="random")
    for _ in range(num_gates):
        use_two = num_qubits >= 2 and rng.random() < two_qubit_fraction
        if use_two:
            name = GATE_POOL_2Q[int(rng.integers(len(GATE_POOL_2Q)))]
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.gate(name, int(a), int(b))
        elif parametric and rng.random() < 0.3:
            theta = float(rng.uniform(0, 2 * np.pi))
            name = ("rx", "ry", "rz")[int(rng.integers(3))]
            circuit.gate(name, int(rng.integers(num_qubits)), params=(theta,))
        else:
            name = GATE_POOL_1Q[int(rng.integers(len(GATE_POOL_1Q)))]
            circuit.gate(name, int(rng.integers(num_qubits)))
    if measured:
        circuit.measure_all()
    return circuit


def random_trials(
    layered: LayeredCircuit,
    num_trials: int,
    rng: np.random.Generator,
    max_errors: int = 4,
) -> List[Trial]:
    """Random trials with uniformly placed errors (model-free).

    Unlike :func:`repro.noise.sampling.sample_trials` this does not need a
    noise model — it places 0..``max_errors`` Pauli events uniformly over
    (layer, qubit) positions, which is what the reordering/property tests
    want: adversarial trial sets, not physically plausible ones.
    """
    if layered.num_layers == 0:
        raise ValueError("cannot place errors in an empty circuit")
    trials: List[Trial] = []
    paulis = ("x", "y", "z")
    for _ in range(num_trials):
        num_errors = int(rng.integers(0, max_errors + 1))
        events = {}
        for _ in range(num_errors):
            layer = int(rng.integers(layered.num_layers))
            qubit = int(rng.integers(layered.num_qubits))
            events[(layer, qubit)] = ErrorEvent(
                layer, qubit, paulis[int(rng.integers(3))]
            )
        trials.append(make_trial(tuple(events.values())))
    return trials


def assert_states_close(state_a, state_b, atol: float = 1e-9) -> None:
    """Raise ``AssertionError`` unless two statevectors match amplitude-wise."""
    vec_a = np.asarray(state_a.vector)
    vec_b = np.asarray(state_b.vector)
    if vec_a.shape != vec_b.shape:
        raise AssertionError(f"shape mismatch: {vec_a.shape} vs {vec_b.shape}")
    worst = float(np.max(np.abs(vec_a - vec_b)))
    if worst > atol:
        raise AssertionError(f"states differ by {worst} (> {atol})")
