"""Test utilities: random circuits/trials, comparisons, fault injection.

Shared by the repository's own test-suite and useful for downstream users
writing property tests against the simulator.  The :class:`ChaosPlan`
fault injector plugs into :func:`repro.core.parallel.run_parallel` via its
``faults=`` hook to script worker crashes, hangs, payload/entry-state
corruption and allocation failures deterministically — the chaos property
tests assert that *every* fault schedule still yields results bit-identical
to the fault-free serial run.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from .circuits.circuit import QuantumCircuit
from .circuits.layers import LayeredCircuit
from .core.events import ErrorEvent, Trial, make_trial
from .core.resilience import WorkerCrash

__all__ = [
    "random_circuit",
    "random_trials",
    "assert_states_close",
    "ChaosPlan",
    "ServerKilled",
    "ServiceChaosPlan",
    "GATE_POOL_1Q",
    "GATE_POOL_2Q",
]

#: Single-qubit gate names the random generator draws from.
GATE_POOL_1Q: Tuple[str, ...] = ("h", "x", "y", "z", "s", "sdg", "t", "tdg")
#: Two-qubit gate names the random generator draws from.
GATE_POOL_2Q: Tuple[str, ...] = ("cx", "cz", "swap")


def random_circuit(
    num_qubits: int,
    num_gates: int,
    rng: np.random.Generator,
    two_qubit_fraction: float = 0.3,
    measured: bool = True,
    parametric: bool = True,
) -> QuantumCircuit:
    """A random circuit over the standard gate library.

    Gates are drawn uniformly from the pools; two-qubit gates appear with
    probability ``two_qubit_fraction`` (when the circuit has 2+ qubits).
    """
    circuit = QuantumCircuit(num_qubits, name="random")
    for _ in range(num_gates):
        use_two = num_qubits >= 2 and rng.random() < two_qubit_fraction
        if use_two:
            name = GATE_POOL_2Q[int(rng.integers(len(GATE_POOL_2Q)))]
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.gate(name, int(a), int(b))
        elif parametric and rng.random() < 0.3:
            theta = float(rng.uniform(0, 2 * np.pi))
            name = ("rx", "ry", "rz")[int(rng.integers(3))]
            circuit.gate(name, int(rng.integers(num_qubits)), params=(theta,))
        else:
            name = GATE_POOL_1Q[int(rng.integers(len(GATE_POOL_1Q)))]
            circuit.gate(name, int(rng.integers(num_qubits)))
    if measured:
        circuit.measure_all()
    return circuit


def random_trials(
    layered: LayeredCircuit,
    num_trials: int,
    rng: np.random.Generator,
    max_errors: int = 4,
) -> List[Trial]:
    """Random trials with uniformly placed errors (model-free).

    Unlike :func:`repro.noise.sampling.sample_trials` this does not need a
    noise model — it places 0..``max_errors`` Pauli events uniformly over
    (layer, qubit) positions, which is what the reordering/property tests
    want: adversarial trial sets, not physically plausible ones.
    """
    if layered.num_layers == 0:
        raise ValueError("cannot place errors in an empty circuit")
    trials: List[Trial] = []
    paulis = ("x", "y", "z")
    for _ in range(num_trials):
        num_errors = int(rng.integers(0, max_errors + 1))
        events = {}
        for _ in range(num_errors):
            layer = int(rng.integers(layered.num_layers))
            qubit = int(rng.integers(layered.num_qubits))
            events[(layer, qubit)] = ErrorEvent(
                layer, qubit, paulis[int(rng.integers(3))]
            )
        trials.append(make_trial(tuple(events.values())))
    return trials


class ChaosPlan:
    """Deterministic fault schedule for the parallel executor.

    All triggers are scripted up front — no randomness, no wall-clock
    dependence — so a failing chaos test replays exactly.  The same plan
    object drives both pool flavours: in fork mode a kill really calls
    ``os._exit`` inside the child and a hang really sleeps past the
    deadline; in inline mode both surface as :class:`WorkerCrash` (there
    is no process to kill or to time out).

    Parameters
    ----------
    kill:
        ``{worker_id: after_tasks}`` — worker ``worker_id`` dies when it
        picks up its ``after_tasks``-th task (0 = its very first).
    hang:
        ``{worker_id: (after_tasks, seconds)}`` — instead of dying, the
        worker sleeps ``seconds`` before running the task (fork mode;
        pair it with ``task_timeout`` so the parent reaps it).  Inline
        pools treat a due hang as a crash.
    corrupt:
        ``{task_id: times}`` — the first ``times`` attempts of the task
        have one payload byte flipped after the worker writes (and
        checksums) its finish states, so the parent's re-verification
        must catch it and requeue.
    alloc_fail:
        ``{task_id: times}`` — the first ``times`` attempts raise
        :class:`MemoryError` before the task runs (simulated allocation
        failure; exercises the generic retry path).
    corrupt_entries:
        Task ids whose *entry state* is corrupted in shared memory after
        the parent computed its checksum — every worker attempt fails
        entry verification, forcing the parent's regenerate-and-run-inline
        last resort.

    Note that a plan instance is forked into every worker, so mutable
    trigger state is per-process; the ``after_tasks`` counters use the
    worker-local completed-task count the pool passes in, which is
    consistent in both flavours.  Kill and hang triggers are consumed
    when they fire — a plan instance drives **one** run; build a fresh
    plan per run rather than reusing one.
    """

    def __init__(
        self,
        kill: Optional[Dict[int, int]] = None,
        hang: Optional[Dict[int, Tuple[int, float]]] = None,
        corrupt: Optional[Dict[int, int]] = None,
        alloc_fail: Optional[Dict[int, int]] = None,
        corrupt_entries: Tuple[int, ...] = (),
    ) -> None:
        self.kill = dict(kill or {})
        self.hang = dict(hang or {})
        self.corrupt = dict(corrupt or {})
        self.alloc_fail = dict(alloc_fail or {})
        self.corrupt_entries = tuple(corrupt_entries)

    def before_task(
        self,
        worker: int,
        task: int,
        attempt: int,
        tasks_done: int,
        inline: bool = False,
    ) -> None:
        """Pool hook: raise/sleep per the schedule before a task runs."""
        if worker in self.kill and tasks_done >= self.kill[worker]:
            del self.kill[worker]
            raise WorkerCrash(
                f"chaos: killing worker {worker} before task {task}"
            )
        if worker in self.hang and tasks_done >= self.hang[worker][0]:
            _, seconds = self.hang.pop(worker)
            if inline:
                # No process to reap inline — a hang degenerates to a crash.
                raise WorkerCrash(
                    f"chaos: worker {worker} hung before task {task}"
                )
            time.sleep(seconds)
        if self.alloc_fail.get(task, 0) > attempt:
            raise MemoryError(
                f"chaos: simulated allocation failure for task {task} "
                f"(attempt {attempt})"
            )

    def corrupt_payload(self, task: int, attempt: int) -> bool:
        """Pool hook: should this attempt's finish payload be corrupted?"""
        return self.corrupt.get(task, 0) > attempt

    def corrupt_entry(self, task: int) -> bool:
        """Pool hook: should this task's shared entry state be corrupted?"""
        return task in self.corrupt_entries

    def __repr__(self) -> str:
        parts = []
        for name in ("kill", "hang", "corrupt", "alloc_fail"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value}")
        if self.corrupt_entries:
            parts.append(f"corrupt_entries={self.corrupt_entries}")
        return f"ChaosPlan({', '.join(parts)})"


class ServerKilled(BaseException):
    """Simulated kill -9 of the serving process.

    Deliberately a ``BaseException``: the service tier's retry/except
    machinery catches ``Exception``, and a SIGKILL must blow straight
    through it exactly as process death would.  Raised by
    :class:`ServiceChaosPlan` from inside a job's trial stream — i.e.
    *after* the run journal committed that trial — so the state the
    "dead" server leaves behind is precisely a crash-consistent journal
    tail, which the recovery tests then resume against.
    """


class ServiceChaosPlan:
    """Deterministic fault schedule for the service tier.

    Plugs into :func:`repro.serve.jobs.execute_job` via its ``chaos=``
    hook, which calls :meth:`on_trial` once per streamed trial.  All
    triggers are scripted up front and keyed by job *label* (the
    client-chosen name in the spec), so a failing chaos test replays
    exactly.

    Parameters
    ----------
    kill_after:
        ``{label: trials}`` — the "server" dies (:class:`ServerKilled`)
        once the labelled job has streamed that many trials.  Consumed
        when fired; a plan drives one server lifetime.
    torn_labels:
        Labels whose run journal should have garbage appended after the
        kill (the test harness does the appending via
        :meth:`tear_journal`) — modelling a crash mid-``write`` before
        the commit fsync landed.
    """

    def __init__(
        self,
        kill_after: Optional[Dict[str, int]] = None,
        torn_labels: Tuple[str, ...] = (),
    ) -> None:
        self.kill_after = dict(kill_after or {})
        self.torn_labels = tuple(torn_labels)
        self.killed: List[str] = []

    def on_trial(self, record, index: int) -> None:
        """Service hook: one trial of ``record`` is about to stream."""
        label = record.spec.label
        due = self.kill_after.get(label)
        if due is not None and record.trials_streamed >= due:
            del self.kill_after[label]
            self.killed.append(label)
            raise ServerKilled(
                f"chaos: server killed during job {label!r} after "
                f"{record.trials_streamed} streamed trials"
            )

    @staticmethod
    def tear_journal(path: str, garbage: bytes = b"\x00\xffTORN") -> None:
        """Append a torn (uncommitted, CRC-invalid) tail to a journal."""
        with open(path, "ab") as handle:
            handle.write(garbage)

    def __repr__(self) -> str:
        parts = []
        if self.kill_after:
            parts.append(f"kill_after={self.kill_after}")
        if self.torn_labels:
            parts.append(f"torn_labels={self.torn_labels}")
        return f"ServiceChaosPlan({', '.join(parts)})"


def assert_states_close(state_a, state_b, atol: float = 1e-9) -> None:
    """Raise ``AssertionError`` unless two statevectors match amplitude-wise."""
    vec_a = np.asarray(state_a.vector)
    vec_b = np.asarray(state_b.vector)
    if vec_a.shape != vec_b.shape:
        raise AssertionError(f"shape mismatch: {vec_a.shape} vs {vec_b.shape}")
    worst = float(np.max(np.abs(vec_a - vec_b)))
    if worst > atol:
        raise AssertionError(f"states differ by {worst} (> {atol})")
