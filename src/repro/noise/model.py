"""Device noise models: error operator + position + probability (Sec. III-B).

A :class:`NoiseModel` answers two static questions about a layered circuit:

1. **Where can errors happen?** After every gate — one
   :class:`ErrorPosition` per gate occurrence (the paper's Fig. 3 injects
   one error operator ``E`` after each gate).  The position carries the
   gate's touched qubits and the symmetric depolarizing channel of matching
   width, with the total strength from the calibration entry (single-qubit
   rate, or the two-qubit rate of the specific pair).  A fired multi-qubit
   label (e.g. ``"xz"``) becomes one single-qubit error event per
   non-identity component, all at the same layer.  Optionally, errors
   also fire on *idle* qubits: the paper notes that decay / environment
   errors "can happen without an operation ... at any place across the
   quantum circuit"; setting ``idle_error`` adds one position per
   (layer, untouched qubit), carrying ``idle_channel`` (default
   depolarizing — a Pauli-twirled stand-in for decay, which keeps the
   trial model stochastic-unitary).
2. **How are readout bits corrupted?** A per-qubit classical flip
   probability applied after measurement.

Both questions are answered *without running anything* — the sampler
(:mod:`repro.noise.sampling`) turns the positions into concrete trials, and
the exact enumerator / density-matrix validator consume the same positions,
guaranteeing all three views model the identical noise process.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from ..circuits.circuit import GateOp, Measurement
from ..circuits.layers import LayeredCircuit
from .channels import PauliChannel, uniform_pauli_channel

__all__ = ["ErrorPosition", "NoiseModel"]


class ErrorPosition(NamedTuple):
    """A place where an error may fire: after the gate on ``qubits`` in ``layer``."""

    layer: int
    qubits: Tuple[int, ...]
    channel: PauliChannel


class NoiseModel:
    """Pauli gate-error + classical readout-error model of a device.

    Parameters
    ----------
    single_qubit_error:
        ``qubit -> total error probability`` after a single-qubit gate.
    two_qubit_error:
        ``frozenset({a, b}) -> total error probability`` after a two-qubit
        gate on that pair.
    measurement_error:
        ``qubit -> readout bit-flip probability``.
    default_single / default_two / default_measurement:
        Fallbacks for qubits/pairs absent from the calibration maps.
    idle_error:
        Probability of an error firing on each qubit *not* touched by any
        gate in a layer (Sec. III-B's "error without an operation");
        0 disables idle errors (the paper's evaluation setting).
    idle_channel:
        Conditional operator distribution for idle errors; defaults to the
        symmetric depolarizing channel of strength ``idle_error``.  Pass
        e.g. ``bit_flip(idle_error)`` to model pure decay-style errors.
    """

    def __init__(
        self,
        single_qubit_error: Optional[Dict[int, float]] = None,
        two_qubit_error: Optional[Dict[FrozenSet[int], float]] = None,
        measurement_error: Optional[Dict[int, float]] = None,
        default_single: float = 0.0,
        default_two: float = 0.0,
        default_measurement: float = 0.0,
        idle_error: float = 0.0,
        idle_channel: Optional[PauliChannel] = None,
        name: str = "noise-model",
    ) -> None:
        self.single_qubit_error = dict(single_qubit_error or {})
        self.two_qubit_error = {
            frozenset(pair): prob for pair, prob in (two_qubit_error or {}).items()
        }
        self.measurement_error = dict(measurement_error or {})
        self.default_single = float(default_single)
        self.default_two = float(default_two)
        self.default_measurement = float(default_measurement)
        self.idle_error = float(idle_error)
        if idle_channel is not None and idle_channel.width != 1:
            raise ValueError("idle_channel must be a single-qubit channel")
        if idle_channel is None and self.idle_error > 0.0:
            idle_channel = uniform_pauli_channel(self.idle_error, 1)
        self.idle_channel = idle_channel
        self.name = name
        for label, prob in self._all_probabilities():
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"probability out of range for {label}: {prob}")

    def _all_probabilities(self):
        for qubit, prob in self.single_qubit_error.items():
            yield f"single[{qubit}]", prob
        for pair, prob in self.two_qubit_error.items():
            yield f"two[{sorted(pair)}]", prob
        for qubit, prob in self.measurement_error.items():
            yield f"measure[{qubit}]", prob
        yield "default_single", self.default_single
        yield "default_two", self.default_two
        yield "default_measurement", self.default_measurement
        yield "idle", self.idle_error

    # -- constructors ------------------------------------------------------------

    @classmethod
    def uniform(
        cls,
        single: float,
        two: Optional[float] = None,
        measurement: Optional[float] = None,
        name: str = "uniform",
    ) -> "NoiseModel":
        """Uniform rates for every qubit/pair.

        Following the paper's artificial models (Sec. V-B), two-qubit and
        measurement rates default to ``10x`` the single-qubit rate.
        """
        return cls(
            default_single=single,
            default_two=10.0 * single if two is None else two,
            default_measurement=10.0 * single if measurement is None else measurement,
            name=name,
        )

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        return cls(name="noiseless")

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serializable calibration dictionary (device file format)."""
        payload: Dict = {
            "name": self.name,
            "single_qubit_error": {
                str(q): p for q, p in sorted(self.single_qubit_error.items())
            },
            "two_qubit_error": {
                "-".join(str(q) for q in sorted(pair)): p
                for pair, p in sorted(
                    self.two_qubit_error.items(), key=lambda kv: sorted(kv[0])
                )
            },
            "measurement_error": {
                str(q): p for q, p in sorted(self.measurement_error.items())
            },
            "default_single": self.default_single,
            "default_two": self.default_two,
            "default_measurement": self.default_measurement,
            "idle_error": self.idle_error,
        }
        if self.idle_channel is not None:
            payload["idle_channel"] = self.idle_channel.probabilities
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "NoiseModel":
        """Rebuild a model written by :meth:`to_dict`."""
        idle_channel = None
        if "idle_channel" in payload:
            idle_channel = PauliChannel(payload["idle_channel"])
        return cls(
            single_qubit_error={
                int(q): p
                for q, p in payload.get("single_qubit_error", {}).items()
            },
            two_qubit_error={
                frozenset(int(q) for q in key.split("-")): p
                for key, p in payload.get("two_qubit_error", {}).items()
            },
            measurement_error={
                int(q): p
                for q, p in payload.get("measurement_error", {}).items()
            },
            default_single=payload.get("default_single", 0.0),
            default_two=payload.get("default_two", 0.0),
            default_measurement=payload.get("default_measurement", 0.0),
            idle_error=payload.get("idle_error", 0.0),
            idle_channel=idle_channel,
            name=payload.get("name", "noise-model"),
        )

    def scaled(self, factor: float) -> "NoiseModel":
        """A model with every error probability multiplied by ``factor``.

        Used for noise-sweep studies ("what if the device were 2x
        better?"); probabilities are validated after scaling.
        """
        return NoiseModel(
            single_qubit_error={
                q: p * factor for q, p in self.single_qubit_error.items()
            },
            two_qubit_error={
                pair: p * factor for pair, p in self.two_qubit_error.items()
            },
            measurement_error={
                q: p * factor for q, p in self.measurement_error.items()
            },
            default_single=self.default_single * factor,
            default_two=self.default_two * factor,
            default_measurement=self.default_measurement * factor,
            idle_error=self.idle_error * factor,
            idle_channel=(
                self.idle_channel.scaled(factor)
                if self.idle_channel is not None
                else None
            ),
            name=f"{self.name}-x{factor:g}",
        )

    # -- lookups -------------------------------------------------------------------

    def gate_error_probability(self, op: GateOp) -> float:
        """Total probability that an error fires after ``op``."""
        if op.gate.num_qubits == 1:
            return self.single_qubit_error.get(op.qubits[0], self.default_single)
        pair = frozenset(op.qubits[:2]) if op.gate.num_qubits == 2 else None
        if pair is not None and pair in self.two_qubit_error:
            return self.two_qubit_error[pair]
        return self.default_two

    def measurement_flip_probability(self, measurement: Measurement) -> float:
        return self.measurement_error.get(
            measurement.qubit, self.default_measurement
        )

    # -- static analysis --------------------------------------------------------

    def error_positions(self, layered: LayeredCircuit) -> List[ErrorPosition]:
        """Enumerate every error position of ``layered``, in layer order.

        One position per gate occurrence.  Within a layer, gates are
        qubit-disjoint, so ``(layer, qubits)`` identifies a position
        uniquely.  Positions with zero error probability are omitted — they
        can never fire and would only slow the sampler down.
        """
        positions: List[ErrorPosition] = []
        idle_active = self.idle_error > 0.0 and self.idle_channel is not None
        for layer_index, layer in enumerate(layered.layers):
            layer_positions = []
            touched = set()
            for op in layer:
                touched.update(op.qubits)
                probability = self.gate_error_probability(op)
                if probability <= 0.0:
                    continue
                channel = uniform_pauli_channel(probability, len(op.qubits))
                layer_positions.append(
                    ErrorPosition(layer_index, op.qubits, channel)
                )
            if idle_active:
                for qubit in range(layered.num_qubits):
                    if qubit not in touched:
                        layer_positions.append(
                            ErrorPosition(
                                layer_index, (qubit,), self.idle_channel
                            )
                        )
            layer_positions.sort(key=lambda pos: pos.qubits)
            positions.extend(layer_positions)
        return positions

    def measurement_positions(
        self, layered: LayeredCircuit
    ) -> List[Tuple[Measurement, float]]:
        """Measurements paired with their flip probability (zero-prob kept)."""
        return [
            (meas, self.measurement_flip_probability(meas))
            for meas in layered.measurements
        ]

    # -- exact channel view (for validation) -----------------------------------

    def kraus_after_gate(self, op: GateOp):
        """Kraus channel to apply after ``op`` in density-matrix evolution.

        Matches the Monte-Carlo position model exactly: the symmetric
        depolarizing channel of the gate's width and calibration strength.
        Returns a list with a single ``(kraus_operators, qubits)`` entry
        (empty when the gate is noise-free).
        """
        probability = self.gate_error_probability(op)
        if probability <= 0.0:
            return []
        channel = uniform_pauli_channel(probability, len(op.qubits))
        return [(channel.kraus_operators(), op.qubits)]

    def kraus_for_layer(self, layered: LayeredCircuit, layer_index: int):
        """All channels firing at the end of one layer: gate + idle.

        Used by :func:`repro.sim.density.run_layered_density` to validate
        the trial model (including idle errors) against exact channel
        evolution.
        """
        channels = []
        touched = set()
        for op in layered.layers[layer_index]:
            touched.update(op.qubits)
            channels.extend(self.kraus_after_gate(op))
        if self.idle_error > 0.0 and self.idle_channel is not None:
            for qubit in range(layered.num_qubits):
                if qubit not in touched:
                    channels.append(
                        (self.idle_channel.kraus_operators(), (qubit,))
                    )
        return channels

    def __repr__(self) -> str:
        return (
            f"NoiseModel({self.name!r}, default_single={self.default_single}, "
            f"default_two={self.default_two}, "
            f"default_measurement={self.default_measurement})"
        )
