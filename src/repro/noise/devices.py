"""Device calibration models used in the paper's evaluation.

Two families (Sec. V):

* :func:`ibm_yorktown` — the realistic model: IBM's 5-qubit Yorktown
  (ibmqx2) superconducting processor with the per-qubit / per-pair error
  rates of the paper's Fig. 4.
* :func:`artificial_model` / :data:`ARTIFICIAL_ERROR_LEVELS` — the
  scalability models: uniform single-qubit rates from ``1e-3`` (today's
  hardware) down to ``1e-4`` (extrapolated future hardware), with two-qubit
  and measurement rates fixed at 10x the single-qubit rate.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from .model import NoiseModel

__all__ = [
    "ibm_yorktown",
    "YORKTOWN_COUPLING",
    "artificial_model",
    "ARTIFICIAL_ERROR_LEVELS",
    "artificial_sweep",
]

#: Coupling graph of IBM Yorktown (ibmqx2): the "bowtie" of 5 qubits.
YORKTOWN_COUPLING: Tuple[Tuple[int, int], ...] = (
    (0, 1),
    (0, 2),
    (1, 2),
    (2, 3),
    (2, 4),
    (3, 4),
)

# Fig. 4 of the paper.  Single-qubit gate errors are 1e-3 units,
# measurement errors 1e-2 units, two-qubit (CNOT) errors 1e-2 units.
_YORKTOWN_SINGLE: Dict[int, float] = {
    0: 1.37e-3,
    1: 1.37e-3,
    2: 2.23e-3,
    3: 1.72e-3,
    4: 0.94e-3,
}
_YORKTOWN_MEASURE: Dict[int, float] = {
    0: 2.40e-2,
    1: 2.60e-2,
    2: 3.00e-2,
    3: 2.20e-2,
    4: 4.50e-2,
}
_YORKTOWN_TWO: Dict[FrozenSet[int], float] = {
    frozenset((0, 1)): 2.72e-2,
    frozenset((0, 2)): 3.77e-2,
    frozenset((1, 2)): 4.18e-2,
    frozenset((2, 3)): 3.97e-2,
    frozenset((2, 4)): 3.62e-2,
    frozenset((3, 4)): 3.51e-2,
}


def ibm_yorktown() -> NoiseModel:
    """The IBM 5-qubit Yorktown calibration model (paper Fig. 4)."""
    return NoiseModel(
        single_qubit_error=dict(_YORKTOWN_SINGLE),
        two_qubit_error=dict(_YORKTOWN_TWO),
        measurement_error=dict(_YORKTOWN_MEASURE),
        # Fall back to the worst observed rates for any qubit outside 0..4
        # (cannot happen for mapped circuits, but keeps the model total).
        default_single=max(_YORKTOWN_SINGLE.values()),
        default_two=max(_YORKTOWN_TWO.values()),
        default_measurement=max(_YORKTOWN_MEASURE.values()),
        name="ibm-yorktown",
    )


#: The four error-rate levels of the scalability study (Sec. V-B), as
#: single-qubit total error probabilities.  Two-qubit and measurement rates
#: are 10x these values.
ARTIFICIAL_ERROR_LEVELS: Tuple[float, ...] = (1e-3, 5e-4, 2e-4, 1e-4)


def artificial_model(single_qubit_rate: float) -> NoiseModel:
    """Uniform artificial device model with 10x two-qubit/measurement rates."""
    if single_qubit_rate < 0:
        raise ValueError(f"negative error rate: {single_qubit_rate}")
    return NoiseModel.uniform(
        single_qubit_rate,
        name=f"artificial-p1={single_qubit_rate:g}",
    )


def artificial_sweep() -> List[NoiseModel]:
    """The four artificial models of Figs. 7-8, highest error rate first."""
    return [artificial_model(rate) for rate in ARTIFICIAL_ERROR_LEVELS]
