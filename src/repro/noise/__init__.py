"""Noise modeling: channels, device calibrations and trial sampling."""

from .channels import (
    PauliChannel,
    bit_flip,
    depolarizing,
    pauli_label_matrix,
    pauli_matrix,
    phase_flip,
    two_qubit_depolarizing,
    uniform_pauli_channel,
)
from .devices import (
    ARTIFICIAL_ERROR_LEVELS,
    YORKTOWN_COUPLING,
    artificial_model,
    artificial_sweep,
    ibm_yorktown,
)
from .model import ErrorPosition, NoiseModel
from .sampling import (
    TrialStatistics,
    enumerate_trials,
    expected_errors_per_trial,
    sample_trials,
    trial_statistics,
)

__all__ = [
    "ARTIFICIAL_ERROR_LEVELS",
    "ErrorPosition",
    "NoiseModel",
    "PauliChannel",
    "TrialStatistics",
    "YORKTOWN_COUPLING",
    "artificial_model",
    "artificial_sweep",
    "bit_flip",
    "depolarizing",
    "enumerate_trials",
    "expected_errors_per_trial",
    "ibm_yorktown",
    "pauli_label_matrix",
    "pauli_matrix",
    "phase_flip",
    "sample_trials",
    "trial_statistics",
    "two_qubit_depolarizing",
    "uniform_pauli_channel",
]
