"""Noise channels: symmetric depolarizing Pauli channels of any width.

The paper's experiments use the symmetric depolarization error channel
(Sec. III-B-2, Fig. 3): after each gate an error operator is injected with
some probability.  For single-qubit gates the operator alphabet is
{X, Y, Z}; for two-qubit gates it is the 15 non-identity two-qubit Paulis
{I, X, Y, Z}^2 \\ {II} — the standard ``depolarizing_error(p, 2)`` model.

A :class:`PauliChannel` is a distribution over Pauli *labels* — strings
over ``"ixyz"`` of the channel's width, never all-identity.  We
parameterize channels by the *total* error probability ``p_total`` — the
number device calibration sheets report — and expose both the Monte-Carlo
view (sample a label) and the exact Kraus view (for density-matrix
validation).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "PauliChannel",
    "depolarizing",
    "two_qubit_depolarizing",
    "uniform_pauli_channel",
    "bit_flip",
    "phase_flip",
    "pauli_matrix",
    "pauli_label_matrix",
]

_PAULI_MATRICES: Dict[str, np.ndarray] = {
    "i": np.eye(2, dtype=np.complex128),
    "x": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


def pauli_matrix(label: str) -> np.ndarray:
    """The 2x2 Pauli matrix for label ``"i"/"x"/"y"/"z"``."""
    try:
        return _PAULI_MATRICES[label.lower()]
    except KeyError:
        raise ValueError(f"unknown Pauli label {label!r}") from None


def pauli_label_matrix(label: str) -> np.ndarray:
    """The ``2**len(label)`` square matrix of a multi-qubit Pauli label."""
    if not label:
        raise ValueError("empty Pauli label")
    matrix = pauli_matrix(label[0])
    for char in label[1:]:
        matrix = np.kron(matrix, pauli_matrix(char))
    return matrix


def _check_label(label: str) -> str:
    lowered = label.lower()
    if not lowered or set(lowered) - set("ixyz"):
        raise ValueError(f"bad Pauli label {label!r}")
    if set(lowered) == {"i"}:
        raise ValueError(f"all-identity error label {label!r} is not an error")
    return lowered


class PauliChannel:
    """A Pauli error channel over ``width`` qubits.

    Parameters
    ----------
    probabilities:
        Map from Pauli label (e.g. ``"x"`` for width 1, ``"xz"`` / ``"ix"``
        for width 2) to the probability that this operator is injected.
        The all-identity outcome gets the remaining probability.  All
        labels must share one width.
    """

    __slots__ = ("_probs", "_labels", "_weights", "_total", "_width")

    def __init__(self, probabilities: Dict[str, float]) -> None:
        cleaned: Dict[str, float] = {}
        width = None
        for label, prob in probabilities.items():
            label = _check_label(label)
            if width is None:
                width = len(label)
            elif len(label) != width:
                raise ValueError(
                    f"mixed label widths: {len(label)} vs {width}"
                )
            if prob < 0:
                raise ValueError(f"negative probability for {label!r}: {prob}")
            if prob > 0:
                cleaned[label] = cleaned.get(label, 0.0) + float(prob)
        if width is None:
            raise ValueError("channel needs at least one error label")
        total = sum(cleaned.values())
        if total > 1.0 + 1e-12:
            raise ValueError(f"error probabilities sum to {total} > 1")
        self._probs = cleaned
        self._labels = tuple(sorted(cleaned))
        self._weights = tuple(cleaned[label] for label in self._labels)
        self._total = min(total, 1.0)
        self._width = width

    @property
    def width(self) -> int:
        """Number of qubits the channel acts on."""
        return self._width

    @property
    def total_probability(self) -> float:
        """Probability that *any* (non-identity) error fires."""
        return self._total

    @property
    def probabilities(self) -> Dict[str, float]:
        return dict(self._probs)

    def labels(self) -> Tuple[str, ...]:
        return self._labels

    def sample_label(self, rng: np.random.Generator) -> str:
        """Draw an error label *given that an error fired*."""
        if len(self._labels) == 1:
            return self._labels[0]
        weights = np.asarray(self._weights) / self._total
        return str(rng.choice(np.array(self._labels), p=weights))

    def sample_labels(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` labels given that an error fired in each draw."""
        if len(self._labels) == 1:
            return np.full(count, self._labels[0])
        weights = np.asarray(self._weights) / self._total
        return rng.choice(np.array(self._labels), size=count, p=weights)

    def conditional_probability(self, label: str) -> float:
        """P(operator == label | an error fired)."""
        if self._total == 0:
            return 0.0
        return self._probs.get(label.lower(), 0.0) / self._total

    def kraus_operators(self) -> List[np.ndarray]:
        """The exact Kraus representation (for density-matrix evolution)."""
        dim = 2**self._width
        operators = [math.sqrt(1.0 - self._total) * np.eye(dim)]
        for label in self._labels:
            operators.append(
                math.sqrt(self._probs[label]) * pauli_label_matrix(label)
            )
        return operators

    def scaled(self, factor: float) -> "PauliChannel":
        """A channel with every error probability multiplied by ``factor``."""
        return PauliChannel({k: v * factor for k, v in self._probs.items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliChannel):
            return NotImplemented
        return self._probs == other._probs

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._probs.items())))

    def __repr__(self) -> str:
        if len(self._probs) > 4:
            return (
                f"PauliChannel(width={self._width}, "
                f"p_total={self._total:.3g}, labels={len(self._labels)})"
            )
        body = ", ".join(f"{k}={v:.3g}" for k, v in sorted(self._probs.items()))
        return f"PauliChannel({body})"


def uniform_pauli_channel(total_probability: float, width: int) -> PauliChannel:
    """Symmetric depolarizing on ``width`` qubits.

    Distributes ``total_probability`` uniformly over the ``4**width - 1``
    non-identity Pauli labels.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    labels = [
        "".join(combo)
        for combo in itertools.product("ixyz", repeat=width)
        if set(combo) != {"i"}
    ]
    share = total_probability / len(labels)
    return PauliChannel({label: share for label in labels})


def depolarizing(total_probability: float) -> PauliChannel:
    """Single-qubit symmetric depolarizing: X, Y, Z each ``p_total / 3``."""
    return uniform_pauli_channel(total_probability, 1)


def two_qubit_depolarizing(total_probability: float) -> PauliChannel:
    """Two-qubit symmetric depolarizing over the 15 non-identity Paulis."""
    return uniform_pauli_channel(total_probability, 2)


def bit_flip(probability: float) -> PauliChannel:
    return PauliChannel({"x": probability})


def phase_flip(probability: float) -> PauliChannel:
    return PauliChannel({"z": probability})
