"""Static Monte-Carlo trial generation.

The paper's pipeline starts by generating *all* simulation trials without
running anything (Sec. I: "we first generate all the simulation trials
without actually running the simulation").  :func:`sample_trials` does this
for up to millions of trials efficiently: positions are grouped by channel,
the per-trial error count in each group is drawn from the exact binomial,
and only trials that actually contain errors pay any per-event Python cost.
At realistic error rates the overwhelming majority of trials are error-free,
so sampling 10^6 trials is cheap.

:func:`enumerate_trials` is the exact counterpart for validation: it walks
every possible error pattern of a small circuit with its probability, which
lets tests compare the Monte-Carlo ensemble against the exact channel.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.layers import LayeredCircuit
from ..core.events import ErrorEvent, Trial, make_trial
from .channels import PauliChannel
from .model import ErrorPosition, NoiseModel

__all__ = [
    "sample_trials",
    "enumerate_trials",
    "expected_errors_per_trial",
    "TrialStatistics",
    "trial_statistics",
]


def _group_positions(
    positions: Sequence[ErrorPosition],
) -> Dict[PauliChannel, List[ErrorPosition]]:
    groups: Dict[PauliChannel, List[ErrorPosition]] = {}
    for position in positions:
        groups.setdefault(position.channel, []).append(position)
    return groups


def _label_events(
    position: ErrorPosition, label: str
) -> List[ErrorEvent]:
    """Expand a fired Pauli label into per-qubit error events."""
    return [
        ErrorEvent(position.layer, position.qubits[index], char)
        for index, char in enumerate(label)
        if char != "i"
    ]


def sample_trials(
    layered: LayeredCircuit,
    model: NoiseModel,
    num_trials: int,
    rng: np.random.Generator,
) -> List[Trial]:
    """Draw ``num_trials`` independent error-injection trials.

    Each error position fires independently with its channel's total
    probability; fired positions get an operator from the channel's
    conditional distribution.  Measurement flips are drawn per measurement
    with the model's readout probability.  The returned trials are in raw
    sampling order (the baseline order); reordering is a separate step.
    """
    if num_trials < 1:
        raise ValueError(f"need at least one trial, got {num_trials}")
    positions = model.error_positions(layered)
    events_per_trial: List[List[ErrorEvent]] = [[] for _ in range(num_trials)]

    for channel, group in _group_positions(positions).items():
        group_size = len(group)
        probability = channel.total_probability
        counts = rng.binomial(group_size, probability, size=num_trials)
        hot_trials = np.nonzero(counts)[0]
        for trial_index in hot_trials:
            fired = int(counts[trial_index])
            chosen = rng.choice(group_size, size=fired, replace=False)
            labels = channel.sample_labels(fired, rng)
            for position_index, label in zip(chosen, labels):
                position = group[int(position_index)]
                events_per_trial[trial_index].extend(
                    _label_events(position, str(label))
                )

    flips_per_trial: List[List[int]] = [[] for _ in range(num_trials)]
    meas_groups: Dict[float, List[int]] = {}
    for measurement, probability in model.measurement_positions(layered):
        if probability > 0.0:
            meas_groups.setdefault(probability, []).append(measurement.clbit)
    for probability, clbits in meas_groups.items():
        counts = rng.binomial(len(clbits), probability, size=num_trials)
        hot_trials = np.nonzero(counts)[0]
        for trial_index in hot_trials:
            fired = int(counts[trial_index])
            chosen = rng.choice(len(clbits), size=fired, replace=False)
            flips_per_trial[trial_index].extend(clbits[int(i)] for i in chosen)

    return [
        make_trial(events, flips)
        for events, flips in zip(events_per_trial, flips_per_trial)
    ]


def enumerate_trials(
    layered: LayeredCircuit,
    model: NoiseModel,
    max_positions: int = 12,
    include_measurement_flips: bool = False,
) -> List[Tuple[Trial, float]]:
    """Every possible trial of a small circuit, with its exact probability.

    The pattern space is ``(1 + |labels|) ** num_positions`` (times
    ``2 ** num_measurements`` when readout flips are included), so this is
    only for validation-sized circuits; ``max_positions`` guards against
    accidental blow-ups.
    """
    positions = model.error_positions(layered)
    if len(positions) > max_positions:
        raise ValueError(
            f"{len(positions)} error positions exceed max_positions="
            f"{max_positions}; enumeration would explode"
        )

    per_position_choices: List[List[Tuple[Tuple[ErrorEvent, ...], float]]] = []
    for position in positions:
        choices: List[Tuple[Tuple[ErrorEvent, ...], float]] = [
            ((), 1.0 - position.channel.total_probability)
        ]
        for label, probability in position.channel.probabilities.items():
            choices.append(
                (tuple(_label_events(position, label)), probability)
            )
        per_position_choices.append(choices)

    flip_choices: List[List[Tuple[Optional[int], float]]] = []
    if include_measurement_flips:
        for measurement, probability in model.measurement_positions(layered):
            if probability > 0.0:
                flip_choices.append(
                    [(None, 1.0 - probability), (measurement.clbit, probability)]
                )

    results: List[Tuple[Trial, float]] = []
    for pattern in itertools.product(*per_position_choices):
        events = [event for events_part, _ in pattern for event in events_part]
        event_probability = 1.0
        for _, probability in pattern:
            event_probability *= probability
        if not flip_choices:
            results.append((make_trial(events), event_probability))
            continue
        for flip_pattern in itertools.product(*flip_choices):
            flips = [clbit for clbit, _ in flip_pattern if clbit is not None]
            total = event_probability
            for _, probability in flip_pattern:
                total *= probability
            results.append((make_trial(events, flips), total))
    return results


def expected_errors_per_trial(layered: LayeredCircuit, model: NoiseModel) -> float:
    """The mean number of injected errors per trial (sum of position rates)."""
    return sum(
        position.channel.total_probability
        for position in model.error_positions(layered)
    )


class TrialStatistics:
    """Summary statistics of a sampled trial set."""

    def __init__(self, trials: Sequence[Trial]) -> None:
        error_counts = [trial.num_errors for trial in trials]
        self.num_trials = len(trials)
        self.num_error_free = sum(1 for c in error_counts if c == 0)
        self.mean_errors = float(np.mean(error_counts)) if trials else 0.0
        self.max_errors = max(error_counts) if trials else 0
        self.num_distinct = len({trial for trial in trials})

    @property
    def duplication_ratio(self) -> float:
        """Trials per distinct trial — the dedup headroom of the optimizer."""
        if self.num_distinct == 0:
            return 0.0
        return self.num_trials / self.num_distinct

    def __repr__(self) -> str:
        return (
            f"TrialStatistics(trials={self.num_trials}, "
            f"error_free={self.num_error_free}, "
            f"mean_errors={self.mean_errors:.3f}, "
            f"max_errors={self.max_errors}, distinct={self.num_distinct})"
        )


def trial_statistics(trials: Sequence[Trial]) -> TrialStatistics:
    """Compute :class:`TrialStatistics` for ``trials``."""
    return TrialStatistics(trials)
