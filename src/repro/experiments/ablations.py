"""Ablation studies of the paper's design choices.

The optimization has three stacked ingredients:

1. **Deduplication** — identical trials (same error pattern) are computed
   once.  Dominant at low error rates where most trials are error-free.
2. **Consecutive-prefix reuse** — each trial resumes from the deepest state
   of the *previous* trial it shares a prefix with.
3. **Reordering** — sorting the trials (Algorithm 1) makes consecutive
   trials share the *longest possible* prefixes, and the trie execution
   keeps just enough snapshots to never recompute a shared prefix.

The ablation strategies below isolate each ingredient's contribution; the
benchmarks print them side by side (and the monotonicity chain
``full <= reorder+consecutive <= raw-consecutive`` is unit-tested).

All costs use the paper's basic-operation metric and the same advance
semantics as the real scheduler.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..circuits.layers import LayeredCircuit
from ..core.events import Trial
from ..core.executor import baseline_operation_count, run_optimized
from ..core.reorder import reorder_trials
from ..sim.counting import CountingBackend

__all__ = [
    "consecutive_reuse_ops",
    "dedup_only_ops",
    "trial_cost",
    "chunked_ops",
    "chunk_sweep",
    "ablation_report",
]


def trial_cost(layered: LayeredCircuit, trial: Trial) -> int:
    """Full from-scratch cost of one trial (gates + its injected errors)."""
    return layered.num_gates + trial.num_errors


def _resume_layer(layered: LayeredCircuit, previous: Trial, current: Trial) -> int:
    """Deepest layer of ``previous``'s stored path reusable by ``current``.

    ``previous``'s execution passes through the state "first k shared
    events injected, advanced to layer L" for every L up to where its next
    event diverges (or the circuit end).  ``current`` can resume at any
    such L that does not pass its own next event, so the best resume point
    is the minimum of the two next-event horizons.
    """
    shared = 0
    for event_prev, event_cur in zip(previous.events, current.events):
        if event_prev != event_cur:
            break
        shared += 1

    def horizon(trial: Trial) -> int:
        if len(trial.events) > shared:
            return trial.events[shared].layer + 1
        return layered.num_layers

    return min(horizon(previous), horizon(current))


def consecutive_reuse_ops(
    layered: LayeredCircuit, trials: Sequence[Trial]
) -> int:
    """Cost with prefix reuse between *consecutive* trials only.

    This is the optimization without the trie's snapshot stack: each trial
    resumes from the deepest reusable state along the immediately preceding
    trial's path.  Applied to the raw sampling order it isolates "reuse
    without reorder"; applied to a reordered list it shows what sorting
    alone buys (the full trie adds multi-way sharing on top).
    """
    if not trials:
        return 0
    total = trial_cost(layered, trials[0])
    for previous, current in zip(trials, trials[1:]):
        resume = _resume_layer(layered, previous, current)
        shared_events = 0
        for event_prev, event_cur in zip(previous.events, current.events):
            if event_prev != event_cur:
                break
            shared_events += 1
        remaining_gates = layered.gates_between(resume, layered.num_layers)
        remaining_errors = len(current.events) - shared_events
        total += remaining_gates + remaining_errors
    return total


def dedup_only_ops(layered: LayeredCircuit, trials: Sequence[Trial]) -> int:
    """Cost with only duplicate-trial elimination (no prefix sharing)."""
    distinct = {trial for trial in trials}
    return sum(trial_cost(layered, trial) for trial in distinct)


def chunked_ops(
    layered: LayeredCircuit, trials: Sequence[Trial], num_chunks: int
) -> int:
    """Optimized cost when trials are split into independent chunks.

    Models two practical regimes the paper touches on: running the
    Monte-Carlo batch on parallel workers (each worker reorders only its
    own share — the paper's scheme composes with system-level parallelism
    at this cost), and limited static lookahead (trials generated in
    batches instead of all up front).  As ``num_chunks`` grows the
    cross-chunk sharing is lost and cost approaches the baseline; with one
    chunk this is exactly the full optimization.
    """
    if num_chunks < 1:
        raise ValueError(f"need at least one chunk, got {num_chunks}")
    total = 0
    chunk_size = (len(trials) + num_chunks - 1) // num_chunks
    for start in range(0, len(trials), chunk_size):
        chunk = trials[start : start + chunk_size]
        backend = CountingBackend(layered)
        total += run_optimized(layered, chunk, backend).ops_applied
    return total


def chunk_sweep(
    layered: LayeredCircuit,
    trials: Sequence[Trial],
    chunk_counts: Sequence[int] = (1, 2, 4, 8, 16, 64),
) -> Dict[int, int]:
    """``num_chunks -> optimized ops`` for a range of chunk counts."""
    return {
        num_chunks: chunked_ops(layered, trials, num_chunks)
        for num_chunks in chunk_counts
    }


def ablation_report(
    layered: LayeredCircuit, trials: Sequence[Trial]
) -> Dict[str, int]:
    """Operation counts of every strategy on one trial set.

    Keys: ``baseline``, ``dedup_only``, ``consecutive_raw`` (reuse without
    reorder), ``consecutive_sorted`` (reorder + single-state reuse) and
    ``full`` (the paper's trie execution with snapshot stack).
    """
    backend = CountingBackend(layered)
    outcome = run_optimized(layered, trials, backend)
    ordered = reorder_trials(trials)
    return {
        "baseline": baseline_operation_count(layered, trials),
        "dedup_only": dedup_only_ops(layered, trials),
        "consecutive_raw": consecutive_reuse_ops(layered, trials),
        "consecutive_sorted": consecutive_reuse_ops(layered, ordered),
        "full": outcome.ops_applied,
    }
