"""Scalability experiments: Figs. 7 and 8.

Quantum Volume circuits from 10 to 40 qubits (depth 5-20) under the four
artificial error models (single-qubit rate 1e-3 .. 1e-4, two-qubit and
measurement 10x).  The default trial count is laptop-sized (10^5); pass
``num_trials=1_000_000`` to match the paper exactly — feasible thanks to
the packed engine (below), though the largest configurations then take
minutes each.

Two engines compute the identical metrics (property-tested equal):

* ``engine="packed"`` (default) — byte-packed trials and a streaming cost
  pass (:mod:`repro.core.packed`).  This is what makes 10^6 trials on
  n40,d20 fit in laptop memory.
* ``engine="object"`` — the regular Trial/trie/plan pipeline on the
  counting backend; clearer, heavier.

Neither allocates a 2**40-amplitude statevector: the paper's metric
depends only on the schedule (see :mod:`repro.sim.counting`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..bench.qv import QV_SCALABILITY_SIZES, quantum_volume
from ..circuits.layers import layerize
from ..core.packed import analyze_packed_trials, sample_packed_trials
from ..core.runner import NoisySimulator
from ..noise.devices import ARTIFICIAL_ERROR_LEVELS, artificial_model

__all__ = [
    "ScalabilityRecord",
    "run_scalability_experiment",
    "fig7_rows",
    "fig8_rows",
    "error_level_label",
]


def error_level_label(single_rate: float) -> str:
    """Fig. 7/8 legend label, e.g. ``"1e-03/1e-02"`` (single/two-qubit)."""
    return f"{single_rate:.0e}/{10 * single_rate:.0e}"


class ScalabilityRecord:
    """One (circuit size, error level) cell of Figs. 7-8."""

    def __init__(
        self,
        num_qubits: int,
        depth: int,
        single_rate: float,
        num_trials: int,
        normalized_computation: float,
        peak_msv: int,
        optimized_ops: int,
        baseline_ops: int,
    ) -> None:
        self.num_qubits = num_qubits
        self.depth = depth
        self.single_rate = single_rate
        self.num_trials = num_trials
        self.normalized_computation = normalized_computation
        self.peak_msv = peak_msv
        self.optimized_ops = optimized_ops
        self.baseline_ops = baseline_ops

    @property
    def size_label(self) -> str:
        return f"n{self.num_qubits},d{self.depth}"

    @property
    def computation_saving(self) -> float:
        return 1.0 - self.normalized_computation

    def __repr__(self) -> str:
        return (
            f"ScalabilityRecord({self.size_label}, p1={self.single_rate:g}, "
            f"normalized={self.normalized_computation:.3f}, "
            f"msv={self.peak_msv})"
        )


def run_scalability_experiment(
    sizes: Sequence[Tuple[int, int]] = QV_SCALABILITY_SIZES,
    error_levels: Sequence[float] = ARTIFICIAL_ERROR_LEVELS,
    num_trials: int = 100_000,
    seed: int = 2020,
    engine: str = "packed",
) -> List[ScalabilityRecord]:
    """Run the Fig. 7 / Fig. 8 sweep (metrics only, no amplitudes)."""
    if engine not in ("packed", "object"):
        raise ValueError(f"unknown engine {engine!r}")
    records: List[ScalabilityRecord] = []
    for num_qubits, depth in sizes:
        circuit = quantum_volume(num_qubits, depth, seed=seed)
        for single_rate in error_levels:
            model = artificial_model(single_rate)
            if engine == "packed":
                layered = layerize(circuit)
                rng = np.random.default_rng(seed)
                packed = sample_packed_trials(layered, model, num_trials, rng)
                metrics = analyze_packed_trials(layered, packed)
            else:
                simulator = NoisySimulator(circuit, model, seed=seed)
                metrics = simulator.analyze(num_trials)
            records.append(
                ScalabilityRecord(
                    num_qubits=num_qubits,
                    depth=depth,
                    single_rate=single_rate,
                    num_trials=num_trials,
                    normalized_computation=metrics.normalized_computation,
                    peak_msv=metrics.peak_msv,
                    optimized_ops=metrics.optimized_ops,
                    baseline_ops=metrics.baseline_ops,
                )
            )
    return records


def _pivot(
    records: Sequence[ScalabilityRecord], field: str
) -> List[Dict[str, object]]:
    rows: Dict[str, Dict[str, object]] = {}
    for record in records:
        row = rows.setdefault(record.size_label, {"circuit": record.size_label})
        row[error_level_label(record.single_rate)] = getattr(record, field)
    return list(rows.values())


def fig7_rows(records: Sequence[ScalabilityRecord]) -> List[Dict[str, object]]:
    """Fig. 7 layout: normalized computation, circuit x error level."""
    return _pivot(records, "normalized_computation")


def fig8_rows(records: Sequence[ScalabilityRecord]) -> List[Dict[str, object]]:
    """Fig. 8 layout: MSVs, circuit x error level."""
    return _pivot(records, "peak_msv")
