"""Monte-Carlo convergence study: sampled ensemble vs exact channel.

The paper argues Monte Carlo needs "a large number of error-injection
trials" — this experiment quantifies how large, and doubles as a
statistical validation of the entire pipeline: as the trial count grows,
the sampled output distribution must approach the exact noisy
distribution computed by density-matrix channel evolution, at the
``O(1/sqrt(N))`` Monte-Carlo rate.

Each sweep point reports the total-variation distance between the two
distributions and the optimizer's saving, showing that accuracy and
acceleration compound: more trials buy accuracy *and* a higher saving.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence


from ..analysis.stats import total_variation_distance
from ..circuits.circuit import QuantumCircuit
from ..circuits.layers import layerize
from ..core.runner import NoisySimulator
from ..noise.model import NoiseModel
from ..sim.density import run_layered_density

__all__ = ["ConvergencePoint", "run_convergence_study", "exact_distribution"]


class ConvergencePoint(NamedTuple):
    """One trial-count level of the convergence study."""

    num_trials: int
    tv_distance: float
    computation_saving: float


def exact_distribution(
    circuit: QuantumCircuit, model: NoiseModel
) -> Dict[str, int]:
    """The exact noisy outcome distribution, as scaled pseudo-counts.

    Density-matrix evolution through the model's per-layer channels; the
    diagonal is the measurement distribution (readout flips are folded in
    as an independent classical bit-flip per measured qubit).
    """
    layered = layerize(circuit)
    rho = run_layered_density(layered, model)
    probabilities = rho.probabilities()
    num_qubits = circuit.num_qubits
    flip = {
        meas.qubit: probability
        for meas, probability in model.measurement_positions(layered)
    }
    measured_qubits = [meas.qubit for meas in layered.measurements]
    clbit_of = {meas.qubit: meas.clbit for meas in layered.measurements}

    distribution: Dict[str, float] = {}
    for outcome, probability in enumerate(probabilities):
        if probability <= 0:
            continue
        bits = {
            clbit_of[q]: (outcome >> (num_qubits - 1 - q)) & 1
            for q in measured_qubits
        }
        # Fold independent readout flips by enumerating flip patterns.
        patterns = [(bits, probability)]
        for qubit in measured_qubits:
            p_flip = flip.get(qubit, 0.0)
            if p_flip <= 0:
                continue
            next_patterns = []
            for pattern_bits, pattern_prob in patterns:
                kept = dict(pattern_bits)
                next_patterns.append((kept, pattern_prob * (1 - p_flip)))
                flipped = dict(pattern_bits)
                flipped[clbit_of[qubit]] ^= 1
                next_patterns.append((flipped, pattern_prob * p_flip))
            patterns = next_patterns
        for pattern_bits, pattern_prob in patterns:
            key = "".join(
                str(pattern_bits.get(c, 0)) for c in range(circuit.num_clbits)
            )
            distribution[key] = distribution.get(key, 0.0) + pattern_prob

    # Scale to integer pseudo-counts for the TV helper.
    scale = 10**9
    return {bits: int(round(p * scale)) for bits, p in distribution.items()}


def run_convergence_study(
    circuit: QuantumCircuit,
    model: NoiseModel,
    trial_counts: Sequence[int] = (128, 512, 2048, 8192),
    seed: int = 2020,
) -> List[ConvergencePoint]:
    """TV distance to the exact distribution at each trial count."""
    exact = exact_distribution(circuit, model)
    points: List[ConvergencePoint] = []
    for num_trials in trial_counts:
        sim = NoisySimulator(circuit, model, seed=seed)
        result = sim.run(num_trials=num_trials)
        points.append(
            ConvergencePoint(
                num_trials=num_trials,
                tv_distance=total_variation_distance(result.counts, exact),
                computation_saving=result.metrics.computation_saving,
            )
        )
    return points
