"""Realistic-device experiments: Figs. 5 and 6 (and Table I context).

Runs the twelve Table I benchmarks, compiled to IBM Yorktown, under the
Fig. 4 calibration model, for the paper's four trial counts, and reports
normalized computation (Fig. 5) and Maintained State Vectors (Fig. 6).

All numbers come from the counting backend — the metric is exact and
identical to what the statevector backend would report (cross-checked in
the integration tests), but runs in milliseconds per configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.suite import TABLE1_BENCHMARKS, build_compiled_benchmark
from ..core.runner import NoisySimulator
from ..noise.devices import ibm_yorktown

__all__ = [
    "REALISTIC_TRIAL_COUNTS",
    "RealisticRecord",
    "run_realistic_experiment",
    "fig5_rows",
    "fig6_rows",
]

#: The trial counts of Fig. 5.
REALISTIC_TRIAL_COUNTS: Tuple[int, ...] = (1024, 2048, 4096, 8192)


class RealisticRecord:
    """One (benchmark, trial-count) cell of Figs. 5-6."""

    def __init__(
        self,
        benchmark: str,
        num_trials: int,
        normalized_computation: float,
        peak_msv: int,
        optimized_ops: int,
        baseline_ops: int,
        num_distinct_trials: int,
    ) -> None:
        self.benchmark = benchmark
        self.num_trials = num_trials
        self.normalized_computation = normalized_computation
        self.peak_msv = peak_msv
        self.optimized_ops = optimized_ops
        self.baseline_ops = baseline_ops
        self.num_distinct_trials = num_distinct_trials

    @property
    def computation_saving(self) -> float:
        return 1.0 - self.normalized_computation

    def __repr__(self) -> str:
        return (
            f"RealisticRecord({self.benchmark}, trials={self.num_trials}, "
            f"normalized={self.normalized_computation:.3f}, "
            f"msv={self.peak_msv})"
        )


def run_realistic_experiment(
    benchmarks: Optional[Sequence[str]] = None,
    trial_counts: Sequence[int] = REALISTIC_TRIAL_COUNTS,
    seed: int = 2020,
) -> List[RealisticRecord]:
    """Run the Fig. 5 / Fig. 6 sweep; one record per (benchmark, trials)."""
    names = list(benchmarks) if benchmarks else [
        spec.name for spec in TABLE1_BENCHMARKS
    ]
    model = ibm_yorktown()
    records: List[RealisticRecord] = []
    for name in names:
        circuit = build_compiled_benchmark(name)
        for num_trials in trial_counts:
            simulator = NoisySimulator(circuit, model, seed=seed)
            metrics = simulator.analyze(num_trials)
            records.append(
                RealisticRecord(
                    benchmark=name,
                    num_trials=num_trials,
                    normalized_computation=metrics.normalized_computation,
                    peak_msv=metrics.peak_msv,
                    optimized_ops=metrics.optimized_ops,
                    baseline_ops=metrics.baseline_ops,
                    num_distinct_trials=metrics.num_distinct_trials,
                )
            )
    return records


def fig5_rows(records: Sequence[RealisticRecord]) -> List[Dict[str, object]]:
    """Pivot records into Fig. 5's layout: benchmark x trial-count."""
    by_benchmark: Dict[str, Dict[str, object]] = {}
    for record in records:
        row = by_benchmark.setdefault(record.benchmark, {"benchmark": record.benchmark})
        row[f"{record.num_trials} trials"] = record.normalized_computation
    return list(by_benchmark.values())


def fig6_rows(
    records: Sequence[RealisticRecord], num_trials: int = 1024
) -> List[Dict[str, object]]:
    """Pivot records into Fig. 6's layout: MSVs per benchmark at one count."""
    rows = []
    for record in records:
        if record.num_trials == num_trials:
            rows.append(
                {"benchmark": record.benchmark, "msv": record.peak_msv}
            )
    return rows
