"""Randomized-benchmarking decay: a complete noisy-simulation application.

Table I's ``rb`` benchmark is one length of a randomized-benchmarking
experiment.  This module runs the whole protocol on the simulator: for
increasing sequence lengths, generate random self-inverting sequences,
simulate them under a noise model, and record the *survival probability*
(how often the ideal ``|0...0>`` outcome is measured).  Under depolarizing
noise the survival decays as ``A * p**m + B``; fitting that curve yields
the average error per round — exactly how real devices are characterized,
and a demanding end-to-end exercise of the trial-reordering simulator
(every sequence length is its own circuit with its own trial set).
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence, Tuple

import numpy as np

from ..bench.rb import rb_sequence
from ..core.runner import NoisySimulator
from ..noise.model import NoiseModel

__all__ = ["RBPoint", "run_rb_decay", "fit_rb_decay"]


class RBPoint(NamedTuple):
    """One sequence length of the RB protocol."""

    length: int
    survival: float
    computation_saving: float
    num_trials: int


def run_rb_decay(
    model: NoiseModel,
    lengths: Sequence[int] = (1, 2, 4, 8, 16, 32),
    num_qubits: int = 2,
    sequences_per_length: int = 3,
    trials_per_sequence: int = 512,
    seed: int = 2020,
) -> List[RBPoint]:
    """Measure survival probability vs sequence length under ``model``.

    Each length averages several random sequences (standard RB practice)
    to wash out sequence-specific coherent effects.
    """
    points: List[RBPoint] = []
    ideal = "0" * num_qubits
    for length in lengths:
        survivals = []
        savings = []
        for sequence_index in range(sequences_per_length):
            circuit = rb_sequence(
                num_qubits=num_qubits,
                length=length,
                seed=seed + 1000 * length + sequence_index,
            )
            sim = NoisySimulator(circuit, model, seed=seed + sequence_index)
            result = sim.run(num_trials=trials_per_sequence)
            survivals.append(
                result.counts.get(ideal, 0) / trials_per_sequence
            )
            savings.append(result.metrics.computation_saving)
        points.append(
            RBPoint(
                length=length,
                survival=float(np.mean(survivals)),
                computation_saving=float(np.mean(savings)),
                num_trials=sequences_per_length * trials_per_sequence,
            )
        )
    return points


def fit_rb_decay(points: Sequence[RBPoint]) -> Tuple[float, float, float]:
    """Fit ``survival = A * p**m + B``; returns ``(A, p, B)``.

    ``1 - p`` is (up to a dimensional factor) the average error per RB
    round.  Uses scipy when available, otherwise a log-linear fallback.
    """
    lengths = np.array([point.length for point in points], dtype=float)
    survivals = np.array([point.survival for point in points])
    try:
        from scipy.optimize import curve_fit

        def decay(m, a, p, b):
            return a * np.power(p, m) + b

        # B's asymptote for an n-qubit uniform ensemble is 1/2**n; start
        # from reasonable NISQ-ish values.  Few-point fits can have a
        # singular covariance estimate, which we do not use.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            (a, p, b), _ = curve_fit(
                decay,
                lengths,
                survivals,
                p0=(0.75, 0.95, 0.25),
                bounds=([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]),
                maxfev=20_000,
            )
        return float(a), float(p), float(b)
    except ImportError:  # pragma: no cover - scipy is an install extra
        floor = max(min(survivals) - 0.02, 1e-3)
        adjusted = np.clip(survivals - floor, 1e-6, None)
        slope, intercept = np.polyfit(lengths, np.log(adjusted), 1)
        return float(np.exp(intercept)), float(np.exp(slope)), float(floor)
