"""Paper-evaluation experiment drivers (Table I, Figs. 5-8) and ablations."""

from .ablations import (
    ablation_report,
    chunk_sweep,
    chunked_ops,
    consecutive_reuse_ops,
    dedup_only_ops,
    trial_cost,
)
from .convergence import (
    ConvergencePoint,
    exact_distribution,
    run_convergence_study,
)
from .rb_decay import RBPoint, fit_rb_decay, run_rb_decay
from .realistic import (
    REALISTIC_TRIAL_COUNTS,
    RealisticRecord,
    fig5_rows,
    fig6_rows,
    run_realistic_experiment,
)
from .scalability import (
    ScalabilityRecord,
    error_level_label,
    fig7_rows,
    fig8_rows,
    run_scalability_experiment,
)

__all__ = [
    "REALISTIC_TRIAL_COUNTS",
    "ablation_report",
    "chunk_sweep",
    "chunked_ops",
    "consecutive_reuse_ops",
    "dedup_only_ops",
    "trial_cost",
    "ConvergencePoint",
    "RBPoint",
    "exact_distribution",
    "run_convergence_study",
    "RealisticRecord",
    "ScalabilityRecord",
    "error_level_label",
    "fig5_rows",
    "fit_rb_decay",
    "run_rb_decay",
    "fig6_rows",
    "fig7_rows",
    "fig8_rows",
    "run_realistic_experiment",
    "run_scalability_experiment",
]
