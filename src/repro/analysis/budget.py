"""Error-budget breakdown: which noise source dominates a workload.

For a compiled circuit under a noise model, decompose the expected number
of fired error positions per trial into sources — single-qubit gates,
two-qubit gates, idle qubits — plus the expected readout flips.  This is
the standard first question of NISQ-era benchmarking ("is this circuit
CNOT-limited?") and directly explains the optimizer's behaviour: the
source breakdown determines the error-free fraction and hence the
saving (see :mod:`repro.analysis.predictor`).
"""

from __future__ import annotations

from typing import Dict, List

from ..circuits.layers import LayeredCircuit
from ..noise.model import NoiseModel

__all__ = ["ErrorBudget", "error_budget"]


class ErrorBudget:
    """Expected error contributions per trial, by source."""

    def __init__(
        self,
        single_qubit: float,
        two_qubit: float,
        idle: float,
        readout: float,
        num_positions: int,
    ) -> None:
        self.single_qubit = single_qubit
        self.two_qubit = two_qubit
        self.idle = idle
        self.readout = readout
        self.num_positions = num_positions

    @property
    def gate_total(self) -> float:
        """Expected fired gate/idle positions per trial (quantum errors)."""
        return self.single_qubit + self.two_qubit + self.idle

    @property
    def total(self) -> float:
        """All expected error events per trial, readout included."""
        return self.gate_total + self.readout

    def dominant_source(self) -> str:
        """Name of the largest contribution."""
        contributions = {
            "single_qubit": self.single_qubit,
            "two_qubit": self.two_qubit,
            "idle": self.idle,
            "readout": self.readout,
        }
        return max(contributions, key=contributions.get)

    def fractions(self) -> Dict[str, float]:
        """Each source's share of the total (empty-safe)."""
        if self.total <= 0:
            return {k: 0.0 for k in ("single_qubit", "two_qubit", "idle", "readout")}
        return {
            "single_qubit": self.single_qubit / self.total,
            "two_qubit": self.two_qubit / self.total,
            "idle": self.idle / self.total,
            "readout": self.readout / self.total,
        }

    def as_rows(self) -> List[Dict[str, object]]:
        fractions = self.fractions()
        return [
            {
                "source": name,
                "expected_per_trial": getattr(self, name if name != "readout" else "readout"),
                "share": fractions[name],
            }
            for name in ("single_qubit", "two_qubit", "idle", "readout")
        ]

    def __repr__(self) -> str:
        return (
            f"ErrorBudget(total={self.total:.4f}, "
            f"dominant={self.dominant_source()!r})"
        )


def error_budget(layered: LayeredCircuit, model: NoiseModel) -> ErrorBudget:
    """Compute the :class:`ErrorBudget` of ``layered`` under ``model``."""
    single = 0.0
    double = 0.0
    idle = 0.0
    positions = model.error_positions(layered)
    # Gate positions carry the gate's qubits; idle positions are the
    # 1-qubit positions whose (layer, qubit) is touched by no gate.
    touched_by_layer = [
        {q for op in layer for q in op.qubits} for layer in layered.layers
    ]
    for position in positions:
        probability = position.channel.total_probability
        if len(position.qubits) >= 2:
            double += probability
        elif position.qubits[0] in touched_by_layer[position.layer]:
            single += probability
        else:
            idle += probability
    readout = sum(
        probability for _, probability in model.measurement_positions(layered)
    )
    return ErrorBudget(
        single_qubit=single,
        two_qubit=double,
        idle=idle,
        readout=readout,
        num_positions=len(positions),
    )
