"""Statistics helpers for comparing noisy-simulation outputs.

Used by the validation suites (optimized vs baseline vs density matrix)
and by the experiment harness to summarize sweeps.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

__all__ = [
    "normalize_counts",
    "total_variation_distance",
    "hellinger_fidelity",
    "geometric_mean",
    "counts_to_probability_vector",
]


def normalize_counts(counts: Dict[str, int]) -> Dict[str, float]:
    """Turn a histogram into a probability distribution."""
    total = sum(counts.values())
    if total <= 0:
        return {}
    return {key: value / total for key, value in counts.items()}


def total_variation_distance(
    counts_a: Dict[str, int], counts_b: Dict[str, int]
) -> float:
    """TV distance between two (possibly unnormalized) histograms."""
    dist_a = normalize_counts(counts_a)
    dist_b = normalize_counts(counts_b)
    keys = set(dist_a) | set(dist_b)
    return 0.5 * sum(abs(dist_a.get(k, 0.0) - dist_b.get(k, 0.0)) for k in keys)


def hellinger_fidelity(
    counts_a: Dict[str, int], counts_b: Dict[str, int]
) -> float:
    """Classical (Bhattacharyya) fidelity between two histograms, in [0,1]."""
    dist_a = normalize_counts(counts_a)
    dist_b = normalize_counts(counts_b)
    keys = set(dist_a) | set(dist_b)
    overlap = sum(
        math.sqrt(dist_a.get(k, 0.0) * dist_b.get(k, 0.0)) for k in keys
    )
    return overlap**2


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the standard aggregate for normalized metrics."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return float(np.exp(np.mean(np.log(values))))


def counts_to_probability_vector(
    counts: Dict[str, int], num_bits: int
) -> np.ndarray:
    """Dense probability vector (index = bitstring as big-endian integer)."""
    vector = np.zeros(2**num_bits)
    total = sum(counts.values())
    if total == 0:
        return vector
    for bits, count in counts.items():
        if len(bits) != num_bits or set(bits) - {"0", "1"}:
            raise ValueError(f"bad bitstring {bits!r} for {num_bits} bits")
        vector[int(bits, 2)] = count / total
    return vector
