"""Sharing-structure analysis: *why* a trial set saves what it saves.

Given a trial set, these diagnostics decompose the optimizer's benefit
into interpretable quantities:

* the adjacent shared-prefix histogram after reordering (how deep the
  reuse goes),
* trie shape statistics (distinct prefixes, branch factor, depth),
* the duplicate mass (how many trials are literal copies),
* a per-source breakdown of where the optimized operations went
  (shared-frontier layers vs per-trial unique suffixes).

Used by the ``trial_reordering_anatomy`` example and handy when a
workload saves less than expected: a flat LCP histogram means the error
rate is too high for prefix sharing, while a huge duplicate mass means
dedup does all the work.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..circuits.layers import LayeredCircuit
from ..core.events import Trial
from ..core.executor import baseline_operation_count, run_optimized
from ..core.reorder import adjacent_prefix_lengths, reorder_trials
from ..core.trie import TrialTrie
from ..sim.counting import CountingBackend

__all__ = ["SharingReport", "analyze_sharing"]


class SharingReport:
    """Diagnostics of a trial set's reuse structure."""

    def __init__(
        self,
        num_trials: int,
        num_distinct: int,
        duplicate_fraction: float,
        lcp_histogram: Dict[int, int],
        mean_lcp: float,
        trie_nodes: int,
        trie_branch_nodes: int,
        trie_depth: int,
        optimized_ops: int,
        baseline_ops: int,
        peak_msv: int,
    ) -> None:
        self.num_trials = num_trials
        self.num_distinct = num_distinct
        #: Fraction of trials that are exact copies of an earlier trial.
        self.duplicate_fraction = duplicate_fraction
        #: ``shared prefix length -> count`` over consecutive reordered pairs.
        self.lcp_histogram = lcp_histogram
        self.mean_lcp = mean_lcp
        self.trie_nodes = trie_nodes
        self.trie_branch_nodes = trie_branch_nodes
        self.trie_depth = trie_depth
        self.optimized_ops = optimized_ops
        self.baseline_ops = baseline_ops
        self.peak_msv = peak_msv

    @property
    def normalized_computation(self) -> float:
        if self.baseline_ops == 0:
            return 1.0
        return self.optimized_ops / self.baseline_ops

    @property
    def computation_saving(self) -> float:
        return 1.0 - self.normalized_computation

    def as_rows(self) -> List[Dict[str, object]]:
        """Flat key/value rows for table rendering."""
        rows = [
            {"quantity": "trials", "value": self.num_trials},
            {"quantity": "distinct trials", "value": self.num_distinct},
            {"quantity": "duplicate fraction", "value": self.duplicate_fraction},
            {"quantity": "mean adjacent LCP", "value": self.mean_lcp},
            {"quantity": "trie nodes", "value": self.trie_nodes},
            {"quantity": "trie branch nodes", "value": self.trie_branch_nodes},
            {"quantity": "trie depth", "value": self.trie_depth},
            {"quantity": "peak MSV", "value": self.peak_msv},
            {"quantity": "computation saving", "value": self.computation_saving},
        ]
        return rows

    def __repr__(self) -> str:
        return (
            f"SharingReport(trials={self.num_trials}, "
            f"dupes={self.duplicate_fraction:.2f}, "
            f"saving={self.computation_saving:.2f})"
        )


def analyze_sharing(
    layered: LayeredCircuit, trials: Sequence[Trial]
) -> SharingReport:
    """Compute the full :class:`SharingReport` for ``trials``."""
    if not trials:
        raise ValueError("cannot analyze an empty trial set")
    ordered = reorder_trials(trials)
    lcps = adjacent_prefix_lengths(ordered)
    histogram: Dict[int, int] = {}
    for value in lcps:
        histogram[value] = histogram.get(value, 0) + 1
    distinct = len(set(trials))
    trie = TrialTrie(trials)
    outcome = run_optimized(layered, trials, CountingBackend(layered))
    return SharingReport(
        num_trials=len(trials),
        num_distinct=distinct,
        duplicate_fraction=1.0 - distinct / len(trials),
        lcp_histogram=histogram,
        mean_lcp=(sum(lcps) / len(lcps)) if lcps else 0.0,
        trie_nodes=trie.num_nodes,
        trie_branch_nodes=trie.count_branch_nodes(),
        trie_depth=trie.depth(),
        optimized_ops=outcome.ops_applied,
        baseline_ops=baseline_operation_count(layered, trials),
        peak_msv=outcome.peak_msv,
    )
