"""Analytic predictors for the optimization's benefit.

Before sampling a single trial, the noise model determines how much the
trial-reordering optimization can save:

* the probability that a trial is completely error-free is
  ``q = prod(1 - p_i)`` over all error positions — every error-free trial
  beyond the first is deduplicated for free;
* the expected number of fired positions per trial is
  ``lam = sum(p_i)`` — the paper's scalability story (Figs. 7-8) is the
  decline of sharing as ``lam`` grows.

:func:`predict_saving_lower_bound` turns the error-free dedup alone into a
guaranteed-in-expectation lower bound on the computation saving, and
:func:`predict_summary` bundles the quantities a user needs to decide
whether to enable the optimization.  The bound's validity (measured saving
>= predicted bound) is asserted in the test suite across benchmarks and
error rates.
"""

from __future__ import annotations

from typing import Dict

from ..circuits.layers import LayeredCircuit
from ..noise.model import NoiseModel

__all__ = [
    "error_free_probability",
    "expected_fired_positions",
    "predict_saving_lower_bound",
    "predict_summary",
]


def error_free_probability(layered: LayeredCircuit, model: NoiseModel) -> float:
    """``prod(1 - p_i)`` — the chance a trial injects no error at all."""
    probability = 1.0
    for position in model.error_positions(layered):
        probability *= 1.0 - position.channel.total_probability
    return probability


def expected_fired_positions(layered: LayeredCircuit, model: NoiseModel) -> float:
    """``sum(p_i)`` — mean number of error positions that fire per trial."""
    return sum(
        position.channel.total_probability
        for position in model.error_positions(layered)
    )


def predict_saving_lower_bound(
    layered: LayeredCircuit, model: NoiseModel, num_trials: int
) -> float:
    """Expected-saving lower bound from error-free deduplication alone.

    Of ``N`` trials, ``N * q`` are error-free in expectation and share one
    execution of ``G`` gates; the baseline pays ``G`` for each.  Ignoring
    every other sharing mechanism (single-error dedup, prefix reuse) gives

        saving >= (N*q - 1) * G / baseline_ops

    with ``baseline_ops ~= N * (G + lam_events)``.  This is deliberately
    conservative — at realistic error rates the measured saving is much
    higher — but it is computable in microseconds from the model alone.
    """
    if num_trials < 1:
        raise ValueError(f"need at least one trial, got {num_trials}")
    gates = layered.num_gates
    if gates == 0:
        return 0.0
    q = error_free_probability(layered, model)
    expected_error_free = num_trials * q
    if expected_error_free <= 1.0:
        return 0.0
    # Expected events per trial: fired positions weighted by mean label
    # weight; bounding weight by 1 keeps the denominator conservative.
    lam = expected_fired_positions(layered, model)
    baseline = num_trials * (gates + lam)
    saved = (expected_error_free - 1.0) * gates
    return max(0.0, min(1.0, saved / baseline))


def predict_summary(
    layered: LayeredCircuit, model: NoiseModel, num_trials: int
) -> Dict[str, float]:
    """All predictor quantities in one dict (for reports and the CLI)."""
    q = error_free_probability(layered, model)
    lam = expected_fired_positions(layered, model)
    return {
        "num_positions": float(len(model.error_positions(layered))),
        "error_free_probability": q,
        "expected_fired_positions": lam,
        "expected_error_free_trials": num_trials * q,
        "saving_lower_bound": predict_saving_lower_bound(
            layered, model, num_trials
        ),
    }
