"""Result statistics and text reporting."""

from .budget import ErrorBudget, error_budget
from .predictor import (
    error_free_probability,
    expected_fired_positions,
    predict_saving_lower_bound,
    predict_summary,
)
from .sharing import SharingReport, analyze_sharing
from .report import format_value, render_table, rows_to_table
from .stats import (
    counts_to_probability_vector,
    geometric_mean,
    hellinger_fidelity,
    normalize_counts,
    total_variation_distance,
)

__all__ = [
    "counts_to_probability_vector",
    "ErrorBudget",
    "error_budget",
    "error_free_probability",
    "expected_fired_positions",
    "predict_saving_lower_bound",
    "predict_summary",
    "format_value",
    "geometric_mean",
    "hellinger_fidelity",
    "normalize_counts",
    "render_table",
    "SharingReport",
    "analyze_sharing",
    "rows_to_table",
    "total_variation_distance",
]
