"""Plain-text table rendering for the experiment harness.

The paper's figures are bar charts; we regenerate the underlying numbers
and print them as aligned text tables (one row per benchmark / circuit,
one column per configuration), which is what the CLI and EXPERIMENTS.md
use.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

__all__ = ["render_table", "format_value", "rows_to_table"]


def format_value(value: object, precision: int = 3) -> str:
    """Human formatting: floats rounded, everything else ``str()``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    text_rows = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in text_rows)
    return "\n".join(lines)


def rows_to_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows, columns in first-row (or given) order."""
    if not rows:
        return title or "(no rows)"
    keys = list(columns) if columns else list(rows[0].keys())
    data = [[row.get(key, "") for key in keys] for row in rows]
    return render_table(keys, data, precision=precision, title=title)
