"""Post-compilation circuit optimization passes.

Real compilation pipelines (Enfield's included) clean up after routing:
SWAP expansion and decomposition templates leave adjacent inverse pairs
and runs of single-qubit gates.  Two standard peephole passes are
provided:

* :func:`cancel_inverse_pairs` — removes adjacent gate pairs that multiply
  to the identity (``h h``, ``cx cx`` on the same qubits, ``s sdg``, ...),
  iterating to a fixed point so newly adjacent pairs cancel too;
* :func:`fuse_single_qubit_runs` — multiplies each maximal run of
  single-qubit gates on one qubit into a single ``u3`` (up to global
  phase), the canonical basis of IBM-style devices.

Both passes preserve the circuit unitary exactly (up to global phase),
which the test suite verifies on random circuits.  Fewer gates also means
fewer error positions, so :func:`optimize_circuit` quantifies how
compilation quality interacts with the paper's noise model (see the
``compiler_quality`` ablation benchmark).
"""

from __future__ import annotations

import cmath
import math
from typing import List, Optional, Tuple

import numpy as np

from ..circuits.circuit import (
    Barrier,
    GateOp,
    Instruction,
    Measurement,
    QuantumCircuit,
)
from ..circuits.gates import standard_gate

__all__ = [
    "cancel_inverse_pairs",
    "fuse_single_qubit_runs",
    "optimize_circuit",
    "u3_params_from_matrix",
]

_ATOL = 1e-10

#: Self-inverse gates and explicit inverse pairs.
_INVERSE_OF = {
    "h": "h",
    "x": "x",
    "y": "y",
    "z": "z",
    "cx": "cx",
    "cz": "cz",
    "cy": "cy",
    "swap": "swap",
    "ccx": "ccx",
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
    "id": "id",
}


def _ops_cancel(first: GateOp, second: GateOp) -> bool:
    """Do two adjacent ops multiply to the identity?"""
    if first.qubits != second.qubits:
        return False
    name_a, name_b = first.gate.name, second.gate.name
    if _INVERSE_OF.get(name_a) == name_b:
        return True
    # Parametric inverses: equal-and-opposite rotations.
    if name_a == name_b and name_a in ("rx", "ry", "rz", "u1", "crz", "cu1"):
        return abs(first.gate.params[0] + second.gate.params[0]) < _ATOL
    # Fallback: explicit matrix product (cheap for 1-2 qubit gates).
    if first.gate.num_qubits <= 2:
        product = second.gate.matrix @ first.gate.matrix
        anchor = product[0, 0]
        if abs(abs(anchor) - 1.0) > _ATOL:
            return False
        dim = product.shape[0]
        return bool(np.allclose(product, anchor * np.eye(dim), atol=1e-9))
    return False


def cancel_inverse_pairs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove adjacent mutually-inverse gate pairs (to a fixed point).

    "Adjacent" means no intervening instruction touches any of the pair's
    qubits; barriers block cancellation across them.
    """
    instructions: List[Instruction] = list(circuit.instructions)
    changed = True
    while changed:
        changed = False
        result: List[Instruction] = []
        for instr in instructions:
            if isinstance(instr, GateOp):
                partner_index = _find_cancel_partner(result, instr)
                if partner_index is not None:
                    del result[partner_index]
                    changed = True
                    continue
            result.append(instr)
        instructions = result
    optimized = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, name=circuit.name
    )
    for instr in instructions:
        optimized.append(instr)
    return optimized


def _find_cancel_partner(
    emitted: List[Instruction], op: GateOp
) -> Optional[int]:
    """Index in ``emitted`` of a gate that cancels with ``op``, if legal."""
    targets = set(op.qubits)
    for index in range(len(emitted) - 1, -1, -1):
        candidate = emitted[index]
        if isinstance(candidate, Barrier):
            # An empty barrier covers every qubit.
            if not candidate.qubits or set(candidate.qubits) & targets:
                return None
            continue
        if isinstance(candidate, Measurement):
            if candidate.qubit in targets:
                return None
            continue
        overlap = set(candidate.qubits) & targets
        if not overlap:
            continue
        if set(candidate.qubits) == targets and _ops_cancel(candidate, op):
            return index
        return None
    return None


def u3_params_from_matrix(matrix: np.ndarray) -> Tuple[float, float, float]:
    """Extract ``(theta, phi, lam)`` with ``u3 == matrix`` up to phase."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.shape != (2, 2):
        raise ValueError("u3 extraction needs a 2x2 matrix")
    # Remove global phase so that the (0,0) entry is real non-negative.
    theta = 2.0 * math.atan2(abs(matrix[1, 0]), abs(matrix[0, 0]))
    if abs(matrix[0, 0]) > _ATOL:
        phase = matrix[0, 0] / abs(matrix[0, 0])
    else:
        phase = -matrix[0, 1] / abs(matrix[0, 1])
    normalized = matrix / phase
    if abs(normalized[1, 0]) > _ATOL:
        phi = cmath.phase(normalized[1, 0])
    else:
        phi = 0.0
    if abs(normalized[0, 1]) > _ATOL:
        lam = cmath.phase(-normalized[0, 1])
    elif abs(normalized[1, 1]) > _ATOL:
        lam = cmath.phase(normalized[1, 1]) - phi
    else:
        lam = 0.0
    return theta, phi, lam


def fuse_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse maximal single-qubit gate runs into one ``u3`` per run.

    Runs of length one are kept as-is (no gain).  Identity products are
    dropped entirely.
    """
    optimized = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, name=circuit.name
    )
    pending: dict = {}  # qubit -> (matrix, count)

    def flush(qubit: int, original_ops: List[GateOp]) -> None:
        entry = pending.pop(qubit, None)
        if entry is None:
            return
        matrix, ops = entry
        if len(ops) == 1:
            optimized.append(ops[0])
            return
        anchor = matrix.flat[np.argmax(np.abs(matrix))]
        if np.allclose(matrix, (anchor / abs(anchor)) * np.eye(2), atol=1e-9):
            return  # the run multiplies to identity
        theta, phi, lam = u3_params_from_matrix(matrix)
        optimized.apply(standard_gate("u3", (theta, phi, lam)), qubit)

    for instr in circuit:
        if isinstance(instr, GateOp) and instr.gate.num_qubits == 1:
            qubit = instr.qubits[0]
            matrix, ops = pending.get(qubit, (np.eye(2, dtype=complex), []))
            pending[qubit] = (instr.gate.matrix @ matrix, ops + [instr])
            continue
        touched = (
            instr.qubits
            if isinstance(instr, (GateOp, Barrier))
            else (instr.qubit,)
        )
        if isinstance(instr, Barrier) and not instr.qubits:
            touched = tuple(range(circuit.num_qubits))
        for qubit in touched:
            flush(qubit, [])
        optimized.append(instr)
    for qubit in list(pending):
        flush(qubit, [])
    return optimized


def optimize_circuit(circuit: QuantumCircuit, fuse: bool = True) -> QuantumCircuit:
    """Cancellation followed by (optional) single-qubit fusion."""
    optimized = cancel_inverse_pairs(circuit)
    if fuse:
        optimized = fuse_single_qubit_runs(optimized)
        optimized = cancel_inverse_pairs(optimized)
    return optimized
