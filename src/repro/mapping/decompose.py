"""Gate decomposition into the device basis {single-qubit gates, CNOT}.

The paper's target device (IBM Yorktown) supports arbitrary single-qubit
gates plus CNOT as its only two-qubit gate; every benchmark is compiled to
that basis before simulation (Table I counts "Single #" and "CNOT #").
This pass rewrites the named multi-qubit library gates with their standard
``qelib1.inc`` decompositions; every rewrite is verified (unit tests) to
reproduce the original unitary exactly or up to global phase.
"""

from __future__ import annotations

from typing import List

from ..circuits.circuit import (
    GateOp,
    QuantumCircuit,
)
from ..circuits.gates import standard_gate

__all__ = ["DecomposeError", "decompose_to_basis", "decompose_gate_op"]


class DecomposeError(ValueError):
    """Raised when a gate has no known basis decomposition."""


def _swap(a: int, b: int) -> List[GateOp]:
    cx = standard_gate("cx")
    return [GateOp(cx, (a, b)), GateOp(cx, (b, a)), GateOp(cx, (a, b))]


def _cz(control: int, target: int) -> List[GateOp]:
    h = standard_gate("h")
    return [
        GateOp(h, (target,)),
        GateOp(standard_gate("cx"), (control, target)),
        GateOp(h, (target,)),
    ]


def _cy(control: int, target: int) -> List[GateOp]:
    return [
        GateOp(standard_gate("sdg"), (target,)),
        GateOp(standard_gate("cx"), (control, target)),
        GateOp(standard_gate("s"), (target,)),
    ]


def _ch(control: int, target: int) -> List[GateOp]:
    # qelib1.inc: gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b;
    #                          t b; h b; s b; x b; s a; }
    ops = []
    for name, qubit in (
        ("h", target),
        ("sdg", target),
    ):
        ops.append(GateOp(standard_gate(name), (qubit,)))
    ops.append(GateOp(standard_gate("cx"), (control, target)))
    ops.append(GateOp(standard_gate("h"), (target,)))
    ops.append(GateOp(standard_gate("t"), (target,)))
    ops.append(GateOp(standard_gate("cx"), (control, target)))
    for name, qubit in (
        ("t", target),
        ("h", target),
        ("s", target),
        ("x", target),
        ("s", control),
    ):
        ops.append(GateOp(standard_gate(name), (qubit,)))
    return ops


def _crz(theta: float, control: int, target: int) -> List[GateOp]:
    cx = standard_gate("cx")
    return [
        GateOp(standard_gate("rz", (theta / 2,)), (target,)),
        GateOp(cx, (control, target)),
        GateOp(standard_gate("rz", (-theta / 2,)), (target,)),
        GateOp(cx, (control, target)),
    ]


def _cu1(lam: float, control: int, target: int) -> List[GateOp]:
    cx = standard_gate("cx")
    return [
        GateOp(standard_gate("u1", (lam / 2,)), (control,)),
        GateOp(cx, (control, target)),
        GateOp(standard_gate("u1", (-lam / 2,)), (target,)),
        GateOp(cx, (control, target)),
        GateOp(standard_gate("u1", (lam / 2,)), (target,)),
    ]


def _rzz(theta: float, a: int, b: int) -> List[GateOp]:
    cx = standard_gate("cx")
    return [
        GateOp(cx, (a, b)),
        GateOp(standard_gate("rz", (theta,)), (b,)),
        GateOp(cx, (a, b)),
    ]


def _rxx(theta: float, a: int, b: int) -> List[GateOp]:
    h = standard_gate("h")
    ops = [GateOp(h, (a,)), GateOp(h, (b,))]
    ops.extend(_rzz(theta, a, b))
    ops.extend([GateOp(h, (a,)), GateOp(h, (b,))])
    return ops


def _cswap(control: int, t1: int, t2: int) -> List[GateOp]:
    # qelib1.inc: cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
    cx = standard_gate("cx")
    ops = [GateOp(cx, (t2, t1))]
    ops.extend(_ccx(control, t1, t2))
    ops.append(GateOp(cx, (t2, t1)))
    return ops


def _ccx(a: int, b: int, c: int) -> List[GateOp]:
    # qelib1.inc Toffoli: 6 CNOTs + single-qubit phase gates.
    cx = standard_gate("cx")
    ops = [GateOp(standard_gate("h"), (c,))]
    ops.append(GateOp(cx, (b, c)))
    ops.append(GateOp(standard_gate("tdg"), (c,)))
    ops.append(GateOp(cx, (a, c)))
    ops.append(GateOp(standard_gate("t"), (c,)))
    ops.append(GateOp(cx, (b, c)))
    ops.append(GateOp(standard_gate("tdg"), (c,)))
    ops.append(GateOp(cx, (a, c)))
    ops.append(GateOp(standard_gate("t"), (b,)))
    ops.append(GateOp(standard_gate("t"), (c,)))
    ops.append(GateOp(standard_gate("h"), (c,)))
    ops.append(GateOp(cx, (a, b)))
    ops.append(GateOp(standard_gate("t"), (a,)))
    ops.append(GateOp(standard_gate("tdg"), (b,)))
    ops.append(GateOp(cx, (a, b)))
    return ops


def decompose_gate_op(op: GateOp) -> List[GateOp]:
    """Rewrite one gate op into the {1q, CNOT} basis (identity for 1q/cx)."""
    gate = op.gate
    if gate.num_qubits == 1 or gate.name == "cx":
        return [op]
    qubits = op.qubits
    if gate.name == "swap":
        return _swap(*qubits)
    if gate.name == "cz":
        return _cz(*qubits)
    if gate.name == "cy":
        return _cy(*qubits)
    if gate.name == "ch":
        return _ch(*qubits)
    if gate.name == "crz":
        return _crz(gate.params[0], *qubits)
    if gate.name in ("cu1", "cp"):
        return _cu1(gate.params[0], *qubits)
    if gate.name == "rzz":
        return _rzz(gate.params[0], *qubits)
    if gate.name == "rxx":
        return _rxx(gate.params[0], *qubits)
    if gate.name == "ccx":
        return _ccx(*qubits)
    if gate.name == "cswap":
        return _cswap(*qubits)
    raise DecomposeError(
        f"no known {{1q, CNOT}} decomposition for gate {gate.name!r}"
    )


def decompose_to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite every gate of ``circuit`` into the {1q, CNOT} basis."""
    result = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, name=circuit.name
    )
    for instr in circuit:
        if isinstance(instr, GateOp):
            for op in decompose_gate_op(instr):
                result.append(op)
        else:
            result.append(instr)
    return result
