"""Lookahead SWAP routing (SABRE-style) — a better Enfield substitute.

The greedy router (:mod:`repro.mapping.router`) walks each far CNOT along
a shortest path independently, which can thrash the layout on permutation
-heavy circuits (Quantum Volume).  This module implements the core idea
of SABRE (Li, Ding, Xie — the same authors — ASPLOS 2019): maintain the
set of *front* gates blocked on connectivity, and pick the SWAP that
minimizes the summed distance of the front plus a discounted lookahead
window, so one SWAP can unblock several upcoming gates.

Exposed as ``compile_for_device(..., router="sabre")`` through
:func:`route_circuit_lookahead`; the router-comparison benchmark measures
the SWAP-count win over greedy on the Table I workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.circuit import (
    Barrier,
    CircuitError,
    GateOp,
    Instruction,
    Measurement,
    QuantumCircuit,
)
from ..circuits.gates import standard_gate
from .coupling import CouplingMap
from .router import MappedCircuit, _initial_layout

__all__ = ["route_circuit_lookahead"]

#: Discount applied to the lookahead window's distance contribution.
_LOOKAHEAD_WEIGHT = 0.5
#: How many upcoming blocked two-qubit gates the heuristic peeks at.
_LOOKAHEAD_DEPTH = 8


class _DependencyTracker:
    """Per-qubit program-order dependencies over the instruction list."""

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.instructions: List[Instruction] = list(circuit.instructions)
        self.done = [False] * len(self.instructions)
        self._queues: Dict[int, List[int]] = {
            q: [] for q in range(circuit.num_qubits)
        }
        for index, instr in enumerate(self.instructions):
            for qubit in self._touched(instr, circuit.num_qubits):
                self._queues[qubit].append(index)
        self._heads: Dict[int, int] = {q: 0 for q in self._queues}

    @staticmethod
    def _touched(instr: Instruction, num_qubits: int) -> Tuple[int, ...]:
        if isinstance(instr, Measurement):
            return (instr.qubit,)
        if isinstance(instr, Barrier):
            return instr.qubits or tuple(range(num_qubits))
        return instr.qubits

    def _front_of(self, qubit: int) -> Optional[int]:
        queue = self._queues[qubit]
        head = self._heads[qubit]
        while head < len(queue) and self.done[queue[head]]:
            head += 1
        self._heads[qubit] = head
        return queue[head] if head < len(queue) else None

    def executable(self, num_qubits: int) -> List[int]:
        """Indices whose every touched qubit has them at the front."""
        candidates = set()
        for qubit in range(num_qubits):
            index = self._front_of(qubit)
            if index is not None:
                candidates.add(index)
        ready = []
        for index in sorted(candidates):
            instr = self.instructions[index]
            touched = self._touched(instr, num_qubits)
            if all(self._front_of(q) == index for q in touched):
                ready.append(index)
        return ready

    def pending_two_qubit(self, limit: int) -> List[GateOp]:
        """The next up-to-``limit`` unexecuted two-qubit gates, in order."""
        found = []
        for index, instr in enumerate(self.instructions):
            if self.done[index]:
                continue
            if isinstance(instr, GateOp) and len(instr.qubits) == 2:
                found.append(instr)
                if len(found) >= limit:
                    break
        return found

    @property
    def all_done(self) -> bool:
        return all(self.done)


def route_circuit_lookahead(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Dict[int, int]] = None,
) -> MappedCircuit:
    """Route with the SABRE-style lookahead heuristic.

    Same contract as :func:`repro.mapping.router.route_circuit`: the input
    must be in the {1q, 2q} basis; the output applies every two-qubit gate
    on a coupled pair and preserves classical semantics.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise CircuitError(
            f"circuit needs {circuit.num_qubits} qubits but device has "
            f"{coupling.num_qubits}"
        )
    if circuit.has_mid_circuit_measurement():
        raise CircuitError(
            "the lookahead router requires terminal measurements (it "
            "defers them past inserted SWAPs)"
        )
    layout = (
        dict(initial_layout)
        if initial_layout
        else _initial_layout(circuit, coupling)
    )
    first_layout = dict(layout)
    if len(set(layout.values())) != len(layout):
        raise CircuitError("layout maps two logical qubits to one physical qubit")
    for physical in layout.values():
        if not 0 <= physical < coupling.num_qubits:
            raise CircuitError(f"layout uses invalid physical qubit {physical}")

    reverse: Dict[int, Optional[int]] = {
        physical: logical for logical, physical in layout.items()
    }
    tracker = _DependencyTracker(circuit)
    routed = QuantumCircuit(
        coupling.num_qubits, circuit.num_clbits, name=circuit.name
    )
    swap_gate = standard_gate("swap")
    swaps = 0
    stall_guard = 0
    stall_limit = 10 * (len(tracker.instructions) + coupling.num_qubits) + 100

    def emit(instr: Instruction) -> None:
        if isinstance(instr, Measurement):
            routed.measure(layout[instr.qubit], instr.clbit)
        elif isinstance(instr, Barrier):
            qubits = instr.qubits or tuple(range(circuit.num_qubits))
            routed.barrier(*(layout[q] for q in qubits))
        elif len(instr.qubits) == 1:
            routed.apply(instr.gate, layout[instr.qubits[0]])
        else:
            routed.apply(instr.gate, *(layout[q] for q in instr.qubits))

    def apply_swap(pa: int, pb: int) -> None:
        nonlocal swaps
        routed.apply(swap_gate, pa, pb)
        swaps += 1
        la, lb = reverse.get(pa), reverse.get(pb)
        if la is not None:
            layout[la] = pb
        if lb is not None:
            layout[lb] = pa
        reverse[pa], reverse[pb] = lb, la

    def front_distance(
        trial_layout: Dict[int, int], gates: Sequence[GateOp]
    ) -> float:
        return sum(
            coupling.distance(trial_layout[g.qubits[0]], trial_layout[g.qubits[1]])
            for g in gates
        )

    deferred_measurements: List[Measurement] = []

    while not tracker.all_done:
        progressed = False
        for index in tracker.executable(circuit.num_qubits):
            instr = tracker.instructions[index]
            is_far_2q = (
                isinstance(instr, GateOp)
                and len(instr.qubits) == 2
                and not coupling.connected(
                    layout[instr.qubits[0]], layout[instr.qubits[1]]
                )
            )
            if is_far_2q:
                continue
            if isinstance(instr, GateOp) and len(instr.qubits) > 2:
                raise CircuitError(
                    f"router needs a {{1q, 2q}} basis; decompose "
                    f"{instr.gate.name!r} first"
                )
            if isinstance(instr, Measurement):
                # Terminal measurements are deferred past any SWAPs the
                # remaining gates may still insert on this physical wire;
                # the final layout resolves them below.
                deferred_measurements.append(instr)
            else:
                emit(instr)
            tracker.done[index] = True
            progressed = True
        if tracker.all_done:
            break
        if progressed:
            continue

        # Every executable gate is a far two-qubit gate: pick a SWAP.
        stall_guard += 1
        if stall_guard > stall_limit:  # pragma: no cover - safety net
            raise CircuitError("router failed to make progress")
        front = [
            tracker.instructions[i]
            for i in tracker.executable(circuit.num_qubits)
            if isinstance(tracker.instructions[i], GateOp)
            and len(tracker.instructions[i].qubits) == 2
        ]
        lookahead = tracker.pending_two_qubit(_LOOKAHEAD_DEPTH)
        candidates = set()
        for gate in front:
            for logical in gate.qubits:
                physical = layout[logical]
                for neighbor in coupling.neighbors(physical):
                    candidates.add(tuple(sorted((physical, neighbor))))
        best_swap = None
        best_score = None
        current = front_distance(layout, front)
        for pa, pb in sorted(candidates):
            trial = dict(layout)
            la, lb = reverse.get(pa), reverse.get(pb)
            if la is not None:
                trial[la] = pb
            if lb is not None:
                trial[lb] = pa
            score = front_distance(trial, front) + _LOOKAHEAD_WEIGHT * (
                front_distance(trial, lookahead)
            )
            if best_score is None or score < best_score:
                best_score = score
                best_swap = (pa, pb)
        # Guarantee progress: if the heuristic stalls (score not better on
        # the front), fall back to a shortest-path step for the first gate.
        if best_swap is not None:
            trial = dict(layout)
            la, lb = reverse.get(best_swap[0]), reverse.get(best_swap[1])
            if la is not None:
                trial[la] = best_swap[1]
            if lb is not None:
                trial[lb] = best_swap[0]
            if front_distance(trial, front) >= current:
                path = coupling.shortest_path(
                    layout[front[0].qubits[0]], layout[front[0].qubits[1]]
                )
                best_swap = (path[0], path[1])
        apply_swap(*best_swap)

    for measurement in deferred_measurements:
        routed.measure(layout[measurement.qubit], measurement.clbit)
    return MappedCircuit(routed, first_layout, layout, swaps)
