"""Qubit mapping and SWAP routing — the Enfield-compiler substitute.

The paper compiles every benchmark to IBM's 5-qubit device with the Enfield
compiler to "determine the actual physical qubits".  Enfield is an external
C++ tool; this module provides the equivalent function: place logical
qubits on physical ones and insert SWAPs so every CNOT acts on a connected
pair.  The optimization under study only ever sees the *compiled* circuit,
so any correct router exercises the identical code path; ours is the
classic greedy scheme (route each far CNOT along a shortest path, moving
the control toward the target), which lands in the same op-count ballpark
as Enfield on these small benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..circuits.circuit import (
    Barrier,
    CircuitError,
    GateOp,
    Measurement,
    QuantumCircuit,
)
from ..circuits.gates import standard_gate
from .coupling import CouplingMap
from .decompose import decompose_to_basis

__all__ = ["MappedCircuit", "route_circuit", "compile_for_device"]


class MappedCircuit:
    """A routed circuit plus the layout bookkeeping."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Dict[int, int],
        final_layout: Dict[int, int],
        swaps_inserted: int,
    ) -> None:
        #: The physical-qubit circuit (every 2q gate on a coupled pair).
        self.circuit = circuit
        #: ``logical -> physical`` placement before the first gate.
        self.initial_layout = dict(initial_layout)
        #: ``logical -> physical`` placement after the last gate.
        self.final_layout = dict(final_layout)
        #: Number of SWAP gates the router added.
        self.swaps_inserted = swaps_inserted

    def __repr__(self) -> str:
        return (
            f"MappedCircuit({self.circuit.name!r}, "
            f"swaps={self.swaps_inserted})"
        )


def _initial_layout(
    circuit: QuantumCircuit, coupling: CouplingMap
) -> Dict[int, int]:
    """Greedy placement: most-interacting logical pairs on coupled qubits.

    Counts CNOT interactions per logical pair, then assigns pairs in
    decreasing weight to free coupled physical pairs; leftovers fill the
    remaining physical qubits in index order.
    """
    weights: Dict[Tuple[int, int], int] = {}
    for instr in circuit:
        if isinstance(instr, GateOp) and len(instr.qubits) == 2:
            pair = tuple(sorted(instr.qubits))
            weights[pair] = weights.get(pair, 0) + 1

    layout: Dict[int, int] = {}
    used_physical: set = set()

    for (a, b), _ in sorted(weights.items(), key=lambda item: -item[1]):
        if a in layout and b in layout:
            continue
        # Try to place the pair on a free edge adjacent to already-placed
        # qubits when possible.
        placed = False
        for pa, pb in coupling.edges:
            if pa in used_physical or pb in used_physical:
                continue
            if a not in layout and b not in layout:
                layout[a], layout[b] = pa, pb
                used_physical.update((pa, pb))
                placed = True
                break
        if placed:
            continue
        for logical in (a, b):
            if logical not in layout:
                for physical in range(coupling.num_qubits):
                    if physical not in used_physical:
                        layout[logical] = physical
                        used_physical.add(physical)
                        break

    for logical in range(circuit.num_qubits):
        if logical not in layout:
            for physical in range(coupling.num_qubits):
                if physical not in used_physical:
                    layout[logical] = physical
                    used_physical.add(physical)
                    break
    return layout


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Dict[int, int]] = None,
) -> MappedCircuit:
    """Insert SWAPs so every two-qubit gate acts on a coupled pair.

    The input must already be in the {1q, 2q} basis (3+-qubit gates must be
    decomposed first).  The output circuit has ``coupling.num_qubits``
    qubits; classical bits are preserved.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise CircuitError(
            f"circuit needs {circuit.num_qubits} qubits but device has "
            f"{coupling.num_qubits}"
        )
    layout = dict(initial_layout) if initial_layout else _initial_layout(circuit, coupling)
    first_layout = dict(layout)
    for logical, physical in layout.items():
        if not 0 <= physical < coupling.num_qubits:
            raise CircuitError(f"layout places q{logical} on bad qubit {physical}")
    if len(set(layout.values())) != len(layout):
        raise CircuitError("layout maps two logical qubits to one physical qubit")

    routed = QuantumCircuit(
        coupling.num_qubits, circuit.num_clbits, name=circuit.name
    )
    reverse = {physical: logical for logical, physical in layout.items()}
    swap_gate = standard_gate("swap")
    swaps = 0

    def apply_swap(pa: int, pb: int) -> None:
        nonlocal swaps
        routed.apply(swap_gate, pa, pb)
        swaps += 1
        la, lb = reverse.get(pa), reverse.get(pb)
        if la is not None:
            layout[la] = pb
        if lb is not None:
            layout[lb] = pa
        reverse[pa], reverse[pb] = lb, la

    for instr in circuit:
        if isinstance(instr, Measurement):
            routed.measure(layout[instr.qubit], instr.clbit)
        elif isinstance(instr, Barrier):
            routed.barrier(*(layout[q] for q in instr.qubits))
        elif isinstance(instr, GateOp):
            if len(instr.qubits) == 1:
                routed.apply(instr.gate, layout[instr.qubits[0]])
                continue
            if len(instr.qubits) != 2:
                raise CircuitError(
                    f"router needs a {{1q, 2q}} circuit; decompose "
                    f"{instr.gate.name!r} first"
                )
            control, target = instr.qubits
            # Walk the control toward the target along a shortest path.
            while not coupling.connected(layout[control], layout[target]):
                path = coupling.shortest_path(layout[control], layout[target])
                apply_swap(path[0], path[1])
            routed.apply(instr.gate, layout[control], layout[target])
        else:  # pragma: no cover - exhaustive
            raise CircuitError(f"unknown instruction {instr!r}")

    return MappedCircuit(routed, first_layout, layout, swaps)


def compile_for_device(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Dict[int, int]] = None,
    router: str = "greedy",
) -> QuantumCircuit:
    """Full device compilation: basis decomposition, routing, SWAP expansion.

    Returns a circuit over the device's physical qubits containing only
    single-qubit gates and CNOTs on coupled pairs — the form every paper
    benchmark is simulated in.  ``router`` selects the SWAP-insertion
    strategy: ``"greedy"`` (shortest-path per gate, the default and the
    Table I configuration) or ``"sabre"`` (lookahead heuristic, usually
    fewer SWAPs on permutation-heavy circuits).
    """
    basis = decompose_to_basis(circuit)
    if router == "greedy":
        mapped = route_circuit(basis, coupling, initial_layout)
    elif router == "sabre":
        from .sabre import route_circuit_lookahead

        mapped = route_circuit_lookahead(basis, coupling, initial_layout)
    else:
        raise ValueError(f"unknown router {router!r}; use 'greedy' or 'sabre'")
    # The router inserts `swap` gates; expand them into CNOT triples.
    return decompose_to_basis(mapped.circuit)
