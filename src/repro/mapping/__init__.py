"""Device compilation: coupling maps, SWAP routing, basis decomposition."""

from .coupling import CouplingMap, grid_coupling, line_coupling, yorktown_coupling
from .decompose import DecomposeError, decompose_gate_op, decompose_to_basis
from .optimize import (
    cancel_inverse_pairs,
    fuse_single_qubit_runs,
    optimize_circuit,
    u3_params_from_matrix,
)
from .router import MappedCircuit, compile_for_device, route_circuit
from .sabre import route_circuit_lookahead

__all__ = [
    "CouplingMap",
    "DecomposeError",
    "MappedCircuit",
    "cancel_inverse_pairs",
    "fuse_single_qubit_runs",
    "optimize_circuit",
    "u3_params_from_matrix",
    "compile_for_device",
    "decompose_gate_op",
    "decompose_to_basis",
    "grid_coupling",
    "line_coupling",
    "route_circuit",
    "route_circuit_lookahead",
    "yorktown_coupling",
]
