"""Device coupling graphs.

NISQ devices only support two-qubit gates between physically connected
qubits; a :class:`CouplingMap` records that connectivity and answers the
distance queries the SWAP router needs.  The paper maps every benchmark to
IBM's 5-qubit Yorktown chip, whose "bowtie" graph is provided as a named
constructor; line and grid topologies cover the artificial large devices.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import networkx as nx

__all__ = ["CouplingMap", "yorktown_coupling", "line_coupling", "grid_coupling"]


class CouplingMap:
    """An undirected qubit-connectivity graph with cached shortest paths."""

    def __init__(self, num_qubits: int, edges: Iterable[Tuple[int, int]]) -> None:
        if num_qubits < 1:
            raise ValueError(f"need at least one qubit, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.num_qubits))
        for a, b in edges:
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise ValueError(f"edge ({a}, {b}) out of range")
            if a == b:
                raise ValueError(f"self-loop on qubit {a}")
            self.graph.add_edge(int(a), int(b))
        if self.num_qubits > 1 and not nx.is_connected(self.graph):
            raise ValueError("coupling graph must be connected")
        self._distance: Dict[int, Dict[int, int]] = dict(
            nx.all_pairs_shortest_path_length(self.graph)
        )

    @property
    def edges(self) -> List[Tuple[int, int]]:
        return [tuple(sorted(edge)) for edge in self.graph.edges()]

    def connected(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def distance(self, a: int, b: int) -> int:
        return self._distance[a][b]

    def shortest_path(self, a: int, b: int) -> List[int]:
        return nx.shortest_path(self.graph, a, b)

    def neighbors(self, qubit: int) -> List[int]:
        return sorted(self.graph.neighbors(qubit))

    def __repr__(self) -> str:
        return f"CouplingMap(qubits={self.num_qubits}, edges={len(self.edges)})"


def yorktown_coupling() -> CouplingMap:
    """IBM Yorktown (ibmqx2): 5 qubits in a bowtie."""
    from ..noise.devices import YORKTOWN_COUPLING

    return CouplingMap(5, YORKTOWN_COUPLING)


def line_coupling(num_qubits: int) -> CouplingMap:
    """A 1-D nearest-neighbour chain."""
    return CouplingMap(num_qubits, [(i, i + 1) for i in range(num_qubits - 1)])


def grid_coupling(rows: int, cols: int) -> CouplingMap:
    """A ``rows x cols`` 2-D nearest-neighbour lattice."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return CouplingMap(rows * cols, edges)
