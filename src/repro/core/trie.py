"""Prefix trie over trial error sequences.

The reordered trial list (Algorithm 1) groups trials by shared error
prefixes; the natural data structure for those groups is a trie keyed by
:class:`ErrorEvent`.  A depth-first traversal of the trie *is* the optimized
execution order, and the set of trie nodes with more than one pending
consumer is exactly the set of intermediate states worth storing.

Each node represents the intermediate state "all layers up to and including
the last path event's layer applied, all path events injected".  Trials
whose event sequence equals the path terminate at that node
(``node.terminal_trials``); several trials may terminate at one node (the
deduplication win — they differ at most in classical measurement flips).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .events import ErrorEvent, Trial

__all__ = ["TrieNode", "TrialTrie", "build_trie"]


class TrieNode:
    """One shared-prefix state in the trial trie."""

    __slots__ = ("event", "children", "terminal_trials", "depth")

    def __init__(self, event: Optional[ErrorEvent], depth: int) -> None:
        #: The event whose injection creates this node's state (None = root).
        self.event = event
        #: Child nodes keyed by their event.
        self.children: Dict[ErrorEvent, "TrieNode"] = {}
        #: Indices (into the original trial list) of trials ending here.
        self.terminal_trials: List[int] = []
        #: Number of events on the path from the root (root = 0).
        self.depth = depth

    def sorted_children(self) -> List["TrieNode"]:
        """Children in event order — the paper's reordering order."""
        return [self.children[event] for event in sorted(self.children)]

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:
        return (
            f"TrieNode(event={self.event}, children={len(self.children)}, "
            f"terminals={len(self.terminal_trials)})"
        )


class TrialTrie:
    """Trie over a trial set, preserving original trial indices."""

    def __init__(self, trials: Sequence[Trial]) -> None:
        self.trials: Tuple[Trial, ...] = tuple(trials)
        self.root = TrieNode(None, 0)
        self._num_nodes = 1
        for index, trial in enumerate(self.trials):
            self._insert(index, trial)

    def _insert(self, index: int, trial: Trial) -> None:
        node = self.root
        for event in trial.events:
            child = node.children.get(event)
            if child is None:
                child = TrieNode(event, node.depth + 1)
                node.children[event] = child
                self._num_nodes += 1
            node = child
        node.terminal_trials.append(index)

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    def depth(self) -> int:
        """Maximum node depth == longest error sequence among the trials."""
        deepest = 0
        for node, _ in self.iter_nodes():
            deepest = max(deepest, node.depth)
        return deepest

    def iter_nodes(self) -> Iterator[Tuple[TrieNode, Tuple[ErrorEvent, ...]]]:
        """Yield ``(node, path)`` pairs in DFS (sorted-child) order."""
        stack: List[Tuple[TrieNode, Tuple[ErrorEvent, ...]]] = [(self.root, ())]
        while stack:
            node, path = stack.pop()
            yield node, path
            for child in reversed(node.sorted_children()):
                stack.append((child, path + (child.event,)))

    def execution_order(self) -> List[int]:
        """Trial indices in pre-order DFS — the lexicographic trial order.

        Terminal trials of a node are emitted before its children's, so the
        result matches :func:`repro.core.reorder.reorder_trials` exactly
        (property-tested).  Note the *executor* finishes prefix-terminal
        trials after their extensions instead (post-order) because the
        frontier state advances monotonically; both orders run the same
        trials and the results are order-independent.
        """
        order: List[int] = []
        for node, _ in self.iter_nodes():
            order.extend(node.terminal_trials)
        return order

    def count_branch_nodes(self) -> int:
        """Nodes with 2+ distinct futures (the states worth storing)."""
        count = 0
        for node, _ in self.iter_nodes():
            futures = len(node.children) + (1 if node.terminal_trials else 0)
            if futures >= 2:
                count += 1
        return count

    def __repr__(self) -> str:
        return f"TrialTrie(trials={self.num_trials}, nodes={self._num_nodes})"


def build_trie(trials: Sequence[Trial]) -> TrialTrie:
    """Build the prefix trie for ``trials`` (any order; the trie sorts)."""
    return TrialTrie(trials)
