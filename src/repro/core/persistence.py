"""Trial-set persistence: save sampled trials, re-run them anywhere.

The pipeline's statically generated trial set fully determines the
simulation (given the circuit), so archiving it makes experiments exactly
re-runnable — across machines, library versions, and backends.  Trials
are stored in the packed 5-byte event encoding (:mod:`repro.core.packed`)
plus the measurement-flip lists, inside a single ``.npz`` file:

    >>> save_trials("trials.npz", trials)
    >>> trials == load_trials("trials.npz")
    True

The format is flat numpy arrays (no pickling), so files are portable and
safe to load.
"""

from __future__ import annotations

import os
from typing import List, Sequence

import numpy as np

from .atomicio import atomic_write_via
from .events import ErrorEvent, Trial, make_trial
from .packed import EVENT_BYTES, pack_trial, unpack_trial_events

__all__ = ["save_trials", "load_trials", "FORMAT_VERSION"]

#: Bumped on any incompatible change to the archive layout.
FORMAT_VERSION = 1


def save_trials(path, trials: Sequence[Trial]) -> None:
    """Write ``trials`` to ``path`` as a flat-array ``.npz`` archive.

    The archive is written atomically (temp file + ``os.replace``), so an
    interrupted save never leaves a truncated ``.npz`` under ``path``.
    """
    packed = [pack_trial(trial) for trial in trials]
    event_counts = np.array(
        [len(blob) // EVENT_BYTES for blob in packed], dtype=np.int64
    )
    event_bytes = np.frombuffer(b"".join(packed), dtype=np.uint8)
    flip_counts = np.array(
        [len(trial.meas_flips) for trial in trials], dtype=np.int64
    )
    flips = np.array(
        [clbit for trial in trials for clbit in trial.meas_flips],
        dtype=np.int64,
    )
    path = os.fspath(path)
    if not path.endswith(".npz"):
        # np.savez appends ".npz" to plain paths; pin the final name so the
        # atomic replace installs exactly what the caller asked for.
        path += ".npz"
    atomic_write_via(
        path,
        lambda handle: np.savez_compressed(
            handle,
            version=np.array([FORMAT_VERSION], dtype=np.int64),
            event_counts=event_counts,
            event_bytes=event_bytes,
            flip_counts=flip_counts,
            flips=flips,
        ),
        mode="wb",
    )


def load_trials(path) -> List[Trial]:
    """Read a trial set written by :func:`save_trials`.

    Raises a clear :class:`ValueError` when the archive is not a trial
    archive (missing fields), was written by an unsupported
    ``FORMAT_VERSION``, or is internally inconsistent — rather than
    misparsing a future or foreign layout into garbage trials.
    """
    with np.load(path) as archive:
        if "version" not in archive.files:
            raise ValueError(
                f"{path!r} is not a trial archive: no 'version' field "
                f"(fields: {sorted(archive.files)})"
            )
        version_field = archive["version"]
        if version_field.size != 1:
            raise ValueError(
                f"corrupt trial archive: malformed version field "
                f"(shape {version_field.shape})"
            )
        version = int(version_field[0])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"trial archive version {version} unsupported "
                f"(expected {FORMAT_VERSION})"
            )
        missing = [
            field
            for field in ("event_counts", "event_bytes", "flip_counts", "flips")
            if field not in archive.files
        ]
        if missing:
            raise ValueError(
                f"corrupt trial archive: missing field(s) {missing}"
            )
        event_counts = archive["event_counts"]
        blob = archive["event_bytes"].tobytes()
        flip_counts = archive["flip_counts"]
        flips = archive["flips"]

    if len(event_counts) != len(flip_counts):
        raise ValueError("corrupt archive: trial count mismatch")
    trials: List[Trial] = []
    event_offset = 0
    flip_offset = 0
    for num_events, num_flips in zip(event_counts, flip_counts):
        span = int(num_events) * EVENT_BYTES
        events = [
            ErrorEvent(layer, qubit, pauli)
            for layer, qubit, pauli in unpack_trial_events(
                blob[event_offset : event_offset + span]
            )
        ]
        event_offset += span
        meas_flips = [int(c) for c in flips[flip_offset : flip_offset + int(num_flips)]]
        flip_offset += int(num_flips)
        trials.append(make_trial(events, meas_flips))
    if event_offset != len(blob):
        raise ValueError("corrupt archive: trailing event bytes")
    return trials
