"""Evaluation metrics (Sec. V "Metrics").

The paper reports two implementation-independent quantities:

* **Normalized computation** — basic operations (matrix-vector
  multiplications) of the optimized run divided by the baseline's count for
  the *same* trial set.  ``1 - normalized`` is the computation saving.
* **Maintained State Vectors (MSVs)** — the peak number of simultaneously
  live statevectors during the optimized run.

:class:`RunMetrics` bundles both, plus the trial-set statistics that explain
them (distinct-trial count, error statistics).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuits.layers import LayeredCircuit
from .events import Trial
from .executor import ExecutionOutcome, baseline_operation_count

__all__ = ["RunMetrics", "compute_metrics"]


class RunMetrics:
    """Computation and memory metrics of one optimized simulation."""

    def __init__(
        self,
        num_trials: int,
        num_distinct_trials: int,
        optimized_ops: int,
        baseline_ops: int,
        peak_msv: int,
        peak_stored: int,
        num_gates: int,
        num_layers: int,
    ) -> None:
        self.num_trials = num_trials
        self.num_distinct_trials = num_distinct_trials
        self.optimized_ops = optimized_ops
        self.baseline_ops = baseline_ops
        self.peak_msv = peak_msv
        self.peak_stored = peak_stored
        self.num_gates = num_gates
        self.num_layers = num_layers

    @property
    def normalized_computation(self) -> float:
        """Optimized ops / baseline ops (lower is better; 1.0 = no saving)."""
        if self.baseline_ops == 0:
            return 1.0
        return self.optimized_ops / self.baseline_ops

    @property
    def computation_saving(self) -> float:
        """Fraction of baseline computation eliminated."""
        return 1.0 - self.normalized_computation

    @property
    def duplication_ratio(self) -> float:
        if self.num_distinct_trials == 0:
            return 0.0
        return self.num_trials / self.num_distinct_trials

    def statevector_bytes(self, num_qubits: int) -> int:
        """Memory of one dense statevector (complex128 amplitudes)."""
        return 16 * 2**num_qubits

    def peak_state_memory_bytes(self, num_qubits: int) -> int:
        """Peak memory held in state vectors during the optimized run.

        ``peak_msv`` statevectors of ``2**n`` complex128 amplitudes — the
        concrete number behind the paper's MSV metric (the baseline holds
        exactly one).
        """
        return self.peak_msv * self.statevector_bytes(num_qubits)

    def as_dict(self) -> dict:
        return {
            "num_trials": self.num_trials,
            "num_distinct_trials": self.num_distinct_trials,
            "optimized_ops": self.optimized_ops,
            "baseline_ops": self.baseline_ops,
            "normalized_computation": self.normalized_computation,
            "computation_saving": self.computation_saving,
            "peak_msv": self.peak_msv,
            "peak_stored": self.peak_stored,
            "num_gates": self.num_gates,
            "num_layers": self.num_layers,
        }

    def __repr__(self) -> str:
        return (
            f"RunMetrics(trials={self.num_trials}, "
            f"normalized={self.normalized_computation:.3f}, "
            f"msv={self.peak_msv})"
        )

    @classmethod
    def from_trace(cls, recorder) -> "RunMetrics":
        """Re-derive metrics purely from a recorded run's events.

        The executor's ``run.meta`` instant carries the circuit/trial
        context, the counters and gauges carry the rest; the result must
        equal :func:`compute_metrics` over the same run (asserted by
        :func:`repro.obs.summary.verify_trace` and the integration tests).
        """
        from ..obs.summary import metrics_from_trace

        return metrics_from_trace(recorder)


def compute_metrics(
    layered: LayeredCircuit,
    trials: Sequence[Trial],
    outcome: ExecutionOutcome,
    baseline_ops: Optional[int] = None,
) -> RunMetrics:
    """Build :class:`RunMetrics` from an optimized-run outcome.

    ``baseline_ops`` defaults to the closed-form baseline count for the same
    trial set (verified in tests to match an actual baseline run).
    """
    if baseline_ops is None:
        baseline_ops = baseline_operation_count(layered, trials)
    return RunMetrics(
        num_trials=len(trials),
        num_distinct_trials=len(set(trials)),
        optimized_ops=outcome.ops_applied,
        baseline_ops=baseline_ops,
        peak_msv=outcome.peak_msv,
        peak_stored=outcome.peak_stored,
        num_gates=layered.num_gates,
        num_layers=layered.num_layers,
    )
