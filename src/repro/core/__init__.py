"""The paper's contribution: trial reordering and prefix-state reuse."""

from .cache import CacheStats, StateCache
from .events import PAULI_LABELS, ErrorEvent, Trial, make_trial
from .executor import (
    ExecutionOutcome,
    baseline_operation_count,
    run_baseline,
    run_optimized,
)
from .metrics import RunMetrics, compute_metrics
from .persistence import load_trials, save_trials
from .packed import (
    PackedAnalysis,
    analyze_packed_trials,
    pack_trial,
    pack_trials,
    sample_packed_trials,
    unpack_trial_events,
)
from .reorder import (
    adjacent_prefix_lengths,
    longest_common_prefix,
    reorder_trials,
    reorder_trials_recursive,
)
from .runner import NoisySimulator, SimulationResult
from .schedule import (
    Advance,
    ExecutionPlan,
    Finish,
    Inject,
    Restore,
    ScheduleError,
    Snapshot,
    build_plan,
    build_plan_from_trie,
)
from .trie import TrialTrie, TrieNode, build_trie

__all__ = [
    "Advance",
    "CacheStats",
    "ErrorEvent",
    "ExecutionOutcome",
    "ExecutionPlan",
    "Finish",
    "Inject",
    "NoisySimulator",
    "PackedAnalysis",
    "PAULI_LABELS",
    "Restore",
    "RunMetrics",
    "ScheduleError",
    "SimulationResult",
    "Snapshot",
    "StateCache",
    "Trial",
    "TrialTrie",
    "TrieNode",
    "adjacent_prefix_lengths",
    "baseline_operation_count",
    "build_plan",
    "build_plan_from_trie",
    "build_trie",
    "compute_metrics",
    "longest_common_prefix",
    "make_trial",
    "load_trials",
    "save_trials",
    "pack_trial",
    "pack_trials",
    "analyze_packed_trials",
    "sample_packed_trials",
    "unpack_trial_events",
    "reorder_trials",
    "reorder_trials_recursive",
    "run_baseline",
    "run_optimized",
]
