"""The paper's contribution: trial reordering and prefix-state reuse."""

from .atomicio import atomic_write_json
from .cache import CacheBudget, CacheStats, CorruptionError, StateCache
from .events import PAULI_LABELS, ErrorEvent, Trial, make_trial
from .executor import (
    ExecutionOutcome,
    RunInterrupted,
    baseline_operation_count,
    run_baseline,
    run_optimized,
)
from .hybrid import (
    HybridOutcome,
    HybridSchedule,
    classify_plan,
    run_hybrid,
    run_hybrid_prefix,
)
from .metrics import RunMetrics, compute_metrics
from .persistence import load_trials, save_trials
from .resilience import (
    JournalError,
    JournalSummary,
    RunJournal,
    WorkerCrash,
    journal_fingerprint,
    load_journal,
    payload_checksum,
    run_journaled,
)
from .packed import (
    PackedAnalysis,
    analyze_packed_trials,
    pack_trial,
    pack_trials,
    sample_packed_trials,
    unpack_trial_events,
)
from .reorder import (
    adjacent_prefix_lengths,
    longest_common_prefix,
    reorder_trials,
    reorder_trials_recursive,
)
from .runner import NoisySimulator, SimulationResult
from .shared import SharedPrefixStore, SharedStoreStats, circuit_fingerprint
from .schedule import (
    Advance,
    ExecutionPlan,
    Finish,
    Inject,
    Restore,
    ScheduleError,
    Snapshot,
    build_plan,
    build_plan_from_trie,
)
from .trie import TrialTrie, TrieNode, build_trie

__all__ = [
    "Advance",
    "CacheBudget",
    "CacheStats",
    "CorruptionError",
    "ErrorEvent",
    "ExecutionOutcome",
    "ExecutionPlan",
    "Finish",
    "HybridOutcome",
    "HybridSchedule",
    "Inject",
    "JournalError",
    "JournalSummary",
    "NoisySimulator",
    "PackedAnalysis",
    "PAULI_LABELS",
    "Restore",
    "RunInterrupted",
    "RunJournal",
    "RunMetrics",
    "ScheduleError",
    "SharedPrefixStore",
    "SharedStoreStats",
    "SimulationResult",
    "Snapshot",
    "StateCache",
    "Trial",
    "TrialTrie",
    "TrieNode",
    "WorkerCrash",
    "adjacent_prefix_lengths",
    "atomic_write_json",
    "baseline_operation_count",
    "build_plan",
    "build_plan_from_trie",
    "build_trie",
    "circuit_fingerprint",
    "classify_plan",
    "compute_metrics",
    "journal_fingerprint",
    "load_journal",
    "longest_common_prefix",
    "make_trial",
    "load_trials",
    "payload_checksum",
    "run_journaled",
    "save_trials",
    "pack_trial",
    "pack_trials",
    "analyze_packed_trials",
    "sample_packed_trials",
    "unpack_trial_events",
    "reorder_trials",
    "reorder_trials_recursive",
    "run_baseline",
    "run_hybrid",
    "run_hybrid_prefix",
    "run_optimized",
]
