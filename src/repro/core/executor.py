"""Plan interpretation: optimized and baseline execution.

:func:`run_optimized` interprets an :class:`ExecutionPlan` against any
:class:`~repro.sim.backend.SimulationBackend`; :func:`run_baseline`
re-executes every trial from the initial state, exactly like the
straightforward Monte-Carlo strategy of QX / Rigetti QVM that the paper
compares against (Sec. V "Baseline").

Both run the same backend and count the same basic operations, so the
normalized-computation metric is a pure ratio of the two counters.  Final
states are delivered through a streaming callback — one call per distinct
final state, carrying all (deduplicated) trial indices that share it — so
no executor ever holds more than the cache-accounted number of states.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Tuple

from ..circuits.layers import LayeredCircuit
from ..sim.backend import SimulationBackend
from .cache import CacheStats, StateCache
from .events import Trial
from .schedule import (
    Advance,
    ExecutionPlan,
    Finish,
    Inject,
    Restore,
    ScheduleError,
    Snapshot,
    build_plan,
)

__all__ = ["ExecutionOutcome", "run_optimized", "run_baseline", "FinishCallback"]

#: Called once per distinct final state: ``(state_payload, trial_indices)``.
FinishCallback = Callable[[Any, Tuple[int, ...]], None]


class ExecutionOutcome:
    """Counters and cache statistics of one executor run."""

    def __init__(
        self,
        ops_applied: int,
        num_trials: int,
        cache_stats: CacheStats,
        finish_calls: int,
    ) -> None:
        self.ops_applied = ops_applied
        self.num_trials = num_trials
        self.cache_stats = cache_stats
        self.finish_calls = finish_calls

    @property
    def peak_msv(self) -> int:
        return self.cache_stats.peak_msv

    @property
    def peak_stored(self) -> int:
        return self.cache_stats.peak_stored

    def __repr__(self) -> str:
        return (
            f"ExecutionOutcome(ops={self.ops_applied}, "
            f"trials={self.num_trials}, peak_msv={self.peak_msv})"
        )


def run_optimized(
    layered: LayeredCircuit,
    trials: Sequence[Trial],
    backend: SimulationBackend,
    on_finish: Optional[FinishCallback] = None,
    plan: Optional[ExecutionPlan] = None,
    check: bool = False,
) -> ExecutionOutcome:
    """Execute ``trials`` with prefix-state reuse.

    Parameters
    ----------
    plan:
        A prebuilt plan (must cover exactly these trials); built on demand
        otherwise.
    on_finish:
        Streaming consumer of final states.  Receives the backend's
        ``finish`` payload (a statevector copy for the statevector backend,
        ``None`` for the counting backend) and the tuple of original trial
        indices sharing that state.
    check:
        Run the static plan sanitizer (:func:`repro.lint.sanitize_plan`)
        before touching the backend: slot discipline, layer alignment and
        per-trial event exactness are proven up front, so a bad plan fails
        fast instead of mid-run with statevectors allocated.
    """
    if plan is None:
        plan = build_plan(layered, trials)
    if plan.num_trials != len(trials):
        raise ScheduleError(
            f"plan covers {plan.num_trials} trials, got {len(trials)}"
        )
    if check:
        plan.validate(trials=trials, layered=layered)

    backend.reset_counter()
    cache = StateCache()
    working = backend.make_initial()
    working_layer = 0
    cache.working_created()
    finish_calls = 0

    for instr in plan:
        if isinstance(instr, Advance):
            if instr.start_layer != working_layer:
                raise ScheduleError(
                    f"advance from layer {instr.start_layer} but working "
                    f"state is at layer {working_layer}"
                )
            backend.apply_layers(working, instr.start_layer, instr.end_layer)
            working_layer = instr.end_layer
        elif isinstance(instr, Snapshot):
            snapshot = backend.copy_state(working)
            try:
                assigned = cache.store(snapshot, working_layer, slot=instr.slot)
            except RuntimeError as exc:
                raise ScheduleError(str(exc)) from exc
            if assigned != instr.slot:
                raise ScheduleError(
                    f"cache stored snapshot in slot {assigned}, plan "
                    f"expected slot {instr.slot}"
                )
        elif isinstance(instr, Inject):
            event = instr.event
            if event.layer + 1 != working_layer:
                raise ScheduleError(
                    f"inject {event} at working layer {working_layer}"
                )
            backend.apply_operator(working, event.gate, (event.qubit,))
        elif isinstance(instr, Restore):
            backend.release_state(working)
            cache.working_destroyed()
            working, working_layer = cache.take(instr.slot)
            cache.working_created()
        elif isinstance(instr, Finish):
            if working_layer != layered.num_layers:
                raise ScheduleError(
                    f"finish at layer {working_layer}, circuit has "
                    f"{layered.num_layers} layers"
                )
            finish_calls += 1
            if on_finish is not None:
                payload = backend.finish(working)
                on_finish(payload, instr.trial_indices)
        else:  # pragma: no cover - exhaustive over instruction kinds
            raise ScheduleError(f"unknown plan instruction {instr!r}")

    backend.release_state(working)
    cache.working_destroyed()
    cache.assert_drained()
    return ExecutionOutcome(
        ops_applied=backend.ops_applied,
        num_trials=len(trials),
        cache_stats=cache.stats(),
        finish_calls=finish_calls,
    )


def run_baseline(
    layered: LayeredCircuit,
    trials: Sequence[Trial],
    backend: SimulationBackend,
    on_finish: Optional[FinishCallback] = None,
) -> ExecutionOutcome:
    """Execute every trial independently from scratch (no reuse, no reorder).

    This is the widely adopted straightforward Monte-Carlo strategy: one
    full circuit pass per trial, errors injected inline, only the final
    result kept.  ``on_finish`` is called once per trial.
    """
    backend.reset_counter()
    cache = StateCache()  # used only for uniform accounting (peak_msv == 1)

    for index, trial in enumerate(trials):
        state = backend.make_initial()
        cache.working_created()
        cursor = 0
        for event in trial.events:
            target = event.layer + 1
            if target > cursor:
                backend.apply_layers(state, cursor, target)
                cursor = target
            backend.apply_operator(state, event.gate, (event.qubit,))
        if layered.num_layers > cursor:
            backend.apply_layers(state, cursor, layered.num_layers)
        if on_finish is not None:
            payload = backend.finish(state)
            on_finish(payload, (index,))
        backend.release_state(state)
        cache.working_destroyed()

    cache.assert_drained()
    return ExecutionOutcome(
        ops_applied=backend.ops_applied,
        num_trials=len(trials),
        cache_stats=cache.stats(),
        finish_calls=len(trials),
    )


def baseline_operation_count(
    layered: LayeredCircuit, trials: Sequence[Trial]
) -> int:
    """Closed-form basic-operation count of the baseline strategy.

    ``num_trials * num_gates + total_injected_errors`` — every trial pays
    the full circuit plus its own error operators.
    """
    total_errors = sum(trial.num_errors for trial in trials)
    return len(trials) * layered.num_gates + total_errors
