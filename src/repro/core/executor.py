"""Plan interpretation: optimized and baseline execution.

:func:`run_optimized` interprets an :class:`ExecutionPlan` against any
:class:`~repro.sim.backend.SimulationBackend`; :func:`run_baseline`
re-executes every trial from the initial state, exactly like the
straightforward Monte-Carlo strategy of QX / Rigetti QVM that the paper
compares against (Sec. V "Baseline").

Both run the same backend and count the same basic operations, so the
normalized-computation metric is a pure ratio of the two counters.  Final
states are delivered through a streaming callback — one call per distinct
final state, carrying all (deduplicated) trial indices that share it — so
no executor ever holds more than the cache-accounted number of states.

Both executors accept an optional ``recorder``
(:class:`~repro.obs.recorder.TraceRecorder`): when attached, every
``Advance`` becomes a span, every injection/finish an instant, every cache
store/restore a cache event with the live-MSV gauge sampled alongside, and
a ``run.meta`` instant carries enough context (trial counts, gate counts,
closed-form baseline ops) that :class:`ExecutionOutcome` and
:class:`~repro.core.metrics.RunMetrics` can be re-derived from the trace
alone (see :mod:`repro.obs.summary`).  Every recorder touch sits behind a
single ``if recorder:`` check and the default is off, so the un-traced hot
path is unchanged.

Memory-budgeted degradation
---------------------------
``run_optimized`` accepts a :class:`~repro.core.cache.CacheBudget`: after
every snapshot store the executor degrades the coldest resident snapshot
(spill to disk, or drop and recompute from its event provenance) until the
resident footprint fits.  Results are unchanged — spilled amplitudes are
checksum-verified on reload, and a recomputed snapshot replays exactly the
advance/inject boundaries that produced the original, so even compiled
kernel fusion reproduces the same float rounding.  The nominal peak-MSV
accounting deliberately ignores degradation (it mirrors the plan's demand
and lint's static bound); the actually-resident peaks are reported
separately on :class:`~repro.core.cache.CacheStats`.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.layers import LayeredCircuit
from ..sim.backend import SimulationBackend
from ..sim.statevector import Statevector
from .cache import (
    CacheBudget,
    CacheStats,
    CorruptionError,
    DroppedSnapshot,
    SpilledSnapshot,
    StateCache,
    payload_checksum,
)
from .events import Trial
from .schedule import (
    Advance,
    ExecutionPlan,
    Finish,
    Inject,
    Restore,
    ScheduleError,
    Snapshot,
    build_plan,
)
from .shared import SharedPrefixStore, advance_step, circuit_fingerprint, inject_step

__all__ = [
    "ExecutionOutcome",
    "RunInterrupted",
    "run_optimized",
    "run_baseline",
    "FinishCallback",
]

#: Called once per distinct final state: ``(state_payload, trial_indices)``.
FinishCallback = Callable[[Any, Tuple[int, ...]], None]


class RunInterrupted(RuntimeError):
    """An execution was stopped cooperatively before finishing its trials.

    Raised when a ``stop`` event passed to an executor (or to
    :func:`~repro.core.parallel.run_parallel` via a signal handler) is
    set.  The interrupt is *clean*: every finish delivered before the
    exception was complete and in order, resources were released through
    the normal ``finally`` paths, and a journaled run's committed tail
    remains a valid resume point.  ``trials_completed`` counts the trials
    whose finishes were delivered before the stop took effect.
    """

    def __init__(self, message: str, trials_completed: int = 0) -> None:
        super().__init__(message)
        self.trials_completed = trials_completed


class ExecutionOutcome:
    """Counters and cache statistics of one executor run."""

    def __init__(
        self,
        ops_applied: int,
        num_trials: int,
        cache_stats: CacheStats,
        finish_calls: int,
        ops_shared: int = 0,
    ) -> None:
        self.ops_applied = ops_applied
        self.num_trials = num_trials
        self.cache_stats = cache_stats
        self.finish_calls = finish_calls
        #: Plan operations *not* executed because a cross-job
        #: :class:`~repro.core.shared.SharedPrefixStore` supplied the
        #: state; ``ops_applied + ops_shared`` equals the plan's
        #: ``planned_operations``.
        self.ops_shared = ops_shared

    @property
    def peak_msv(self) -> int:
        return self.cache_stats.peak_msv

    @property
    def peak_stored(self) -> int:
        return self.cache_stats.peak_stored

    def __repr__(self) -> str:
        return (
            f"ExecutionOutcome(ops={self.ops_applied}, "
            f"trials={self.num_trials}, peak_msv={self.peak_msv})"
        )

    @classmethod
    def from_trace(cls, recorder) -> "ExecutionOutcome":
        """Re-derive an outcome purely from a recorded run's events.

        The result must equal the outcome the executor computed live —
        that equality is the observability layer's correctness pin (see
        :func:`repro.obs.summary.verify_trace`).
        """
        from ..obs.summary import outcome_from_trace

        return outcome_from_trace(recorder)


def _record_run_meta(
    recorder,
    mode: str,
    layered: LayeredCircuit,
    trials: Sequence[Trial],
    num_instructions: Optional[int] = None,
) -> None:
    """Emit the ``run.meta`` instant that makes a trace self-describing."""
    args = {
        "mode": mode,
        "num_trials": len(trials),
        "num_distinct_trials": len(set(trials)),
        "num_layers": layered.num_layers,
        "num_gates": layered.num_gates,
        "baseline_ops": baseline_operation_count(layered, trials),
    }
    if num_instructions is not None:
        args["num_instructions"] = num_instructions
    recorder.instant("run.meta", cat="run", **args)


class _SpillArea:
    """Lazy scratch directory for spilled snapshot amplitudes.

    Spill files are transient scratch, not durability (that is the run
    journal's job): on a clean finish every file has been reloaded and
    unlinked; a temp directory we created is removed even on error.
    """

    def __init__(self, budget: CacheBudget) -> None:
        self._dir = budget.spill_dir
        self._created = False
        self._serial = 0

    def allocate(self, slot: int, layer: int) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(prefix="repro-spill-")
            self._created = True
        elif not os.path.isdir(self._dir):
            os.makedirs(self._dir, exist_ok=True)
        self._serial += 1
        return os.path.join(
            self._dir, f"snapshot-{self._serial:04d}-s{slot}-l{layer}.c128"
        )

    def cleanup(self) -> None:
        if self._created and self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)


def _enforce_budget(
    cache: StateCache,
    backend: SimulationBackend,
    budget: CacheBudget,
    spill_area: _SpillArea,
    recorder,
) -> None:
    """Degrade coldest resident snapshots until the budget is met."""
    while cache.over_budget:
        slot = cache.coldest_resident_slot()
        if slot is None:  # pragma: no cover - over_budget implies resident
            break
        state, layer = cache.peek(slot)
        vector = getattr(state, "vector", None)
        if vector is None:
            raise ScheduleError(
                "cache budgets require a statevector-family backend "
                "(snapshot states must expose .vector)"
            )
        if budget.mode == "drop":
            cache.mark_dropped(slot)
            backend.release_state(state)
            if recorder:
                recorder.instant("cache.drop", cat="cache", slot=slot, layer=layer)
                recorder.counter("cache.drop", 1)
        elif budget.mode == "spill":
            path = spill_area.allocate(slot, layer)
            flat = np.ascontiguousarray(vector)
            flat.tofile(path)
            cache.mark_spilled(slot, path, payload_checksum(flat))
            backend.release_state(state)
            if recorder:
                recorder.instant("cache.spill", cat="cache", slot=slot, layer=layer)
                recorder.counter("cache.spill", 1)
        else:
            raise ScheduleError(
                f"unknown cache degradation mode {budget.mode!r} "
                "(expected 'spill' or 'drop')"
            )


def _recompute_snapshot(
    backend: SimulationBackend,
    layered: LayeredCircuit,
    events: Sequence[Any],
    layer: int,
):
    """Rebuild a dropped snapshot from its event provenance.

    Replays the exact advance/inject boundary sequence the original prefix
    walk used (advance to each event's layer, inject, final advance to the
    snapshot layer), so segment memoization and kernel fusion see the same
    segment boundaries and the rebuilt amplitudes are bit-identical.
    """
    state = backend.make_initial()
    cursor = 0
    for event in events:
        target = event.layer + 1
        if target > cursor:
            backend.apply_layers(state, cursor, target)
            cursor = target
        backend.apply_operator(state, event.gate, (event.qubit,))
    if layer > cursor:
        backend.apply_layers(state, cursor, layer)
    return state


def _restore_degradable(
    cache: StateCache,
    backend: SimulationBackend,
    layered: LayeredCircuit,
    slot: int,
    recorder,
) -> Tuple[Any, int, Tuple[Any, ...]]:
    """Take a slot that may hold a degraded stub; rehydrate if needed."""
    entry, layer, provenance = cache.take_full(slot)
    events = provenance or ()
    if isinstance(entry, SpilledSnapshot):
        vector = np.fromfile(entry.path, dtype=np.complex128)
        if payload_checksum(vector) != entry.checksum:
            raise CorruptionError(
                f"spilled snapshot {entry.path!r} failed its checksum"
            )
        os.unlink(entry.path)
        state = backend.adopt_state(
            Statevector.from_buffer(vector, layered.num_qubits)
        )
        cache.note_spill_load()
        if recorder:
            recorder.instant("cache.spill.load", cat="cache", slot=slot, layer=layer)
            recorder.counter("cache.spill.load", 1)
    elif isinstance(entry, DroppedSnapshot):
        ops_before = backend.ops_applied
        state = _recompute_snapshot(backend, layered, entry.provenance, layer)
        cache.note_recompute()
        if recorder:
            ops_delta = backend.ops_applied - ops_before
            recorder.instant(
                "cache.recompute", cat="cache", slot=slot, layer=layer,
                ops=ops_delta,
            )
            recorder.counter("ops.applied", ops_delta)
            recorder.counter("cache.recompute", 1)
    else:
        state = entry
    return state, layer, events


def run_optimized(
    layered: LayeredCircuit,
    trials: Sequence[Trial],
    backend: SimulationBackend,
    on_finish: Optional[FinishCallback] = None,
    plan: Optional[ExecutionPlan] = None,
    check: bool = False,
    recorder=None,
    entry_state=None,
    entry_layer: int = 0,
    entry_events: Tuple = (),
    cache_budget: Optional[CacheBudget] = None,
    shared: Optional[SharedPrefixStore] = None,
    stop=None,
) -> ExecutionOutcome:
    """Execute ``trials`` with prefix-state reuse.

    Parameters
    ----------
    plan:
        A prebuilt plan (must cover exactly these trials); built on demand
        otherwise.
    on_finish:
        Streaming consumer of final states.  Receives the backend's
        ``finish`` payload (a statevector for the statevector backend,
        ``None`` for the counting backend) and the tuple of original trial
        indices sharing that state.  When the working state is dropped
        right after a ``Finish`` (next instruction is a ``Restore``, or the
        plan ends — true for every ``Finish`` the planner emits) the
        payload *borrows* the working state via ``backend.finish_view``
        instead of copying it; callbacks that retain payloads past the
        call must copy them.
    check:
        Run the static plan sanitizer (:func:`repro.lint.sanitize_plan`)
        before touching the backend: slot discipline, layer alignment and
        per-trial event exactness are proven up front, so a bad plan fails
        fast instead of mid-run with statevectors allocated.
    recorder:
        Optional :class:`~repro.obs.recorder.TraceRecorder`.  Falsy
        recorders (``None`` or :class:`~repro.obs.recorder.NullRecorder`)
        cost one truthiness check per plan instruction and nothing else.
    entry_state / entry_layer / entry_events:
        Resume execution from a mid-circuit state instead of ``|0...0>``:
        ``entry_state`` (adopted via ``backend.adopt_state``) is a state
        already advanced to ``entry_layer`` with ``entry_events`` injected.
        This is how parallel workers replay a sub-plan cut out of a larger
        plan (:mod:`repro.core.parallel`); the plan's instructions must
        start from ``entry_layer`` and the sanitizer (``check=True``)
        verifies trial exactness against the *full* event histories.
    cache_budget:
        Optional :class:`~repro.core.cache.CacheBudget` capping the
        resident statevector bytes; snapshots beyond the budget are
        spilled to disk or dropped-and-recomputed (statevector-family
        backends only).  Results and nominal peak-MSV accounting are
        unchanged; ``CacheStats`` reports the degradation counters and the
        resident peaks.
    shared:
        Optional cross-job :class:`~repro.core.shared.SharedPrefixStore`.
        Before each ``Advance`` the executor probes the store with the
        working state's provenance key extended by that advance; on a hit
        it adopts the cached amplitudes (bit-identical by key equality —
        see :mod:`repro.core.shared`) and counts the skipped gates into
        ``ops_shared`` instead of executing them.  Prefix states are
        published at every ``Snapshot`` and ``Finish``.  Requires a
        statevector-family backend and is ignored (with exact results)
        when ``entry_state`` is set, since a mid-circuit entry state has
        no provenance key.
    stop:
        Optional ``threading.Event``-like object polled once per plan
        instruction; when set, the run raises :class:`RunInterrupted`
        after releasing its states.  Every finish delivered before the
        interrupt is complete and in order, so a journal tee remains a
        valid resume prefix.
    """
    if plan is None:
        plan = build_plan(layered, trials)
    if plan.num_trials != len(trials):
        raise ScheduleError(
            f"plan covers {plan.num_trials} trials, got {len(trials)}"
        )
    if check:
        plan.validate(
            trials=trials,
            layered=layered,
            entry_layer=entry_layer,
            entry_events=entry_events,
        )

    backend.reset_counter()
    backend.set_recorder(recorder)
    state_bytes = 16 * (1 << layered.num_qubits)
    cache = StateCache(
        recorder=recorder, budget=cache_budget, state_bytes=state_bytes
    )
    track_provenance = cache_budget is not None
    working_events: List[Any] = list(entry_events) if track_provenance else []
    spill_area = _SpillArea(cache_budget) if cache_budget is not None else None
    if recorder:
        _record_run_meta(
            recorder, "optimized", layered, trials, num_instructions=len(plan)
        )
        recorder.begin("run", cat="run")
    if entry_state is None:
        working = backend.make_initial()
        working_layer = 0
    else:
        working = backend.adopt_state(entry_state)
        working_layer = entry_layer
    cache.working_created()
    finish_calls = 0
    trials_done = 0
    ops_shared = 0
    working_moved = False  # working was moved into the cache (no copy taken)

    # Cross-job sharing needs a provenance key rooted at |0...0>; an entry
    # state resumes mid-circuit with unknown boundary history, so sharing
    # is disabled there (results are unchanged — only reuse is lost).
    share_active = shared is not None and entry_state is None
    if share_active:
        if getattr(working, "vector", None) is None:
            raise ScheduleError(
                "shared prefix store requires a statevector-family backend "
                "(states must expose .vector)"
            )
        fingerprint = circuit_fingerprint(layered)
        working_steps: Tuple[Any, ...] = ()
        slot_steps: Dict[int, Tuple[Any, ...]] = {}

    instructions = plan.instructions
    try:
        for index, instr in enumerate(instructions):
            if stop is not None and stop.is_set():
                backend.release_state(working)
                raise RunInterrupted(
                    "optimized run interrupted by stop request",
                    trials_completed=trials_done,
                )
            if isinstance(instr, Advance):
                if instr.start_layer != working_layer:
                    raise ScheduleError(
                        f"advance from layer {instr.start_layer} but working "
                        f"state is at layer {working_layer}"
                    )
                if share_active:
                    candidate = working_steps + (
                        advance_step(instr.start_layer, instr.end_layer),
                    )
                    fetched = shared.fetch(fingerprint, candidate)
                    if fetched is not None:
                        # Another job already computed this exact segment
                        # sequence; adopt its amplitudes instead of
                        # re-executing.  The skipped gates go into
                        # ops_shared, never ops_applied.
                        gates = layered.gates_between(
                            instr.start_layer, instr.end_layer
                        )
                        backend.release_state(working)
                        working = backend.adopt_state(
                            Statevector.from_buffer(
                                fetched, layered.num_qubits
                            )
                        )
                        working_layer = instr.end_layer
                        working_steps = candidate
                        ops_shared += gates
                        shared.note_saved(gates)
                        if recorder:
                            recorder.instant(
                                "shared.hit",
                                cat="shared",
                                start=instr.start_layer,
                                end=instr.end_layer,
                                gates=gates,
                            )
                            recorder.counter("ops.shared", gates)
                        continue
                    working_steps = candidate
                if recorder:
                    span = f"advance[{instr.start_layer},{instr.end_layer})"
                    gates = layered.gates_between(
                        instr.start_layer, instr.end_layer
                    )
                    recorder.begin(span, cat="segment", gates=gates)
                    backend.apply_layers(
                        working, instr.start_layer, instr.end_layer
                    )
                    recorder.end(span, cat="segment")
                    recorder.counter("ops.applied", gates)
                else:
                    backend.apply_layers(
                        working, instr.start_layer, instr.end_layer
                    )
                working_layer = instr.end_layer
            elif isinstance(instr, Snapshot):
                # Move peephole: when the very next instruction is a Restore,
                # the working state is dropped in the same plan step — the
                # stored snapshot can steal it instead of copying.  Cache
                # accounting is unchanged (it mirrors the plan's nominal
                # demand, keeping the static peak-MSV cross-check exact); only
                # the allocation and memcpy are skipped.
                moved = index + 1 < len(instructions) and isinstance(
                    instructions[index + 1], Restore
                )
                snapshot = working if moved else backend.copy_state(working)
                try:
                    assigned = cache.store(
                        snapshot,
                        working_layer,
                        slot=instr.slot,
                        provenance=(
                            tuple(working_events) if track_provenance else None
                        ),
                    )
                except RuntimeError as exc:
                    raise ScheduleError(str(exc)) from exc
                if assigned != instr.slot:
                    raise ScheduleError(
                        f"cache stored snapshot in slot {assigned}, plan "
                        f"expected slot {instr.slot}"
                    )
                working_moved = moved
                if recorder:
                    recorder.instant(
                        "cache.store",
                        cat="cache",
                        slot=assigned,
                        layer=working_layer,
                        moved=moved,
                    )
                    if moved:
                        recorder.counter("cache.store.moved", 1)
                if share_active:
                    # Publish before budget enforcement can spill this very
                    # snapshot out from under us.
                    slot_steps[instr.slot] = working_steps
                    if shared.publish(
                        fingerprint, working_steps, snapshot.vector,
                        working_layer,
                    ) and recorder:
                        recorder.counter("shared.publish", 1)
                if cache_budget is not None:
                    _enforce_budget(
                        cache, backend, cache_budget, spill_area, recorder
                    )
            elif isinstance(instr, Inject):
                event = instr.event
                if event.layer + 1 != working_layer:
                    raise ScheduleError(
                        f"inject {event} at working layer {working_layer}"
                    )
                backend.apply_operator(working, event.gate, (event.qubit,))
                if track_provenance:
                    working_events.append(event)
                if share_active:
                    working_steps = working_steps + (inject_step(event),)
                if recorder:
                    recorder.instant(
                        "inject",
                        cat="exec",
                        layer=event.layer,
                        qubit=event.qubit,
                        pauli=event.pauli,
                    )
                    recorder.counter("ops.applied", 1)
            elif isinstance(instr, Restore):
                if working_moved:
                    # The working state lives on inside the cache (snapshot
                    # move); there is nothing to release.
                    working_moved = False
                else:
                    backend.release_state(working)
                cache.working_destroyed()
                if cache_budget is None:
                    working, working_layer = cache.take(instr.slot)
                else:
                    working, working_layer, restored_events = (
                        _restore_degradable(
                            cache, backend, layered, instr.slot, recorder
                        )
                    )
                    working_events = list(restored_events)
                if share_active:
                    working_steps = slot_steps.pop(instr.slot)
                cache.working_created()
                if recorder:
                    recorder.instant(
                        "cache.hit",
                        cat="cache",
                        slot=instr.slot,
                        layer=working_layer,
                        evict=True,
                    )
            elif isinstance(instr, Finish):
                if working_layer != layered.num_layers:
                    raise ScheduleError(
                        f"finish at layer {working_layer}, circuit has "
                        f"{layered.num_layers} layers"
                    )
                finish_calls += 1
                # Borrow peephole: the planner always drops the working state
                # right after a Finish (next instruction is a Restore, or the
                # plan ends), so the payload can borrow it instead of copying.
                # Guarded on the actual plan shape so hand-built plans that
                # keep using the state still get an independent copy.
                borrowed = index + 1 >= len(instructions) or isinstance(
                    instructions[index + 1], Restore
                )
                if share_active:
                    # Publish the leaf state too: an identical concurrent
                    # job then skips even its final segments.
                    if shared.publish(
                        fingerprint, working_steps, working.vector,
                        working_layer,
                    ) and recorder:
                        recorder.counter("shared.publish", 1)
                if on_finish is not None:
                    payload = (
                        backend.finish_view(working)
                        if borrowed
                        else backend.finish(working)
                    )
                    on_finish(payload, instr.trial_indices)
                if recorder:
                    recorder.instant(
                        "finish",
                        cat="exec",
                        trials=len(instr.trial_indices),
                        moved=borrowed,
                    )
                    recorder.counter(
                        "trials.finished", len(instr.trial_indices)
                    )
                    if borrowed:
                        recorder.counter("finish.moved", 1)
                trials_done += len(instr.trial_indices)
            else:  # pragma: no cover - exhaustive over instruction kinds
                raise ScheduleError(f"unknown plan instruction {instr!r}")
    finally:
        if spill_area is not None:
            spill_area.cleanup()

    backend.release_state(working)
    cache.working_destroyed()
    cache.assert_drained()
    outcome = ExecutionOutcome(
        ops_applied=backend.ops_applied,
        num_trials=len(trials),
        cache_stats=cache.stats(),
        finish_calls=finish_calls,
        ops_shared=ops_shared,
    )
    if recorder:
        recorder.end(
            "run",
            cat="run",
            ops_applied=outcome.ops_applied,
            peak_msv=outcome.peak_msv,
            finish_calls=outcome.finish_calls,
        )
    return outcome


def run_baseline(
    layered: LayeredCircuit,
    trials: Sequence[Trial],
    backend: SimulationBackend,
    on_finish: Optional[FinishCallback] = None,
    recorder=None,
    stop=None,
) -> ExecutionOutcome:
    """Execute every trial independently from scratch (no reuse, no reorder).

    This is the widely adopted straightforward Monte-Carlo strategy: one
    full circuit pass per trial, errors injected inline, only the final
    result kept.  ``on_finish`` is called once per trial.  With a
    ``recorder`` attached each trial becomes one contiguous span (the
    baseline is the one strategy where trials are not interleaved).
    """
    backend.reset_counter()
    backend.set_recorder(recorder)
    # Used only for uniform accounting (peak_msv == 1).
    cache = StateCache(recorder=recorder)
    if recorder:
        _record_run_meta(recorder, "baseline", layered, trials)
        recorder.begin("run", cat="run")

    for index, trial in enumerate(trials):
        if stop is not None and stop.is_set():
            raise RunInterrupted(
                "baseline run interrupted by stop request",
                trials_completed=index,
            )
        if recorder:
            recorder.begin(f"trial[{index}]", cat="trial", errors=trial.num_errors)
        state = backend.make_initial()
        cache.working_created()
        cursor = 0
        ops_before = backend.ops_applied
        for event in trial.events:
            target = event.layer + 1
            if target > cursor:
                backend.apply_layers(state, cursor, target)
                cursor = target
            backend.apply_operator(state, event.gate, (event.qubit,))
            if recorder:
                recorder.instant(
                    "inject",
                    cat="exec",
                    layer=event.layer,
                    qubit=event.qubit,
                    pauli=event.pauli,
                )
        if layered.num_layers > cursor:
            backend.apply_layers(state, cursor, layered.num_layers)
        if on_finish is not None:
            payload = backend.finish(state)
            on_finish(payload, (index,))
        backend.release_state(state)
        cache.working_destroyed()
        if recorder:
            recorder.counter("ops.applied", backend.ops_applied - ops_before)
            recorder.instant("finish", cat="exec", trials=1)
            recorder.counter("trials.finished", 1)
            recorder.end(f"trial[{index}]", cat="trial")

    cache.assert_drained()
    outcome = ExecutionOutcome(
        ops_applied=backend.ops_applied,
        num_trials=len(trials),
        cache_stats=cache.stats(),
        finish_calls=len(trials),
    )
    if recorder:
        recorder.end(
            "run",
            cat="run",
            ops_applied=outcome.ops_applied,
            peak_msv=outcome.peak_msv,
            finish_calls=outcome.finish_calls,
        )
    return outcome


def baseline_operation_count(
    layered: LayeredCircuit, trials: Sequence[Trial]
) -> int:
    """Closed-form basic-operation count of the baseline strategy.

    ``num_trials * num_gates + total_injected_errors`` — every trial pays
    the full circuit plus its own error operators.
    """
    total_errors = sum(trial.num_errors for trial in trials)
    return len(trials) * layered.num_gates + total_errors
