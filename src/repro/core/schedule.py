"""Execution-plan generation from the trial trie.

The optimized simulation is driven by a flat, inspectable *plan*: a list of
five instruction kinds interpreted by the executor against any backend.

``Advance(start, end)``
    Apply all gates of layers ``start .. end - 1`` to the working state.
``Snapshot(slot)``
    Store an independent copy of the working state in cache ``slot``
    (taken just before injecting an error whose sibling subtrees or parent
    terminals still need the pre-error state).
``Inject(event)``
    Apply one error operator to the working state.
``Restore(slot)``
    Discard the working state and resume from the snapshot in ``slot``
    (the slot is consumed — this is the drop-on-last-use policy).
``Finish(trial_indices)``
    The working state has reached the final layer; it is the final state of
    every listed trial (several indices = deduplicated identical trials).

Plan shape
----------
The plan is a depth-first traversal of the trie.  At each node the working
state advances **monotonically** through the layers, serving children in
event order; trials terminating at the node are finished *after* the
children, once the frontier reaches the end of the circuit — this is the
paper's frontier narrative ("after finishing the trials with the first
error in the first layer, we can execute one more layer and store the new
state as S2; now S1 can be dropped") and it never recomputes a layer.  A
snapshot is taken only when the node's state has further pending consumers;
the last consumer steals the state instead of copying it.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple, Union

from ..circuits.layers import LayeredCircuit
from .events import ErrorEvent, Trial
from .trie import TrialTrie, TrieNode

__all__ = [
    "Advance",
    "Snapshot",
    "Inject",
    "Restore",
    "Finish",
    "PlanInstruction",
    "ExecutionPlan",
    "build_plan",
    "build_plan_from_trie",
    "emit_subtree",
    "ScheduleError",
]


class ScheduleError(RuntimeError):
    """Raised when a trial set cannot be scheduled against a circuit."""


class Advance(NamedTuple):
    start_layer: int
    end_layer: int


class Snapshot(NamedTuple):
    slot: int


class Inject(NamedTuple):
    event: ErrorEvent


class Restore(NamedTuple):
    slot: int


class Finish(NamedTuple):
    trial_indices: Tuple[int, ...]


PlanInstruction = Union[Advance, Snapshot, Inject, Restore, Finish]


class ExecutionPlan:
    """A fully resolved optimized-execution schedule."""

    def __init__(
        self,
        instructions: List[PlanInstruction],
        num_trials: int,
        num_layers: int,
    ) -> None:
        self.instructions = instructions
        self.num_trials = num_trials
        self.num_layers = num_layers

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def count(self, kind: type) -> int:
        return sum(1 for instr in self.instructions if isinstance(instr, kind))

    def finished_trial_indices(self) -> List[int]:
        """Every trial index finished by the plan, in completion order."""
        finished: List[int] = []
        for instr in self.instructions:
            if isinstance(instr, Finish):
                finished.extend(instr.trial_indices)
        return finished

    def planned_operations(self, layered: LayeredCircuit) -> int:
        """Basic-operation count of the plan (closed form, no execution)."""
        ops = 0
        for instr in self.instructions:
            if isinstance(instr, Advance):
                ops += layered.gates_between(instr.start_layer, instr.end_layer)
            elif isinstance(instr, Inject):
                ops += 1
        return ops

    def validate(
        self, trials=None, layered=None, entry_layer=0, entry_events=()
    ) -> None:
        """Run the static plan sanitizer; raise on the first violation.

        Delegates to :func:`repro.lint.sanitize_plan` — the symbolic
        interpreter that proves slot discipline, layer alignment, trial
        coverage and (when ``trials`` is given) per-trial error-event
        exactness, all without a backend.  Raises :class:`ScheduleError`
        listing every error-severity diagnostic.  Cheap enough to run on
        every schedule in debug contexts; ``run_optimized(check=True)``
        calls it before execution.  ``entry_layer`` / ``entry_events``
        audit a sub-plan that resumes from a shared-prefix entry state
        (see :mod:`repro.core.parallel`).
        """
        audit = self.audit(
            trials=trials,
            layered=layered,
            entry_layer=entry_layer,
            entry_events=entry_events,
        )
        if not audit.ok:
            raise ScheduleError(
                "; ".join(str(diagnostic) for diagnostic in audit.errors)
            )

    def audit(self, trials=None, layered=None, entry_layer=0, entry_events=()):
        """Sanitize without raising: the full :class:`repro.lint.PlanAudit`.

        Exposes the diagnostics *and* the static cache bounds
        (``audit.peak_msv`` equals the runtime ``CacheStats.peak_msv`` of
        an optimized run of this plan).
        """
        from ..lint.plan_sanitizer import sanitize_plan

        return sanitize_plan(
            self,
            trials=trials,
            layered=layered,
            entry_layer=entry_layer,
            entry_events=entry_events,
        )

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan(instructions={len(self.instructions)}, "
            f"trials={self.num_trials}, layers={self.num_layers})"
        )


class _PlanBuilder:
    def __init__(
        self, layered: LayeredCircuit, trie: Optional[TrialTrie] = None
    ) -> None:
        self.layered = layered
        self.trie = trie
        self.instructions: List[PlanInstruction] = []
        self.next_slot = 0

    def build(self) -> ExecutionPlan:
        assert self.trie is not None, "build() needs a trie"
        if self.trie.num_trials == 0:
            raise ScheduleError("cannot schedule an empty trial set")
        self._check_events()
        self._emit_node(self.trie.root, entry_layer=0)
        plan = ExecutionPlan(
            self.instructions,
            num_trials=self.trie.num_trials,
            num_layers=self.layered.num_layers,
        )
        return plan

    def _check_events(self) -> None:
        num_layers = self.layered.num_layers
        num_qubits = self.layered.num_qubits
        for trial in self.trie.trials:
            for event in trial.events:
                if event.layer >= num_layers:
                    raise ScheduleError(
                        f"event {event} beyond circuit depth {num_layers}"
                    )
                if event.qubit >= num_qubits:
                    raise ScheduleError(
                        f"event {event} beyond qubit count {num_qubits}"
                    )

    def _emit_node(self, node: TrieNode, entry_layer: int) -> None:
        cursor = entry_layer
        children = node.sorted_children()
        has_terminals = bool(node.terminal_trials)
        for position, child in enumerate(children):
            target = child.event.layer + 1
            if target > cursor:
                self.instructions.append(Advance(cursor, target))
                cursor = target
            is_last_consumer = position == len(children) - 1 and not has_terminals
            if is_last_consumer:
                # The child steals the node's state: inject directly.
                self.instructions.append(Inject(child.event))
                self._emit_node(child, cursor)
            else:
                slot = self.next_slot
                self.next_slot += 1
                self.instructions.append(Snapshot(slot))
                self.instructions.append(Inject(child.event))
                self._emit_node(child, cursor)
                self.instructions.append(Restore(slot))
        if has_terminals:
            if self.layered.num_layers > cursor:
                self.instructions.append(Advance(cursor, self.layered.num_layers))
            self.instructions.append(Finish(tuple(node.terminal_trials)))


def build_plan(
    layered: LayeredCircuit,
    trials: Sequence[Trial],
    check: bool = False,
) -> ExecutionPlan:
    """Build the optimized execution plan for ``trials`` on ``layered``.

    The trials may be in any order — the trie canonicalizes them into the
    reordered (lexicographic) schedule.  With ``check=True`` the finished
    plan is run through the static sanitizer (including the per-trial
    exactness replay) before being returned.
    """
    trie = TrialTrie(trials)
    plan = _PlanBuilder(layered, trie).build()
    if check:
        plan.validate(trials=trials, layered=layered)
    return plan


def emit_subtree(
    layered: LayeredCircuit,
    node: TrieNode,
    entry_layer: int,
    start_slot: int = 0,
) -> Tuple[List[PlanInstruction], int]:
    """DFS instruction sequence for ``node``'s subtree, entered mid-circuit.

    Emits exactly the instructions :func:`build_plan` would emit for the
    subtree rooted at ``node`` when the working state has already advanced
    to ``entry_layer`` with the node's path events injected — the building
    block of the plan partitioner (:mod:`repro.core.parallel`).  Snapshot
    slots are numbered from ``start_slot``; returns ``(instructions,
    next_free_slot)``.  ``Finish`` instructions carry the trie's original
    (global) trial indices; callers remap them to a local index space when
    the sub-plan runs standalone.
    """
    builder = _PlanBuilder(layered)
    builder.next_slot = start_slot
    builder._emit_node(node, entry_layer)
    return builder.instructions, builder.next_slot


def build_plan_from_trie(
    layered: LayeredCircuit, trie: TrialTrie, check: bool = False
) -> ExecutionPlan:
    """Build the plan from a pre-built trie (avoids re-inserting trials)."""
    plan = _PlanBuilder(layered, trie).build()
    if check:
        plan.validate(trials=trie.trials, layered=layered)
    return plan
