"""Packed large-scale trial analysis: the paper's 10^6-trial setting.

The object pipeline (``Trial`` tuples -> trie -> plan -> executor) is ideal
for real statevector runs, but the scalability study (Figs. 7-8: 10^6
trials on 40-qubit circuits) only needs the *metrics* — operation counts
and peak MSVs.  This module computes exactly those numbers with two
orders of magnitude less memory:

* each error event is packed into **5 bytes** (big-endian layer, qubit,
  Pauli index), and a trial is the concatenation of its sorted events —
  so Python's plain ``bytes`` comparison is precisely the lexicographic
  trial order of Algorithm 1;
* after sorting, a **single streaming pass** with an explicit frame stack
  replays the scheduler's semantics arithmetically: frame creation pays
  the parent's layer advance plus one inject, a frame popped with pending
  terminals pays the advance-to-end, and peak MSV is computed bottom-up
  from per-frame relative peaks (a child subtree contributes ``+1`` while
  its parent still has consumers — the snapshot — and ``+0`` when it is
  the parent's last consumer and steals the state).

Exact parity with the real executor is property-tested: for random trial
sets the streaming analysis must report the identical operation count and
peak MSV as ``run_optimized`` on the counting backend.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..circuits.layers import LayeredCircuit
from ..noise.model import NoiseModel
from .events import PAULI_LABELS, Trial

__all__ = [
    "EVENT_BYTES",
    "pack_trial",
    "pack_trials",
    "unpack_trial_events",
    "sample_packed_trials",
    "PackedAnalysis",
    "analyze_packed_trials",
]

#: Bytes per packed event: 2 (layer) + 2 (qubit) + 1 (Pauli index).
EVENT_BYTES = 5

_PAULI_INDEX: Dict[str, int] = {label: i for i, label in enumerate(PAULI_LABELS)}


def _pack_event(layer: int, qubit: int, pauli_index: int) -> bytes:
    if layer >= 1 << 16 or qubit >= 1 << 16:
        raise ValueError(f"event ({layer}, {qubit}) exceeds the 16-bit packing")
    return bytes(
        (layer >> 8, layer & 0xFF, qubit >> 8, qubit & 0xFF, pauli_index)
    )


def pack_trial(trial: Trial) -> bytes:
    """Pack a :class:`Trial`'s events (measurement flips are not encoded)."""
    return b"".join(
        _pack_event(event.layer, event.qubit, _PAULI_INDEX[event.pauli])
        for event in trial.events
    )


def pack_trials(trials: Sequence[Trial]) -> List[bytes]:
    """Pack every trial; byte order == Algorithm 1's lexicographic order."""
    return [pack_trial(trial) for trial in trials]


def unpack_trial_events(packed: bytes) -> List[Tuple[int, int, str]]:
    """Decode a packed trial back into ``(layer, qubit, pauli)`` tuples."""
    if len(packed) % EVENT_BYTES:
        raise ValueError(f"packed length {len(packed)} not a multiple of 5")
    events = []
    for offset in range(0, len(packed), EVENT_BYTES):
        chunk = packed[offset : offset + EVENT_BYTES]
        layer = (chunk[0] << 8) | chunk[1]
        qubit = (chunk[2] << 8) | chunk[3]
        events.append((layer, qubit, PAULI_LABELS[chunk[4]]))
    return events


def sample_packed_trials(
    layered: LayeredCircuit,
    model: NoiseModel,
    num_trials: int,
    rng: np.random.Generator,
) -> List[bytes]:
    """Sample trials directly in packed form (no Trial objects).

    Statistically identical to :func:`repro.noise.sampling.sample_trials`
    (same binomial-per-channel-group scheme, same label expansion); only
    the representation differs.  Measurement flips are not sampled — the
    packed path computes cost metrics, which readout flips never affect.
    """
    if num_trials < 1:
        raise ValueError(f"need at least one trial, got {num_trials}")
    positions = model.error_positions(layered)
    groups: Dict[object, List] = {}
    for position in positions:
        groups.setdefault(position.channel, []).append(position)

    events_per_trial: List[List[bytes]] = [[] for _ in range(num_trials)]
    for channel, group in groups.items():
        group_size = len(group)
        probability = channel.total_probability
        counts = rng.binomial(group_size, probability, size=num_trials)
        hot = np.nonzero(counts)[0]
        for trial_index in hot:
            fired = int(counts[trial_index])
            chosen = rng.choice(group_size, size=fired, replace=False)
            labels = channel.sample_labels(fired, rng)
            bucket = events_per_trial[trial_index]
            for position_index, label in zip(chosen, labels):
                position = group[int(position_index)]
                for component, char in enumerate(str(label)):
                    if char != "i":
                        bucket.append(
                            _pack_event(
                                position.layer,
                                position.qubits[component],
                                _PAULI_INDEX[char],
                            )
                        )
    packed = []
    for bucket in events_per_trial:
        bucket.sort()
        packed.append(b"".join(bucket))
    return packed


def _lcp_events(a: bytes, b: bytes) -> int:
    """Number of leading shared events between two packed trials."""
    if a == b:
        return len(a) // EVENT_BYTES
    limit = min(len(a), len(b))
    shared = 0
    offset = 0
    while offset < limit and a[offset : offset + EVENT_BYTES] == b[
        offset : offset + EVENT_BYTES
    ]:
        shared += 1
        offset += EVENT_BYTES
    return shared


class PackedAnalysis:
    """Metrics of a packed-trial analysis (mirrors :class:`RunMetrics`)."""

    def __init__(
        self,
        num_trials: int,
        num_distinct_trials: int,
        optimized_ops: int,
        baseline_ops: int,
        peak_msv: int,
        total_events: int,
    ) -> None:
        self.num_trials = num_trials
        self.num_distinct_trials = num_distinct_trials
        self.optimized_ops = optimized_ops
        self.baseline_ops = baseline_ops
        self.peak_msv = peak_msv
        self.total_events = total_events

    @property
    def normalized_computation(self) -> float:
        if self.baseline_ops == 0:
            return 1.0
        return self.optimized_ops / self.baseline_ops

    @property
    def computation_saving(self) -> float:
        return 1.0 - self.normalized_computation

    def __repr__(self) -> str:
        return (
            f"PackedAnalysis(trials={self.num_trials}, "
            f"normalized={self.normalized_computation:.3f}, "
            f"msv={self.peak_msv})"
        )


class _Frame:
    """One node of the (implicit) trie on the streaming stack."""

    __slots__ = ("cursor", "has_terminal", "best_child", "last_child_peak")

    def __init__(self, cursor: int) -> None:
        #: Layer this node's state has advanced to so far.
        self.cursor = cursor
        #: A trial terminates exactly at this node (finish-to-end pending).
        self.has_terminal = False
        #: Max over completed non-last children of (child_rel_peak + 1).
        self.best_child = 0
        #: rel_peak of the most recently completed child (may become last).
        self.last_child_peak = 0


def analyze_packed_trials(
    layered: LayeredCircuit, packed: Sequence[bytes]
) -> PackedAnalysis:
    """Compute the optimized run's metrics from packed trials.

    Sorts the trials (Algorithm 1) and streams once over them, replaying
    the scheduler's cost and memory semantics without building a trie or
    touching amplitudes.  Equivalent to ``run_optimized`` with the
    counting backend (property-tested), but O(active-path) memory.
    """
    if not packed:
        raise ValueError("cannot analyze an empty trial set")
    num_layers = layered.num_layers
    ordered = sorted(packed)

    total_events = sum(len(p) for p in ordered) // EVENT_BYTES
    baseline_ops = len(ordered) * layered.num_gates + total_events

    ops = 0
    stack: List[_Frame] = [_Frame(0)]

    def close_frame() -> int:
        """Pop the deepest frame; returns its relative MSV peak."""
        nonlocal ops
        frame = stack.pop()
        if frame.has_terminal:
            ops += layered.gates_between(frame.cursor, num_layers)
        # The final child steals the state (no snapshot) unless the frame
        # still had a terminal pending, which keeps a snapshot alive.
        final_bonus = 1 if frame.has_terminal else 0
        return max(
            1,
            frame.best_child,
            frame.last_child_peak + final_bonus,
        )

    def fold_child(parent: _Frame, child_peak: int) -> None:
        """A completed child turned out not to be the parent's last."""
        parent.best_child = max(parent.best_child, parent.last_child_peak + 1)
        parent.last_child_peak = child_peak

    previous = None
    num_distinct = 0
    for trial in ordered:
        if trial == previous:
            continue  # duplicate: zero marginal cost, terminal already set
        num_distinct += 1
        shared = _lcp_events(previous, trial) if previous is not None else 0
        # Pop frames deeper than the shared prefix.
        while len(stack) - 1 > shared:
            child_peak = close_frame()
            fold_child(stack[-1], child_peak)
        # Descend through the new suffix events.
        for offset in range(
            shared * EVENT_BYTES, len(trial), EVENT_BYTES
        ):
            layer = (trial[offset] << 8) | trial[offset + 1]
            parent = stack[-1]
            target = layer + 1
            if target > parent.cursor:
                ops += layered.gates_between(parent.cursor, target)
                parent.cursor = target
            ops += 1  # the injected error operator
            stack.append(_Frame(parent.cursor))
        stack[-1].has_terminal = True
        previous = trial

    while len(stack) > 1:
        child_peak = close_frame()
        fold_child(stack[-1], child_peak)
    peak_msv = close_frame()

    return PackedAnalysis(
        num_trials=len(ordered),
        num_distinct_trials=num_distinct,
        optimized_ops=ops,
        baseline_ops=baseline_ops,
        peak_msv=peak_msv,
        total_events=total_events,
    )
