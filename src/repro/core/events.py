"""Error events and Monte-Carlo trials.

A *trial* is one complete pre-sampled error-injection pattern for one run of
the circuit (Sec. III-B-2): the ordered list of :class:`ErrorEvent` —
*where* (layer, qubit) and *what* (Pauli operator) — plus the classical
measurement bits that will be flipped at readout.

Trials are generated **statically, before any simulation** — that is the
enabling step of the paper's optimization: only because every trial is known
up front can they be reordered to maximize shared prefixes.

Ordering convention: an event at ``layer = L`` is injected *after* all gates
of layer ``L`` have been applied (the paper injects errors at the end of
each layer).  Events within a trial are kept sorted by ``(layer, qubit,
pauli)``; that sorted event tuple is the trial's identity for reordering,
grouping and deduplication.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence, Tuple

from ..circuits.gates import Gate, standard_gate

__all__ = ["ErrorEvent", "Trial", "PAULI_LABELS", "make_trial"]

#: The error-operator alphabet of the symmetric depolarizing model.
PAULI_LABELS: Tuple[str, ...] = ("x", "y", "z")


class ErrorEvent(NamedTuple):
    """One injected error: Pauli ``pauli`` on ``qubit`` after layer ``layer``."""

    layer: int
    qubit: int
    pauli: str

    @property
    def gate(self) -> Gate:
        """The error operator as a gate object."""
        return standard_gate(self.pauli)

    def __str__(self) -> str:
        return f"{self.pauli.upper()}@(L{self.layer},q{self.qubit})"


class Trial(NamedTuple):
    """One pre-sampled Monte-Carlo trial.

    Attributes
    ----------
    events:
        Injected error events, sorted by ``(layer, qubit, pauli)``.
    meas_flips:
        Classical bits flipped at readout (sorted tuple of clbit indices).
    """

    events: Tuple[ErrorEvent, ...]
    meas_flips: Tuple[int, ...] = ()

    @property
    def num_errors(self) -> int:
        return len(self.events)

    @property
    def is_error_free(self) -> bool:
        return not self.events

    def sort_key(self) -> Tuple[Tuple[int, int, str], ...]:
        """The lexicographic reordering key (Algorithm 1's order)."""
        return tuple((e.layer, e.qubit, e.pauli) for e in self.events)

    def __str__(self) -> str:
        if not self.events:
            body = "error-free"
        else:
            body = ", ".join(str(e) for e in self.events)
        if self.meas_flips:
            body += f"; flips={list(self.meas_flips)}"
        return f"Trial({body})"


def make_trial(
    events: Sequence[ErrorEvent], meas_flips: Sequence[int] = ()
) -> Trial:
    """Build a trial with canonical (sorted) event and flip order.

    Raises :class:`ValueError` if two events collide on the same
    ``(layer, qubit)`` position — a position holds at most one operator.
    """
    ordered = tuple(sorted(events))
    positions = [(e.layer, e.qubit) for e in ordered]
    if len(set(positions)) != len(positions):
        raise ValueError(f"duplicate error position in {ordered}")
    for event in ordered:
        if event.pauli not in PAULI_LABELS:
            raise ValueError(f"unknown error operator {event.pauli!r}")
        if event.layer < 0 or event.qubit < 0:
            raise ValueError(f"negative layer/qubit in {event}")
    return Trial(ordered, tuple(sorted(set(int(c) for c in meas_flips))))
