"""High-level noisy-simulation driver: the library's main entry point.

:class:`NoisySimulator` ties the full pipeline together::

    from repro import NoisySimulator, ibm_yorktown
    sim = NoisySimulator(circuit, ibm_yorktown(), seed=7)
    result = sim.run(num_trials=1024)          # optimized, real statevector
    result.counts                              # measurement histogram
    result.metrics.computation_saving          # ~0.8 on paper workloads

Pipeline per run: layerize the circuit → statically sample all trials →
build the prefix trie / execution plan (the reordering) → execute on the
chosen backend → sample measurements (with classical readout flips) from
each distinct final state → aggregate counts and metrics.

``backend="counting"`` runs the identical schedule without amplitudes and
returns metrics only — this is how the 40-qubit scalability figures are
produced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.compiled import CompiledCircuit

from ..circuits.circuit import QuantumCircuit
from ..circuits.layers import LayeredCircuit, layerize
from ..noise.model import NoiseModel
from ..noise.sampling import sample_trials
from ..sim.backend import SimulationBackend, StatevectorBackend
from ..sim.counting import CountingBackend
from ..sim.measurement import apply_readout_flips
from ..sim.statevector import Statevector
from .events import Trial
from .executor import (
    run_baseline,
    run_optimized,
)
from .metrics import RunMetrics, compute_metrics
from .schedule import ExecutionPlan, build_plan

__all__ = ["SimulationResult", "NoisySimulator"]

_MODES = ("optimized", "baseline")
_BACKENDS = (
    "statevector",
    "statevector-interpreted",
    "counting",
    "stabilizer",
)


class SimulationResult:
    """Everything a run produced: counts, per-trial bits, metrics."""

    def __init__(
        self,
        counts: Dict[str, int],
        metrics: RunMetrics,
        mode: str,
        backend: str,
        trial_clbits: Optional[List[Dict[int, int]]] = None,
        final_states: Optional[List[Optional[Statevector]]] = None,
        journal=None,
        ops_shared: int = 0,
    ) -> None:
        #: Aggregated measurement histogram (bitstring -> occurrences).
        self.counts = counts
        #: Computation / memory metrics of the run.
        self.metrics = metrics
        self.mode = mode
        self.backend = backend
        #: Per-trial clbit values (original sampling order), when collected.
        self.trial_clbits = trial_clbits
        #: Per-trial final statevectors, when collected (tests/analysis only).
        self.final_states = final_states
        #: :class:`~repro.core.resilience.JournalSummary` of a journaled run.
        self.journal = journal
        #: Plan operations satisfied by a cross-job shared prefix store
        #: instead of execution (see :mod:`repro.core.shared`).
        self.ops_shared = ops_shared

    @property
    def num_trials(self) -> int:
        return self.metrics.num_trials

    def probabilities(self) -> Dict[str, float]:
        """Counts normalized to an output distribution."""
        total = sum(self.counts.values())
        if total == 0:
            return {}
        return {bits: count / total for bits, count in self.counts.items()}

    def __repr__(self) -> str:
        return (
            f"SimulationResult(mode={self.mode!r}, trials={self.num_trials}, "
            f"normalized={self.metrics.normalized_computation:.3f}, "
            f"msv={self.metrics.peak_msv})"
        )


class NoisySimulator:
    """Monte-Carlo noisy simulation with trial-reordering acceleration.

    Parameters
    ----------
    circuit:
        The circuit to simulate; measurements must be terminal.
    noise_model:
        Gate/measurement error model (see :mod:`repro.noise`).
    seed:
        Seeds both trial sampling and measurement sampling; runs with equal
        seeds and parameters are fully reproducible.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        noise_model: NoiseModel,
        seed: Optional[int] = None,
    ) -> None:
        self.circuit = circuit
        self.noise_model = noise_model
        self.layered: LayeredCircuit = layerize(circuit)
        self._rng = np.random.default_rng(seed)
        self._compiled: Optional["CompiledCircuit"] = None

    # -- pipeline stages (public for composition and testing) ---------------

    def sample(self, num_trials: int) -> List[Trial]:
        """Statically generate ``num_trials`` error-injection trials."""
        return sample_trials(self.layered, self.noise_model, num_trials, self._rng)

    def plan(self, trials: Sequence[Trial], check: bool = False) -> ExecutionPlan:
        """Reorder ``trials`` and build the optimized execution plan.

        ``check=True`` additionally proves the plan sound with the static
        sanitizer (:mod:`repro.lint`) before returning it.
        """
        return build_plan(self.layered, trials, check=check)

    def compiled_circuit(self) -> "CompiledCircuit":
        """The lazily built compiled-kernel form, shared across runs."""
        if self._compiled is None:
            from ..sim.compiled import CompiledCircuit

            self._compiled = CompiledCircuit(self.layered)
        return self._compiled

    def make_backend(self, backend: str) -> SimulationBackend:
        if backend == "statevector":
            from ..sim.compiled import CompiledStatevectorBackend

            return CompiledStatevectorBackend(
                self.layered, compiled=self.compiled_circuit()
            )
        if backend == "statevector-interpreted":
            return StatevectorBackend(self.layered)
        if backend == "counting":
            return CountingBackend(self.layered)
        if backend == "stabilizer":
            from ..sim.stabilizer import StabilizerBackend

            return StabilizerBackend(self.layered)
        raise ValueError(f"unknown backend {backend!r}; choose from {_BACKENDS}")

    # -- main entry points -----------------------------------------------------

    def run(
        self,
        num_trials: int = 1024,
        mode: str = "optimized",
        backend: str = "statevector",
        trials: Optional[Sequence[Trial]] = None,
        collect_final_states: bool = False,
        check: bool = False,
        recorder=None,
        workers: int = 0,
        partition_depth: int = 1,
        journal=None,
        max_cache_bytes: Optional[int] = None,
        cache_degrade: str = "spill",
        task_timeout: Optional[float] = None,
        retries: int = 2,
        task_weights: Optional[Sequence[int]] = None,
        batch_size: int = 0,
        hybrid: bool = False,
        shared=None,
        stop=None,
        on_trial=None,
    ) -> SimulationResult:
        """Sample (or reuse) trials and execute them.

        Parameters
        ----------
        mode:
            ``"optimized"`` (reordered, prefix reuse) or ``"baseline"``
            (every trial from scratch).  Both produce statistically
            identical results; only cost differs.
        backend:
            ``"statevector"`` for real simulation with measurement counts,
            ``"counting"`` for metrics only (counts will be empty).
        trials:
            Pre-sampled trials (e.g. to run both modes on the same set).
        collect_final_states:
            Keep every trial's final statevector on the result — memory
            heavy; meant for equivalence tests and small analyses.
        check:
            Statically sanitize the optimized plan before execution
            (ignored in baseline mode, which has no plan).
        recorder:
            Optional :class:`~repro.obs.recorder.TraceRecorder` capturing
            execution spans, cache events and the live-MSV timeline; see
            :mod:`repro.obs`.  Falsy recorders cost nothing on the hot
            path.
        workers:
            ``0`` (default) runs serially.  Any value >= 1 partitions the
            plan trie and executes the subtrees through
            :func:`~repro.core.parallel.run_parallel` — optimized mode,
            statevector-family backends only.  Counts are bit-identical
            to the serial run for the same seed, regardless of the worker
            count.
        partition_depth:
            Trie cut depth for the parallel partition (ignored serially).
        journal:
            Path to a crash-safe run journal.  A fresh run records every
            finish payload (fsync-on-commit) as it streams; re-running
            with the same path after a crash replays the committed
            finishes and recomputes only the unfinished trials — counts
            are bit-identical to an uninterrupted run.  Requires the
            optimized mode on a statevector-family backend.  The result's
            ``journal`` attribute carries the
            :class:`~repro.core.resilience.JournalSummary`.
        max_cache_bytes:
            Byte budget for the snapshot cache.  When the resident
            snapshots would exceed it, the coldest are degraded per
            ``cache_degrade`` — results stay bit-identical; only
            time/memory trade off.  Statevector-family backends only.
        cache_degrade:
            ``"spill"`` (default) writes evicted snapshots to disk and
            reloads them on restore; ``"drop"`` discards them and
            recomputes from the initial state when needed.
        task_timeout:
            Per-task deadline in seconds for parallel workers (see
            :func:`~repro.core.parallel.run_parallel`).
        retries:
            Parallel task retry budget before the parent falls back to
            inline execution.
        task_weights:
            Optional per-task schedule weights for the parallel path —
            typically a resource certificate's flop weights
            (``certificate["schedules"][...]["task_flops"]``), replacing
            the operation-count heuristic.  Scheduling only; results are
            bit-identical for any weighting.  Requires ``workers`` and is
            ignored by journaled runs (their task queue is resume-driven).
        batch_size:
            ``0`` (default) keeps the per-trial DFS executor.  Any value
            >= 1 switches to breadth-wise wavefront execution
            (:func:`~repro.core.wavefront.run_wavefront`): sibling
            subtrees facing the same layer segment advance together in
            one ``(2,)*n + (batch,)`` ndarray, capped at ``batch_size``
            columns.  Results, operation counts and cache accounting are
            bit-identical to the serial executor at every width.
            Requires the optimized mode on the compiled ``"statevector"``
            backend; incompatible with ``journal`` (the wavefront
            interleaves trials, so a trial-ordered resume log cannot be
            replayed against it).
        hybrid:
            Route execution through the Clifford/Pauli-frame fast path
            (:func:`~repro.core.hybrid.run_hybrid`): pure-Clifford trie
            spans run symbolically as Pauli-frame deltas over shared
            dense anchors, amplitudes materialize only at the first
            non-Clifford gate or at Finish.  Bit-identical payloads and
            nominal accounting at every configuration.  Requires the
            optimized mode on the compiled ``"statevector"`` backend;
            incompatible with ``journal`` and ``max_cache_bytes`` (the
            symbolic snapshot cache holds O(n) frames, not spillable
            statevectors).  Composes with ``workers`` (hybrid prefix)
            and ``batch_size`` (materialized fragments run through the
            wavefront executor).
        shared:
            Optional :class:`~repro.core.shared.SharedPrefixStore` for
            cross-job prefix deduplication — the service tier passes one
            store to every job on the same circuit family, so prefix
            states computed by one job are adopted (bit-identically) by
            the next instead of recomputed; skipped gates are reported as
            ``result.ops_shared``.  Requires the optimized mode on a
            statevector-family backend, serially (``workers == 0``, no
            ``batch_size``, no ``hybrid`` — those executors do not walk
            the per-trial provenance the store is keyed by).
        stop:
            Optional ``threading.Event``; when set mid-run the executor
            raises :class:`~repro.core.executor.RunInterrupted` after the
            finishes already streamed (and, for journaled runs, after the
            journal tail is committed), so a stopped run is resumable.
        on_trial:
            Optional callback ``(trial_index, bits)`` invoked once per
            trial as its measurement is sampled — the service tier's
            incremental result stream.  For a resumed journal run the
            replayed trials are delivered through it too, in their
            original order.  Requires a backend with readout (not
            ``"counting"``).
        """
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {_MODES}")
        statevector_family = backend in ("statevector", "statevector-interpreted")
        if workers:
            if mode != "optimized":
                raise ValueError(
                    "workers requires mode='optimized' (the baseline has "
                    "no plan to partition)"
                )
            if not statevector_family:
                raise ValueError(
                    f"workers requires a statevector-family backend, "
                    f"got {backend!r}"
                )
        if journal is not None:
            if mode != "optimized":
                raise ValueError(
                    "journal requires mode='optimized' (the baseline "
                    "streams no resumable finish payloads)"
                )
            if not statevector_family:
                raise ValueError(
                    f"journal requires a statevector-family backend "
                    f"(payload amplitudes are recorded), got {backend!r}"
                )
        if max_cache_bytes is not None and not statevector_family:
            raise ValueError(
                f"max_cache_bytes requires a statevector-family backend, "
                f"got {backend!r}"
            )
        if batch_size:
            if batch_size < 1:
                raise ValueError(
                    f"batch_size must be >= 1, got {batch_size}"
                )
            if mode != "optimized":
                raise ValueError(
                    "batch_size requires mode='optimized' (the baseline "
                    "has no plan to batch over)"
                )
            if backend != "statevector":
                raise ValueError(
                    "batch_size requires the compiled 'statevector' "
                    f"backend (batched kernel surface), got {backend!r}"
                )
            if journal is not None:
                raise ValueError(
                    "batch_size is incompatible with journal: the "
                    "wavefront interleaves trials, so the trial-ordered "
                    "resume log cannot be replayed against it"
                )
        if hybrid:
            if mode != "optimized":
                raise ValueError(
                    "hybrid requires mode='optimized' (the fast path "
                    "rewrites the optimized plan's trie spans)"
                )
            if backend != "statevector":
                raise ValueError(
                    "hybrid requires the compiled 'statevector' backend "
                    f"(anchor derivation and dense handoff), got {backend!r}"
                )
            if journal is not None:
                raise ValueError(
                    "hybrid is incompatible with journal: symbolic spans "
                    "produce no trial-ordered finish stream to journal"
                )
            if max_cache_bytes is not None:
                raise ValueError(
                    "hybrid is incompatible with max_cache_bytes: "
                    "symbolic snapshots are O(n) Pauli frames, not "
                    "budgetable statevectors"
                )
        if shared is not None:
            if mode != "optimized":
                raise ValueError(
                    "shared requires mode='optimized' (the baseline walks "
                    "no prefix states to share)"
                )
            if not statevector_family:
                raise ValueError(
                    f"shared requires a statevector-family backend "
                    f"(amplitudes are published), got {backend!r}"
                )
            if workers or batch_size or hybrid:
                raise ValueError(
                    "shared requires the serial per-trial executor "
                    "(workers=0, batch_size=0, hybrid=False); the batched "
                    "and partitioned executors do not walk the provenance "
                    "keys the store is shared under"
                )
        if on_trial is not None and backend == "counting":
            raise ValueError(
                "on_trial requires a backend with readout, got 'counting'"
            )
        cache_budget = None
        if max_cache_bytes is not None:
            from .cache import CacheBudget

            cache_budget = CacheBudget(
                max_bytes=max_cache_bytes, mode=cache_degrade
            )
        trial_list = list(trials) if trials is not None else self.sample(num_trials)

        engine = self.make_backend(backend)
        has_readout = backend != "counting"
        measurements = self.layered.measurements
        counts: Dict[str, int] = {}
        trial_clbits: List[Optional[Dict[int, int]]] = [None] * len(trial_list)
        final_states: List[Optional[Statevector]] = [None] * len(trial_list)

        def on_finish(payload, trial_indices: Tuple[int, ...]) -> None:
            if not has_readout:
                return
            for index in trial_indices:
                trial = trial_list[index]
                clbits = engine.sample_clbits(payload, measurements, self._rng)
                clbits = apply_readout_flips(clbits, trial.meas_flips)
                trial_clbits[index] = clbits
                bits = "".join(
                    str(clbits.get(c, 0)) for c in range(self.circuit.num_clbits)
                )
                counts[bits] = counts.get(bits, 0) + 1
                if collect_final_states:
                    final_states[index] = payload.copy()
                if on_trial is not None:
                    on_trial(index, bits)

        journal_summary = None
        if journal is not None:
            from .resilience import run_journaled

            outcome, journal_summary = run_journaled(
                self.layered,
                trial_list,
                lambda: self.make_backend(backend),
                on_finish,
                journal,
                workers=workers,
                depth=partition_depth,
                check=check,
                recorder=recorder,
                cache_budget=cache_budget,
                retries=retries,
                task_timeout=task_timeout,
                shared=shared,
                stop=stop,
            )
        elif workers:
            from .parallel import run_parallel

            outcome = run_parallel(
                self.layered,
                trial_list,
                lambda: self.make_backend(backend),
                on_finish,
                workers=workers,
                depth=partition_depth,
                check=check,
                recorder=recorder,
                cache_budget=cache_budget,
                retries=retries,
                task_timeout=task_timeout,
                task_weights=task_weights,
                batch_size=batch_size,
                hybrid=hybrid,
                stop=stop,
            )
        elif mode == "optimized" and hybrid:
            from .hybrid import run_hybrid

            outcome = run_hybrid(
                self.layered,
                trial_list,
                engine,
                on_finish,
                check=check,
                recorder=recorder,
                batch_size=batch_size,
            )
        elif mode == "optimized" and batch_size:
            from .wavefront import run_wavefront

            outcome = run_wavefront(
                self.layered,
                trial_list,
                engine,
                on_finish,
                batch_size=batch_size,
                check=check,
                recorder=recorder,
                cache_budget=cache_budget,
            )
        elif mode == "optimized":
            outcome = run_optimized(
                self.layered,
                trial_list,
                engine,
                on_finish,
                check=check,
                recorder=recorder,
                cache_budget=cache_budget,
                shared=shared,
                stop=stop,
            )
        else:
            outcome = run_baseline(
                self.layered,
                trial_list,
                engine,
                on_finish,
                recorder=recorder,
                stop=stop,
            )

        if recorder:
            from .hostinfo import cpu_count, peak_rss_kb

            rss = peak_rss_kb()
            recorder.instant(
                "run.host",
                cat="run",
                cpu_count=cpu_count(),
                peak_rss_self_kb=rss["self"],
                peak_rss_children_kb=rss["children"],
            )

        metrics = compute_metrics(self.layered, trial_list, outcome)
        return SimulationResult(
            counts=counts,
            metrics=metrics,
            mode=mode,
            backend=backend,
            trial_clbits=trial_clbits if has_readout else None,
            final_states=final_states if collect_final_states else None,
            journal=journal_summary,
            ops_shared=getattr(outcome, "ops_shared", 0),
        )

    def expectation(
        self,
        observable,
        num_trials: int = 1024,
        trials: Optional[Sequence[Trial]] = None,
    ) -> float:
        """Noisy ensemble expectation value of a Pauli observable.

        Runs the optimized schedule; each *distinct* final state is
        evaluated once and weighted by its trial multiplicity, so the
        deduplication that accelerates counting accelerates expectation
        estimation identically.  As ``num_trials`` grows the value
        converges to the exact channel expectation
        (``observable.expectation_density(run_layered_density(...))``),
        which the integration tests verify.
        """
        trial_list = list(trials) if trials is not None else self.sample(num_trials)
        engine = self.make_backend("statevector")
        total = 0.0

        def on_finish(payload, trial_indices: Tuple[int, ...]) -> None:
            nonlocal total
            total += len(trial_indices) * observable.expectation(payload)

        run_optimized(self.layered, trial_list, engine, on_finish)
        return total / len(trial_list)

    def analyze(
        self,
        num_trials: int = 1024,
        trials: Optional[Sequence[Trial]] = None,
        recorder=None,
    ) -> RunMetrics:
        """Compute the paper's metrics without simulating amplitudes.

        Runs the optimized schedule on the counting backend; the baseline
        count comes from the closed form (verified equal to an actual
        baseline run in the test suite).
        """
        trial_list = list(trials) if trials is not None else self.sample(num_trials)
        engine = CountingBackend(self.layered)
        outcome = run_optimized(self.layered, trial_list, engine, recorder=recorder)
        return compute_metrics(self.layered, trial_list, outcome)
