"""Cross-job prefix-state sharing: the paper's redundancy elimination
lifted from *intra*-job to *inter*-job.

A single optimized run already shares prefix states between trials of one
trial set (the trie).  A long-lived service sees many jobs over the same
circuit family — often with literally identical prefixes — and a naive
server recomputes those prefixes once per job.  :class:`SharedPrefixStore`
is a process-wide, thread-safe cache of prefix statevectors keyed by the
*exact computation that produced them*, so any job whose plan is about to
recompute a published prefix can adopt the cached amplitudes instead.

Why sharing is bit-exact
------------------------
Floating-point gate application is deterministic but **boundary
sensitive**: the compiled backend fuses single-qubit runs per
``apply_layers`` segment, so advancing ``0→5`` in one call and ``0→3,
3→5`` in two calls may round differently.  A cached state is therefore
only reusable when the consumer would have issued *the same call
sequence*.  The store's key captures exactly that: the circuit's identity
fingerprint plus the ordered tuple of steps — ``("A", start, end)`` for
each ``apply_layers`` segment and ``("I", layer, qubit, pauli)`` for each
injected error — that produced the state from ``|0...0>``.  Equal keys
mean equal call sequences mean bit-identical amplitudes, so a shared hit
is indistinguishable (``np.array_equal``) from recomputing, and per-job
results stay bit-identical to isolated runs.

Operations accounting stays honest: the executor counts gates it *skips*
via a hit into ``ExecutionOutcome.ops_shared`` (never into
``ops_applied``), preserving the conservation law
``ops_applied + ops_shared == plan.planned_operations(...)``.

Eviction reuses the :class:`~repro.core.cache.CacheBudget` policy from the
memory-budget work: when resident bytes exceed ``budget.max_bytes`` the
least-recently-used entries are **spilled** to CRC-checked files (reloaded
and verified on fetch) or **dropped** outright (future lookups miss and
jobs simply recompute).  Corrupted spill files are discarded, never
served.
"""

from __future__ import annotations

import os
import shutil
import struct
import tempfile
import threading
import zlib
from collections import OrderedDict
from typing import Any, Dict, NamedTuple, Optional, Tuple

import numpy as np

from ..circuits.layers import LayeredCircuit
from .cache import CacheBudget

__all__ = [
    "SharedPrefixStore",
    "SharedStoreStats",
    "circuit_fingerprint",
    "advance_step",
    "inject_step",
]

#: Step descriptors forming the provenance key (see module docstring).
StepKey = Tuple[Any, ...]


def advance_step(start_layer: int, end_layer: int) -> Tuple[str, int, int]:
    """Key fragment for one ``apply_layers(start, end)`` segment."""
    return ("A", int(start_layer), int(end_layer))


def inject_step(event: Any) -> Tuple[str, int, int, str]:
    """Key fragment for one injected error operator."""
    return ("I", int(event.layer), int(event.qubit), str(event.pauli))


def circuit_fingerprint(layered: LayeredCircuit) -> int:
    """CRC32 identity of a layered circuit's full gate structure.

    Two circuits share a fingerprint only if every layer applies the same
    gates (name, parameters, rounded matrix bytes — ``Gate._key``) to the
    same qubits in the same order, and the measurement map matches.  This
    is the "circuit family" identity under which prefix states may be
    shared across jobs.
    """
    digest = zlib.crc32(
        struct.pack("<III", layered.num_qubits, layered.num_layers,
                    layered.num_gates)
    )
    for layer in layered.layers:
        for op in layer:
            digest = zlib.crc32(repr(op.gate._key).encode(), digest)
            digest = zlib.crc32(
                struct.pack(f"<{len(op.qubits)}i", *op.qubits), digest
            )
        digest = zlib.crc32(b"|", digest)
    for measurement in layered.measurements:
        digest = zlib.crc32(
            struct.pack("<ii", measurement.qubit, measurement.clbit), digest
        )
    return digest & 0xFFFFFFFF


class SharedStoreStats(NamedTuple):
    """Consistent counter snapshot of a :class:`SharedPrefixStore`."""

    entries: int
    resident_entries: int
    resident_bytes: int
    hits: int
    misses: int
    publishes: int
    spills: int
    spill_loads: int
    drops: int
    ops_saved: int

    def as_dict(self) -> Dict[str, int]:
        return dict(self._asdict())


class _Entry:
    """One cached prefix state: resident bytes or a spill-file stub."""

    __slots__ = ("data", "path", "checksum", "nbytes", "layer")

    def __init__(self, data: bytes, layer: int) -> None:
        self.data: Optional[bytes] = data
        self.path: Optional[str] = None
        self.checksum = zlib.crc32(data) & 0xFFFFFFFF
        self.nbytes = len(data)
        self.layer = layer

    @property
    def resident(self) -> bool:
        return self.data is not None


class SharedPrefixStore:
    """Thread-safe cross-job cache of provenance-keyed prefix states.

    Parameters
    ----------
    budget:
        Optional :class:`~repro.core.cache.CacheBudget` bounding the
        resident bytes.  ``mode="spill"`` moves LRU-cold entries to
        CRC-checked files under ``spill_dir`` (a private temp directory
        when unset); ``mode="drop"`` discards them.  Without a budget the
        store grows unboundedly — only appropriate for tests.

    The store never hands out its own buffers: :meth:`publish` copies the
    amplitudes in, :meth:`fetch` copies them out, so concurrent jobs can
    never scribble on each other's states.
    """

    def __init__(self, budget: Optional[CacheBudget] = None) -> None:
        self.budget = budget
        self._lock = threading.Lock()
        #: LRU order: oldest first; keyed by (fingerprint, steps).
        self._entries: "OrderedDict[Tuple[int, StepKey], _Entry]" = (
            OrderedDict()
        )
        self._resident_bytes = 0
        self._spill_dir: Optional[str] = budget.spill_dir if budget else None
        self._spill_created = False
        self._spill_serial = 0
        self._hits = 0
        self._misses = 0
        self._publishes = 0
        self._spills = 0
        self._spill_loads = 0
        self._drops = 0
        self._ops_saved = 0

    # -- publication / lookup ------------------------------------------------

    def publish(
        self, fingerprint: int, steps: StepKey, vector: Any, layer: int
    ) -> bool:
        """Copy a prefix state into the store under its provenance key.

        Returns ``False`` (and refreshes the entry's LRU position) when the
        key is already present — concurrent identical jobs publish the
        same bytes, there is nothing to add.  Publication may trigger
        budget eviction of *other* entries; the newly published entry is
        resident on return.
        """
        key = (int(fingerprint), tuple(steps))
        data = np.ascontiguousarray(
            np.asarray(vector, dtype=np.complex128)
        ).tobytes()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return False
            entry = _Entry(data, layer)
            self._entries[key] = entry
            self._resident_bytes += entry.nbytes
            self._publishes += 1
            self._enforce_budget_locked(keep=key)
            return True

    def fetch(self, fingerprint: int, steps: StepKey) -> Optional[np.ndarray]:
        """Return a private copy of the state for ``steps``, or ``None``.

        Spilled entries are reloaded and CRC-verified; a spill file that
        is missing or fails its checksum is discarded (the caller just
        recomputes) rather than trusted.
        """
        key = (int(fingerprint), tuple(steps))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            if entry.resident:
                self._entries.move_to_end(key)
                self._hits += 1
                assert entry.data is not None
                return np.frombuffer(entry.data, dtype=np.complex128).copy()
            # Spilled: reload outside nothing — file I/O under the lock is
            # acceptable here (spill files are small relative to compute),
            # and it keeps eviction/fetch races impossible.
            path = entry.path
            try:
                assert path is not None
                data = np.fromfile(path, dtype=np.complex128)
            except (OSError, AssertionError):
                data = None
            if (
                data is None
                or data.nbytes != entry.nbytes
                or (zlib.crc32(data.tobytes()) & 0xFFFFFFFF) != entry.checksum
            ):
                # Never serve bytes that fail verification.
                self._discard_locked(key, entry)
                self._misses += 1
                return None
            entry.data = data.tobytes()
            entry.path = None
            self._resident_bytes += entry.nbytes
            self._spill_loads += 1
            self._entries.move_to_end(key)
            self._hits += 1
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self._enforce_budget_locked(keep=key)
            return data.copy()

    def note_saved(self, ops: int) -> None:
        """Record operations a consumer skipped thanks to a hit."""
        with self._lock:
            self._ops_saved += int(ops)

    # -- eviction -----------------------------------------------------------

    def _spill_path_locked(self, layer: int) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-shared-")
            self._spill_created = True
        elif not os.path.isdir(self._spill_dir):
            os.makedirs(self._spill_dir, exist_ok=True)
        self._spill_serial += 1
        return os.path.join(
            self._spill_dir, f"shared-{self._spill_serial:06d}-l{layer}.c128"
        )

    def _discard_locked(
        self, key: Tuple[int, StepKey], entry: _Entry
    ) -> None:
        if entry.resident:
            self._resident_bytes -= entry.nbytes
        elif entry.path is not None:
            try:
                os.unlink(entry.path)
            except OSError:
                pass
        self._entries.pop(key, None)

    def _enforce_budget_locked(self, keep: Tuple[int, StepKey]) -> None:
        budget = self.budget
        if budget is None:
            return
        while self._resident_bytes > budget.max_bytes:
            victim_key = None
            for candidate, entry in self._entries.items():
                if candidate != keep and entry.resident:
                    victim_key = candidate
                    break
            if victim_key is None:
                break  # only the protected entry remains resident
            entry = self._entries[victim_key]
            if budget.mode == "spill":
                path = self._spill_path_locked(entry.layer)
                assert entry.data is not None
                with open(path, "wb") as handle:
                    handle.write(entry.data)
                entry.path = path
                entry.data = None
                self._resident_bytes -= entry.nbytes
                self._spills += 1
            elif budget.mode == "drop":
                self._discard_locked(victim_key, entry)
                self._drops += 1
            else:
                raise ValueError(
                    f"unknown shared-store eviction mode {budget.mode!r} "
                    "(expected 'spill' or 'drop')"
                )

    # -- introspection / lifecycle -------------------------------------------

    def stats(self) -> SharedStoreStats:
        with self._lock:
            resident = sum(
                1 for entry in self._entries.values() if entry.resident
            )
            return SharedStoreStats(
                entries=len(self._entries),
                resident_entries=resident,
                resident_bytes=self._resident_bytes,
                hits=self._hits,
                misses=self._misses,
                publishes=self._publishes,
                spills=self._spills,
                spill_loads=self._spill_loads,
                drops=self._drops,
                ops_saved=self._ops_saved,
            )

    def clear(self) -> None:
        """Drop every entry and remove spill files."""
        with self._lock:
            for key in list(self._entries):
                self._discard_locked(key, self._entries[key])
            self._resident_bytes = 0

    def close(self) -> None:
        """Release everything, including a temp spill dir we created."""
        self.clear()
        with self._lock:
            if self._spill_created and self._spill_dir is not None:
                shutil.rmtree(self._spill_dir, ignore_errors=True)
                self._spill_created = False

    def __enter__(self) -> "SharedPrefixStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"SharedPrefixStore(entries={stats.entries}, "
            f"resident_bytes={stats.resident_bytes}, hits={stats.hits}, "
            f"ops_saved={stats.ops_saved})"
        )
