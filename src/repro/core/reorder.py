"""Trial reordering — the paper's Algorithm 1.

Two equivalent implementations are provided:

* :func:`reorder_trials_recursive` — the literal Algorithm 1: order the
  trial set by the location of the *n*-th injected error, split it into
  groups that share that error, and recurse into each group on error
  ``n + 1`` until groups are singletons (or fully identical).
* :func:`reorder_trials` — the observation that Algorithm 1 *is* a
  lexicographic sort: a trial's identity for reordering is its sorted
  ``(layer, qubit, operator)`` event sequence, and recursive
  group-by-first-key / order-by-next-key is exactly how lexicographic order
  is defined.  A single ``sorted()`` call with the event-sequence key
  produces the identical order in ``O(T log T)`` comparisons.

The equivalence is property-tested (``tests/core/test_reorder.py``) and
benchmarked as an ablation.  Trials with *fewer* errors order before their
extensions (the empty sequence is the lexicographic minimum), so the
error-free trial always comes first — matching the paper's Fig. 2 narrative
where execution starts by computing the shared error-free prefix.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .events import Trial

__all__ = [
    "reorder_trials",
    "reorder_trials_recursive",
    "longest_common_prefix",
    "adjacent_prefix_lengths",
]


def reorder_trials(trials: Sequence[Trial]) -> List[Trial]:
    """Order ``trials`` to maximize overlap between consecutive trials.

    Lexicographic sort on the event sequence; duplicates stay adjacent,
    which is what lets the executor deduplicate them entirely.  The sort is
    stable, so equal trials keep their sampling order (only relevant for
    their classical measurement flips, which do not affect cost).
    """
    return sorted(trials, key=lambda trial: trial.sort_key())


def _nth_error_key(trial: Trial, n: int) -> Tuple:
    """Sort key for the n-th error: 'no n-th error' orders first."""
    if len(trial.events) > n:
        event = trial.events[n]
        return (1, event.layer, event.qubit, event.pauli)
    return (0,)


def reorder_trials_recursive(trials: Sequence[Trial], n: int = 0) -> List[Trial]:
    """Literal Algorithm 1 from the paper.

    ``n`` is the error index currently being ordered on (0-based; the paper
    writes it 1-based).  Each level sorts the group by the location of the
    n-th injected error, splits into subgroups sharing that error, and
    recurses with ``n + 1``.
    """
    if len(trials) <= 1:
        return list(trials)
    # Step 4: order the trials based on the location of the n-th error.
    ordered = sorted(trials, key=lambda trial: _nth_error_key(trial, n))
    # Step 5: divide into groups sharing the n-th error.
    result: List[Trial] = []
    group: List[Trial] = []
    group_key = None
    for trial in ordered:
        key = _nth_error_key(trial, n)
        if group and key != group_key:
            result.extend(_recurse_group(group, group_key, n))
            group = []
        group.append(trial)
        group_key = key
    result.extend(_recurse_group(group, group_key, n))
    return result


def _recurse_group(group: List[Trial], key: Tuple, n: int) -> List[Trial]:
    if key == (0,):
        # Every trial in this group has exactly the path's n errors; they are
        # identical in events and need no further ordering.
        return group
    return reorder_trials_recursive(group, n + 1)


def longest_common_prefix(a: Trial, b: Trial) -> int:
    """Number of leading error events shared by two trials."""
    shared = 0
    for event_a, event_b in zip(a.events, b.events):
        if event_a != event_b:
            break
        shared += 1
    return shared


def adjacent_prefix_lengths(trials: Sequence[Trial]) -> List[int]:
    """Shared-prefix length between each consecutive pair of ``trials``.

    The optimizer's benefit grows with these values; the ablation benchmarks
    compare their sum before and after reordering.
    """
    return [
        longest_common_prefix(trials[i], trials[i + 1])
        for i in range(len(trials) - 1)
    ]
