"""Intermediate-state cache with drop-on-last-use accounting.

The paper's memory metric is the number of **Maintained State Vectors
(MSVs)**: how many intermediate statevectors exist simultaneously during the
optimized simulation.  :class:`StateCache` owns every state the executor
creates — the single *working* state plus the stack of stored prefix
snapshots — releases each snapshot the moment its last consumer has used it,
and records the peak.

Two peaks are tracked:

* ``peak_msv`` — peak count of all live statevectors, working state
  included.  This is the number we report for Figs. 6 and 8.
* ``peak_stored`` — peak count of stored snapshots only (excludes the
  working state), i.e. the memory *overhead* relative to the baseline,
  which always keeps exactly one working state.

Memory-budgeted degradation
---------------------------
With a :class:`CacheBudget` attached, the executor keeps the *resident*
(in-RAM) footprint under ``max_bytes`` by degrading the coldest stored
snapshot whenever a store pushes the cache over budget: either **spilling**
its amplitudes to disk (reloaded, checksum-verified, on restore) or
**dropping** it outright and recomputing it from its recorded event
provenance when restored.  Degradation trades operations (or disk I/O) for
memory and never changes results.

The *nominal* peaks above are deliberately untouched by degradation: they
mirror the plan's demand, so lint's static peak-MSV bound stays an exact
cross-check.  The actually-resident peaks are reported separately
(``peak_resident_msv`` / ``peak_resident_stored``).

The cache's snapshot stack is restored newest-first (the plan's slots
follow the trie DFS), so the *coldest* snapshot — the one restored last —
is always the lowest-numbered resident slot.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, NamedTuple, Optional, Tuple

import numpy as np

__all__ = [
    "StateCache",
    "CacheStats",
    "CacheBudget",
    "SpilledSnapshot",
    "DroppedSnapshot",
    "payload_checksum",
    "CorruptionError",
]


class CorruptionError(RuntimeError):
    """A checksum over statevector bytes (shared memory, journal record,
    spilled snapshot) did not verify — the data must not be trusted."""


def payload_checksum(array: Any) -> int:
    """CRC32 over the raw bytes of an amplitude array.

    The integrity primitive for every statevector that leaves RAM custody:
    shared-memory entry states and finish payloads (:mod:`.parallel`),
    journal records (:mod:`.resilience`) and spilled snapshots all carry
    this checksum and are verified on the way back in.
    """
    return zlib.crc32(np.asarray(array).tobytes()) & 0xFFFFFFFF


class CacheBudget(NamedTuple):
    """Byte budget for resident (working + stored) statevectors.

    ``mode`` selects what happens to the coldest snapshot when the budget
    is exceeded: ``"spill"`` writes its amplitudes to ``spill_dir`` (a
    temporary directory when ``None``) and reloads them on restore;
    ``"drop"`` frees it and recomputes it from its event provenance on
    restore.  The working state is never degraded, so the effective floor
    is one statevector.
    """

    max_bytes: int
    mode: str = "spill"
    spill_dir: Optional[str] = None


class SpilledSnapshot(NamedTuple):
    """Slot stub: the snapshot's amplitudes live on disk, checksummed."""

    path: str
    checksum: int


class DroppedSnapshot(NamedTuple):
    """Slot stub: the snapshot was freed; ``provenance`` (the error events
    injected on its path, in order) is enough to recompute it exactly."""

    provenance: Tuple[Any, ...]


class CacheStats:
    """Peak / cumulative counters of a finished run."""

    def __init__(
        self,
        peak_msv: int,
        peak_stored: int,
        snapshots_taken: int,
        snapshots_released: int,
        spills: int = 0,
        spill_loads: int = 0,
        drops: int = 0,
        recomputes: int = 0,
        peak_resident_msv: Optional[int] = None,
        peak_resident_stored: Optional[int] = None,
    ) -> None:
        self.peak_msv = peak_msv
        self.peak_stored = peak_stored
        self.snapshots_taken = snapshots_taken
        self.snapshots_released = snapshots_released
        #: Degradation counters (all zero without a :class:`CacheBudget`).
        self.spills = spills
        self.spill_loads = spill_loads
        self.drops = drops
        self.recomputes = recomputes
        #: Actually-resident peaks; equal the nominal peaks when nothing
        #: was degraded.
        self.peak_resident_msv = (
            peak_msv if peak_resident_msv is None else peak_resident_msv
        )
        self.peak_resident_stored = (
            peak_stored if peak_resident_stored is None else peak_resident_stored
        )

    @property
    def degraded(self) -> bool:
        """Whether any snapshot was spilled or dropped during the run."""
        return bool(self.spills or self.drops)

    def __repr__(self) -> str:
        extra = ""
        if self.degraded:
            extra = (
                f", resident={self.peak_resident_msv}, "
                f"spills={self.spills}, drops={self.drops}"
            )
        return (
            f"CacheStats(peak_msv={self.peak_msv}, "
            f"peak_stored={self.peak_stored}, "
            f"snapshots={self.snapshots_taken}{extra})"
        )


class StateCache:
    """Slot store for prefix snapshots, with live-state peak tracking.

    When a :class:`~repro.obs.recorder.TraceRecorder` is attached, the
    live-MSV level (and the stored-snapshot level) is sampled as a gauge
    at **every** cache event — creation/destruction of the working state,
    snapshot store, snapshot take — so the recorded ``msv.live`` timeline
    peaks at exactly ``CacheStats.peak_msv``.  With a budget attached the
    resident level is additionally sampled as ``msv.resident``.

    The cache itself never does I/O or recomputation; it tracks which
    slots are resident vs. degraded (stub entries) and accounts both
    views.  The executor performs the actual spill/load/recompute.
    """

    def __init__(
        self,
        recorder: Optional[Any] = None,
        budget: Optional[CacheBudget] = None,
        state_bytes: int = 0,
    ) -> None:
        self._slots: Dict[int, Tuple[Any, int]] = {}
        self._provenance: Dict[int, Tuple[Any, ...]] = {}
        self._next_slot = 0
        self._working_live = 0
        self._resident_stored = 0
        self._peak_msv = 0
        self._peak_stored = 0
        self._peak_resident_msv = 0
        self._peak_resident_stored = 0
        self._snapshots_taken = 0
        self._snapshots_released = 0
        self._spills = 0
        self._spill_loads = 0
        self._drops = 0
        self._recomputes = 0
        self._recorder = recorder
        self.budget = budget
        #: Bytes per resident state (0 for stateless backends, which makes
        #: any budget a no-op: there is nothing to evict).
        self.state_bytes = state_bytes

    def _sample(self) -> None:
        """Emit the live/stored levels to the attached recorder, if any."""
        recorder = self._recorder
        if recorder:
            recorder.gauge("msv.live", self.num_live)
            recorder.gauge("msv.stored", len(self._slots))
            if self.budget is not None:
                recorder.gauge("msv.resident", self.num_resident)

    # -- working-state lifecycle (called by the executor) ----------------------

    def working_created(self) -> None:
        """A working state came alive (initial state or restored snapshot)."""
        self._working_live += 1
        self._update_peaks()
        self._sample()

    def working_destroyed(self) -> None:
        """The current working state was discarded or consumed."""
        if self._working_live <= 0:
            raise RuntimeError("working_destroyed without a live working state")
        self._working_live -= 1
        self._sample()

    # -- snapshot slots -----------------------------------------------------------

    def store(
        self,
        state: Any,
        layer: int,
        slot: Optional[int] = None,
        provenance: Optional[Tuple[Any, ...]] = None,
    ) -> int:
        """Store a snapshot (a state advanced to ``layer``); returns its slot.

        With ``slot`` given, the snapshot is stored under exactly that id —
        the executor passes the plan's ``Snapshot.slot`` so cache ids and
        plan ids can never drift apart.  Storing into an occupied slot
        raises; auto-assignment (``slot=None``) keeps handing out fresh ids.
        ``provenance`` (the snapshot's injected-event history) is retained
        for drop-mode degradation and returned by :meth:`take_full`.
        """
        if slot is None:
            slot = self._next_slot
            self._next_slot += 1
        else:
            slot = int(slot)
            if slot in self._slots:
                raise RuntimeError(f"cache slot {slot} is already occupied")
            self._next_slot = max(self._next_slot, slot + 1)
        self._slots[slot] = (state, layer)
        if provenance is not None:
            self._provenance[slot] = provenance
        self._resident_stored += 1
        self._snapshots_taken += 1
        self._update_peaks()
        self._sample()
        return slot

    def take(self, slot: int) -> Tuple[Any, int]:
        """Remove and return ``(state, layer)`` — the slot's last use."""
        state, layer, _ = self.take_full(slot)
        return state, layer

    def take_full(self, slot: int) -> Tuple[Any, int, Optional[Tuple[Any, ...]]]:
        """Like :meth:`take` but also yields the snapshot's provenance.

        The returned first element is the resident state, or a
        :class:`SpilledSnapshot` / :class:`DroppedSnapshot` stub when the
        slot was degraded — the executor rehydrates stubs.
        """
        try:
            entry, layer = self._slots.pop(slot)
        except KeyError:
            raise KeyError(f"cache slot {slot} is empty or already taken") from None
        if not isinstance(entry, (SpilledSnapshot, DroppedSnapshot)):
            self._resident_stored -= 1
        provenance = self._provenance.pop(slot, None)
        self._snapshots_released += 1
        self._sample()
        return entry, layer, provenance

    def peek(self, slot: int) -> Tuple[Any, int]:
        """Return ``(state, layer)`` without releasing the slot."""
        try:
            return self._slots[slot]
        except KeyError:
            raise KeyError(f"cache slot {slot} is empty") from None

    # -- budgeted degradation -----------------------------------------------------

    @property
    def over_budget(self) -> bool:
        """Whether a resident snapshot must be degraded to meet the budget."""
        return (
            self.budget is not None
            and self.state_bytes > 0
            and self._resident_stored > 0
            and self.num_resident * self.state_bytes > self.budget.max_bytes
        )

    def coldest_resident_slot(self) -> Optional[int]:
        """The resident snapshot restored furthest in the future.

        Slots are restored newest-first (stack discipline of the trie
        DFS), so the coldest resident snapshot is the lowest slot id.
        """
        resident = [
            slot
            for slot, (entry, _) in self._slots.items()
            if not isinstance(entry, (SpilledSnapshot, DroppedSnapshot))
        ]
        return min(resident) if resident else None

    def mark_spilled(self, slot: int, path: str, checksum: int) -> Tuple[Any, int]:
        """Replace a resident slot with a :class:`SpilledSnapshot` stub.

        Returns the evicted ``(state, layer)`` so the executor can release
        it (the amplitudes must already be safely on disk).
        """
        state, layer = self.peek(slot)
        self._slots[slot] = (SpilledSnapshot(path, checksum), layer)
        self._resident_stored -= 1
        self._spills += 1
        self._sample()
        return state, layer

    def mark_dropped(self, slot: int) -> Tuple[Any, int]:
        """Replace a resident slot with a :class:`DroppedSnapshot` stub."""
        state, layer = self.peek(slot)
        provenance = self._provenance.get(slot)
        if provenance is None:
            raise RuntimeError(
                f"cannot drop slot {slot}: no provenance was recorded"
            )
        self._slots[slot] = (DroppedSnapshot(provenance), layer)
        self._resident_stored -= 1
        self._drops += 1
        self._sample()
        return state, layer

    def note_spill_load(self) -> None:
        self._spill_loads += 1

    def note_recompute(self) -> None:
        self._recomputes += 1

    # -- accounting ---------------------------------------------------------------

    @property
    def num_stored(self) -> int:
        return len(self._slots)

    @property
    def num_live(self) -> int:
        return len(self._slots) + self._working_live

    @property
    def num_resident(self) -> int:
        """In-RAM states only: working states plus non-degraded snapshots."""
        return self._resident_stored + self._working_live

    def _update_peaks(self) -> None:
        self._peak_msv = max(self._peak_msv, self.num_live)
        self._peak_stored = max(self._peak_stored, len(self._slots))
        self._peak_resident_msv = max(self._peak_resident_msv, self.num_resident)
        self._peak_resident_stored = max(
            self._peak_resident_stored, self._resident_stored
        )

    def stats(self) -> CacheStats:
        return CacheStats(
            peak_msv=self._peak_msv,
            peak_stored=self._peak_stored,
            snapshots_taken=self._snapshots_taken,
            snapshots_released=self._snapshots_released,
            spills=self._spills,
            spill_loads=self._spill_loads,
            drops=self._drops,
            recomputes=self._recomputes,
            peak_resident_msv=self._peak_resident_msv,
            peak_resident_stored=self._peak_resident_stored,
        )

    def assert_drained(self) -> None:
        """Raise unless every snapshot was consumed (no leaked states)."""
        if self._slots:
            raise RuntimeError(
                f"{len(self._slots)} cached state(s) were never consumed: "
                f"slots {sorted(self._slots)}"
            )
        if self._working_live:
            raise RuntimeError(
                f"{self._working_live} working state(s) still live at drain"
            )
