"""Intermediate-state cache with drop-on-last-use accounting.

The paper's memory metric is the number of **Maintained State Vectors
(MSVs)**: how many intermediate statevectors exist simultaneously during the
optimized simulation.  :class:`StateCache` owns every state the executor
creates — the single *working* state plus the stack of stored prefix
snapshots — releases each snapshot the moment its last consumer has used it,
and records the peak.

Two peaks are tracked:

* ``peak_msv`` — peak count of all live statevectors, working state
  included.  This is the number we report for Figs. 6 and 8.
* ``peak_stored`` — peak count of stored snapshots only (excludes the
  working state), i.e. the memory *overhead* relative to the baseline,
  which always keeps exactly one working state.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

__all__ = ["StateCache", "CacheStats"]


class CacheStats:
    """Peak / cumulative counters of a finished run."""

    def __init__(
        self,
        peak_msv: int,
        peak_stored: int,
        snapshots_taken: int,
        snapshots_released: int,
    ) -> None:
        self.peak_msv = peak_msv
        self.peak_stored = peak_stored
        self.snapshots_taken = snapshots_taken
        self.snapshots_released = snapshots_released

    def __repr__(self) -> str:
        return (
            f"CacheStats(peak_msv={self.peak_msv}, "
            f"peak_stored={self.peak_stored}, "
            f"snapshots={self.snapshots_taken})"
        )


class StateCache:
    """Slot store for prefix snapshots, with live-state peak tracking.

    When a :class:`~repro.obs.recorder.TraceRecorder` is attached, the
    live-MSV level (and the stored-snapshot level) is sampled as a gauge
    at **every** cache event — creation/destruction of the working state,
    snapshot store, snapshot take — so the recorded ``msv.live`` timeline
    peaks at exactly ``CacheStats.peak_msv``.
    """

    def __init__(self, recorder: Optional[Any] = None) -> None:
        self._slots: Dict[int, Tuple[Any, int]] = {}
        self._next_slot = 0
        self._working_live = 0
        self._peak_msv = 0
        self._peak_stored = 0
        self._snapshots_taken = 0
        self._snapshots_released = 0
        self._recorder = recorder

    def _sample(self) -> None:
        """Emit the live/stored levels to the attached recorder, if any."""
        recorder = self._recorder
        if recorder:
            recorder.gauge("msv.live", self.num_live)
            recorder.gauge("msv.stored", len(self._slots))

    # -- working-state lifecycle (called by the executor) ----------------------

    def working_created(self) -> None:
        """A working state came alive (initial state or restored snapshot)."""
        self._working_live += 1
        self._update_peaks()
        self._sample()

    def working_destroyed(self) -> None:
        """The current working state was discarded or consumed."""
        if self._working_live <= 0:
            raise RuntimeError("working_destroyed without a live working state")
        self._working_live -= 1
        self._sample()

    # -- snapshot slots -----------------------------------------------------------

    def store(self, state: Any, layer: int, slot: Optional[int] = None) -> int:
        """Store a snapshot (a state advanced to ``layer``); returns its slot.

        With ``slot`` given, the snapshot is stored under exactly that id —
        the executor passes the plan's ``Snapshot.slot`` so cache ids and
        plan ids can never drift apart.  Storing into an occupied slot
        raises; auto-assignment (``slot=None``) keeps handing out fresh ids.
        """
        if slot is None:
            slot = self._next_slot
            self._next_slot += 1
        else:
            slot = int(slot)
            if slot in self._slots:
                raise RuntimeError(f"cache slot {slot} is already occupied")
            self._next_slot = max(self._next_slot, slot + 1)
        self._slots[slot] = (state, layer)
        self._snapshots_taken += 1
        self._update_peaks()
        self._sample()
        return slot

    def take(self, slot: int) -> Tuple[Any, int]:
        """Remove and return ``(state, layer)`` — the slot's last use."""
        try:
            entry = self._slots.pop(slot)
        except KeyError:
            raise KeyError(f"cache slot {slot} is empty or already taken") from None
        self._snapshots_released += 1
        self._sample()
        return entry

    def peek(self, slot: int) -> Tuple[Any, int]:
        """Return ``(state, layer)`` without releasing the slot."""
        try:
            return self._slots[slot]
        except KeyError:
            raise KeyError(f"cache slot {slot} is empty") from None

    # -- accounting ---------------------------------------------------------------

    @property
    def num_stored(self) -> int:
        return len(self._slots)

    @property
    def num_live(self) -> int:
        return len(self._slots) + self._working_live

    def _update_peaks(self) -> None:
        self._peak_msv = max(self._peak_msv, self.num_live)
        self._peak_stored = max(self._peak_stored, len(self._slots))

    def stats(self) -> CacheStats:
        return CacheStats(
            peak_msv=self._peak_msv,
            peak_stored=self._peak_stored,
            snapshots_taken=self._snapshots_taken,
            snapshots_released=self._snapshots_released,
        )

    def assert_drained(self) -> None:
        """Raise unless every snapshot was consumed (no leaked states)."""
        if self._slots:
            raise RuntimeError(
                f"{len(self._slots)} cached state(s) were never consumed: "
                f"slots {sorted(self._slots)}"
            )
        if self._working_live:
            raise RuntimeError(
                f"{self._working_live} working state(s) still live at drain"
            )
