"""Fault tolerance: checksums, crash-safe run journal, checkpoint/resume.

The optimized schedule's value proposition is *exactness* — thousands of
reordered Monte-Carlo trials still produce bit-identical results.  This
module keeps that guarantee intact when things fail:

* :func:`payload_checksum` — CRC32 over the raw complex128 bytes of a
  statevector.  Every entry state and finish payload that crosses a
  ``multiprocessing.shared_memory`` boundary is checksummed by the writer
  and re-verified by the reader, so silent corruption is detected (and the
  affected task retried) instead of folded into the counts.
* :class:`RunJournal` — an append-only, fsync-on-commit journal of finish
  payloads at trial granularity.  Like the ``.npz`` trial archives
  (:mod:`repro.core.persistence`) the format is flat binary — never
  pickled — so a journal written by a crashed run is safe to load.  A
  record only counts once its commit marker is durable; a truncated tail
  (the crash frontier) is detected and discarded, never misparsed.
* :func:`run_journaled` — execute (or *resume*) a trial set against a
  journal: finishes already committed are replayed from disk in their
  original order, and only the remaining trials are executed — zero
  completed trials are recomputed.

Why resume is exact
-------------------
The journal records finishes in the plan's finish order, so the committed
records form an exact *prefix* of the serial finish stream.  The plan
builder orders trie children by event value — independent of trial
insertion order — so a fresh plan over the *remaining* trials finishes
them in the same relative order, with the same deduplication grouping, as
the original plan did.  Replayed prefix + recomputed suffix is therefore
byte-identical to the uninterrupted ``on_finish`` stream, and a seeded
measurement RNG downstream produces the same counts.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, Callable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..circuits.layers import LayeredCircuit
from ..sim.statevector import Statevector
from .cache import CacheStats, CorruptionError, payload_checksum
from .events import Trial
from .executor import ExecutionOutcome, FinishCallback, run_optimized
from .packed import pack_trial

__all__ = [
    "payload_checksum",
    "CorruptionError",
    "WorkerCrash",
    "JournalError",
    "journal_fingerprint",
    "RunJournal",
    "JournalReplay",
    "load_journal",
    "JournalSummary",
    "run_journaled",
]


class WorkerCrash(RuntimeError):
    """Raised by fault injectors to simulate a worker dying mid-task."""


class JournalError(ValueError):
    """A run journal is unreadable, inconsistent, or does not match its run."""


def journal_fingerprint(layered: LayeredCircuit, trials: Sequence[Trial]) -> int:
    """A CRC32 identity of (circuit shape, full trial set).

    A journal may only be resumed against the exact run that produced it:
    same circuit dimensions and the same trials in the same sampling order
    (global trial indices must mean the same thing).  The packed 5-byte
    event encoding plus the measurement-flip lists capture exactly that.
    """
    digest = zlib.crc32(
        struct.pack(
            "<IIIQ",
            layered.num_qubits,
            layered.num_layers,
            layered.num_gates,
            len(trials),
        )
    )
    for trial in trials:
        digest = zlib.crc32(pack_trial(trial), digest)
        flips = tuple(trial.meas_flips)
        digest = zlib.crc32(struct.pack(f"<I{len(flips)}q", len(flips), *flips), digest)
    return digest & 0xFFFFFFFF


# -- journal binary format ------------------------------------------------------
#
# header : magic "RPJL" | version u32 | num_qubits u32 | num_trials u64
#          | fingerprint u32 | header_crc u32
# record : seq u32 | num_indices u32 | payload_len u64 | indices_crc u32
#          | payload_crc u32 | indices (num_indices * u64) | payload bytes
#          | commit marker "RCMT"
#
# A record is committed iff its commit marker is present and both CRCs
# verify; everything after the first non-verifying byte is the crash
# frontier and is discarded on load (``truncated=True``).

_MAGIC = b"RPJL"
_COMMIT = b"RCMT"
_VERSION = 1
_HEADER = struct.Struct("<4sIIQII")
_RECORD = struct.Struct("<IIQII")


class RunJournal:
    """Append-only journal writer with fsync-on-commit durability.

    Each :meth:`record` call appends one finish record and (by default)
    ``fsync``-s the file, so a record the writer returned from is durable:
    a crash at any instant leaves either a committed record or a
    detectably truncated tail, never a silently wrong one.  ``fsync=False``
    trades that durability for speed (tests, throwaway runs).
    """

    def __init__(
        self,
        path: str,
        num_qubits: int,
        num_trials: int,
        fingerprint: int,
        fsync: bool = True,
        _resume_seq: Optional[int] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.num_qubits = num_qubits
        self.num_trials = num_trials
        self.fingerprint = fingerprint
        self.fsync = fsync
        self.next_seq = 0
        if _resume_seq is None:
            self._file = open(self.path, "wb")
            header = _HEADER.pack(
                _MAGIC, _VERSION, num_qubits, num_trials, fingerprint, 0
            )
            crc = zlib.crc32(header[:-4]) & 0xFFFFFFFF
            self._file.write(header[:-4] + struct.pack("<I", crc))
            self._commit()
        else:
            # Resuming: truncate the crash frontier (any partial tail
            # record), then append after the last committed record.
            self._file = open(self.path, "r+b")
            self._file.seek(0, os.SEEK_END)
            self.next_seq = _resume_seq

    @classmethod
    def create(
        cls,
        path: str,
        layered: LayeredCircuit,
        trials: Sequence[Trial],
        fsync: bool = True,
    ) -> "RunJournal":
        return cls(
            path,
            layered.num_qubits,
            len(trials),
            journal_fingerprint(layered, trials),
            fsync=fsync,
        )

    @classmethod
    def resume(
        cls, path: str, replay: "JournalReplay", fsync: bool = True
    ) -> "RunJournal":
        """Reopen an existing journal for appending after ``replay``.

        The file is truncated to the end of the last committed record
        (dropping a crash-truncated tail) so new records append cleanly.
        """
        journal = cls(
            path,
            replay.num_qubits,
            replay.num_trials,
            replay.fingerprint,
            fsync=fsync,
            _resume_seq=len(replay.finishes),
        )
        journal._file.seek(replay.committed_bytes)
        journal._file.truncate()
        return journal

    def _commit(self) -> None:
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    def record(self, payload: Any, trial_indices: Sequence[int]) -> None:
        """Append one finish (payload amplitudes + its global trial indices)."""
        vector = getattr(payload, "vector", payload)
        if vector is None:
            raise JournalError(
                "journaling requires statevector payloads "
                "(the counting backend has none)"
            )
        data = np.asarray(vector).tobytes()
        indices = np.asarray(tuple(trial_indices), dtype=np.uint64).tobytes()
        header = _RECORD.pack(
            self.next_seq,
            len(tuple(trial_indices)),
            len(data),
            zlib.crc32(indices) & 0xFFFFFFFF,
            zlib.crc32(data) & 0xFFFFFFFF,
        )
        self._file.write(header)
        self._file.write(indices)
        self._file.write(data)
        self._file.write(_COMMIT)
        self._commit()
        self.next_seq += 1

    def close(self) -> None:
        if not self._file.closed:
            self._commit()
            self._file.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class JournalReplay:
    """A loaded journal: header identity plus every committed finish."""

    def __init__(
        self,
        path: str,
        num_qubits: int,
        num_trials: int,
        fingerprint: int,
        finishes: List[Tuple[np.ndarray, Tuple[int, ...]]],
        truncated: bool,
        committed_bytes: int,
    ) -> None:
        self.path = path
        self.num_qubits = num_qubits
        self.num_trials = num_trials
        self.fingerprint = fingerprint
        #: Committed finishes in journal (== plan finish) order.
        self.finishes = finishes
        #: True when a partial tail record (the crash frontier) was dropped.
        self.truncated = truncated
        #: File offset just past the last committed record.
        self.committed_bytes = committed_bytes

    @property
    def completed_trials(self) -> frozenset:
        return frozenset(
            index for _, indices in self.finishes for index in indices
        )

    def __repr__(self) -> str:
        return (
            f"JournalReplay(finishes={len(self.finishes)}, "
            f"trials={len(self.completed_trials)}/{self.num_trials}, "
            f"truncated={self.truncated})"
        )


def load_journal(path: str) -> JournalReplay:
    """Read every committed record of a journal, tolerating a torn tail.

    Raises :class:`JournalError` if the file is not a journal (bad magic,
    unsupported version, corrupt header).  A record that fails to parse or
    verify marks the crash frontier: it and everything after it are
    discarded and ``truncated`` is set — committed records are never lost.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < _HEADER.size:
        raise JournalError(f"{path!r} is too short to be a run journal")
    magic, version, num_qubits, num_trials, fingerprint, header_crc = (
        _HEADER.unpack_from(blob, 0)
    )
    if magic != _MAGIC:
        raise JournalError(f"{path!r} is not a run journal (bad magic)")
    if zlib.crc32(blob[: _HEADER.size - 4]) & 0xFFFFFFFF != header_crc:
        raise JournalError(f"{path!r} has a corrupt journal header")
    if version != _VERSION:
        raise JournalError(
            f"journal version {version} unsupported (expected {_VERSION})"
        )

    state_bytes = 16 * (1 << num_qubits)
    finishes: List[Tuple[np.ndarray, Tuple[int, ...]]] = []
    truncated = False
    offset = _HEADER.size
    committed = offset
    expected_seq = 0
    while offset < len(blob):
        if offset + _RECORD.size > len(blob):
            truncated = True
            break
        seq, num_indices, payload_len, indices_crc, payload_crc = (
            _RECORD.unpack_from(blob, offset)
        )
        cursor = offset + _RECORD.size
        end = cursor + num_indices * 8 + payload_len + len(_COMMIT)
        if (
            seq != expected_seq
            or payload_len != state_bytes
            or num_indices == 0
            or end > len(blob)
        ):
            truncated = True
            break
        indices_raw = blob[cursor : cursor + num_indices * 8]
        cursor += num_indices * 8
        payload_raw = blob[cursor : cursor + payload_len]
        cursor += payload_len
        marker = blob[cursor : cursor + len(_COMMIT)]
        if (
            marker != _COMMIT
            or zlib.crc32(indices_raw) & 0xFFFFFFFF != indices_crc
            or zlib.crc32(payload_raw) & 0xFFFFFFFF != payload_crc
        ):
            truncated = True
            break
        vector = np.frombuffer(payload_raw, dtype=np.complex128).copy()
        indices = tuple(
            int(i) for i in np.frombuffer(indices_raw, dtype=np.uint64)
        )
        finishes.append((vector, indices))
        offset = end
        committed = end
        expected_seq += 1
    return JournalReplay(
        path=os.fspath(path),
        num_qubits=num_qubits,
        num_trials=num_trials,
        fingerprint=fingerprint,
        finishes=finishes,
        truncated=truncated,
        committed_bytes=committed,
    )


class JournalSummary(NamedTuple):
    """What the journal contributed to (and recorded about) one run."""

    path: str
    resumed: bool
    replayed_finishes: int
    replayed_trials: int
    recorded_finishes: int
    truncated_tail: bool


def run_journaled(
    layered: LayeredCircuit,
    trials: Sequence[Trial],
    backend_factory: Callable[[], Any],
    on_finish: Optional[FinishCallback],
    journal_path: str,
    workers: int = 0,
    depth: int = 1,
    check: bool = False,
    recorder=None,
    cache_budget=None,
    retries: int = 2,
    task_timeout: Optional[float] = None,
    fsync: bool = True,
    shared=None,
    stop=None,
) -> Tuple[ExecutionOutcome, JournalSummary]:
    """Execute ``trials`` with a crash-safe journal, resuming if one exists.

    With no journal at ``journal_path`` this is :func:`run_optimized` (or
    :func:`~repro.core.parallel.run_parallel` when ``workers >= 1``) plus
    a journal tee: every finish is committed to disk before the user's
    ``on_finish`` sees it.  With an existing journal, its committed
    finishes are first validated (lint rule ``P019``), replayed through
    ``on_finish`` in their original order, and only the remaining trials
    are executed — the returned outcome's ``ops_applied`` covers exactly
    the remaining work, which is how tests assert zero recompute.

    ``shared`` (a :class:`~repro.core.shared.SharedPrefixStore`, serial
    executor only) and ``stop`` (a ``threading.Event``, serial and
    parallel) are forwarded to the engine.  A stop raises
    :class:`~repro.core.executor.RunInterrupted` *after* the journal tail
    is committed and closed — the journal stays a valid resume point.
    """
    replay: Optional[JournalReplay] = None
    if os.path.exists(journal_path) and os.path.getsize(journal_path) > 0:
        replay = load_journal(journal_path)
        from ..lint.journal_rules import lint_journal

        audit = lint_journal(replay, layered=layered, trials=trials)
        if not audit.ok:
            raise JournalError(
                "journal failed consistency lint (P019): "
                + "; ".join(str(d) for d in audit.errors)
            )

    num_qubits = layered.num_qubits
    replayed_finishes = 0
    replayed_trials = 0
    if replay is not None:
        if recorder:
            recorder.instant(
                "journal.replay",
                cat="journal",
                finishes=len(replay.finishes),
                trials=len(replay.completed_trials),
                truncated=replay.truncated,
            )
        journal = RunJournal.resume(journal_path, replay, fsync=fsync)
        if on_finish is not None:
            for vector, indices in replay.finishes:
                on_finish(Statevector.from_buffer(vector, num_qubits), indices)
        replayed_finishes = len(replay.finishes)
        replayed_trials = len(replay.completed_trials)
        completed = replay.completed_trials
        remaining = [i for i in range(len(trials)) if i not in completed]
    else:
        journal = RunJournal.create(journal_path, layered, trials, fsync=fsync)
        remaining = list(range(len(trials)))

    try:
        if not remaining:
            outcome = ExecutionOutcome(
                ops_applied=0,
                num_trials=0,
                cache_stats=CacheStats(0, 0, 0, 0),
                finish_calls=0,
            )
        else:
            subset = [trials[g] for g in remaining]

            def tee(payload: Any, local_indices: Tuple[int, ...]) -> None:
                global_indices = tuple(remaining[i] for i in local_indices)
                journal.record(payload, global_indices)
                if on_finish is not None:
                    on_finish(payload, global_indices)

            if workers:
                from .parallel import run_parallel

                outcome = run_parallel(
                    layered,
                    subset,
                    backend_factory,
                    tee,
                    workers=workers,
                    depth=depth,
                    check=check,
                    recorder=recorder,
                    cache_budget=cache_budget,
                    retries=retries,
                    task_timeout=task_timeout,
                    stop=stop,
                )
            else:
                outcome = run_optimized(
                    layered,
                    subset,
                    backend_factory(),
                    tee,
                    check=check,
                    recorder=recorder,
                    cache_budget=cache_budget,
                    shared=shared,
                    stop=stop,
                )
    finally:
        recorded = journal.next_seq - replayed_finishes
        journal.close()

    summary = JournalSummary(
        path=os.fspath(journal_path),
        resumed=replay is not None,
        replayed_finishes=replayed_finishes,
        replayed_trials=replayed_trials,
        recorded_finishes=recorded,
        truncated_tail=replay.truncated if replay is not None else False,
    )
    return outcome, summary
