"""Host facts shared by every machine-readable payload.

One tiny module so the bench harness, the runner's trace wiring, the
profiler and the CLI all report the *same* numbers: every payload that
describes a measurement carries ``machine.cpu_count`` (speedups are
meaningless without it) and, on POSIX, the peak resident-set size at the
time the payload was built.  Keeping these helpers out of
:mod:`repro.perf` lets the core runner use them without importing the
whole harness.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Dict, Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

__all__ = ["cpu_count", "machine_info", "peak_rss_kb"]


def cpu_count() -> Optional[int]:
    """Logical CPU count, ``None`` when the platform cannot tell."""
    return os.cpu_count()


def peak_rss_kb() -> Dict[str, Optional[int]]:
    """Peak resident-set size so far, in KB (Linux ``ru_maxrss`` units).

    ``self`` covers this process, ``children`` the high-water mark over
    all reaped child processes (the parallel workers).  Both are monotone
    process-lifetime maxima, so per-section values in a longer session
    are cumulative, not isolated — still the honest upper bound on what
    the section needed.
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return {"self": None, "children": None}
    return {
        "self": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "children": int(
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        ),
    }


def machine_info() -> Dict[str, object]:
    """The ``machine`` block attached to every measurement payload."""
    import numpy as np

    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "processor": platform.processor() or platform.machine(),
        "cpu_count": cpu_count(),
    }
